//! Per-analysis linear-solver workspace: assembled values, right-hand
//! side, solution and factor storage reused across Newton iterations,
//! timesteps, and frequency points.
//!
//! The workspace's kernel implements
//! [`MnaSink`], so the stamp assemblers
//! write into it directly. The dense backend accumulates into a
//! [`Matrix`] and refactors in place; the sparse backend records the
//! stamp's `(row, col)` call sequence on the first assembly, compiles it
//! once into compressed-sparse-column storage plus a slot table, and
//! replays every later assembly through precomputed value indices — no
//! coordinate lookups, no `n x n` writes, and no heap allocation in the
//! Newton hot loop. The LU symbolic pattern (ordering and fill-in) is
//! likewise computed once and reused numerically per solve.

use crate::analysis::stamp::MnaSink;
use crate::circuit::Prepared;
use crate::error::SpiceError;
use ahfic_num::solver::{
    DenseLuSolver, GmresIluSolver, LinearSolveError, LinearSolver, SparseLuSolver, SystemRef,
};
use ahfic_num::sparse::{CscMatrix, TripletBuilder};
use ahfic_num::{GmresOptions, Matrix, Scalar};
use ahfic_trace::SolverStats;
use std::time::Instant;

/// Linear-solver selection, set via
/// [`Options::solver`](crate::analysis::stamp::Options::solver).
///
/// (`Eq` is deliberately absent: the GMRES variant carries an `f64`
/// tolerance. `PartialEq` is all the workspace-reuse checks need.)
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum SolverChoice {
    /// Sparse at or above [`AUTO_SPARSE_MIN_N`] unknowns, dense below.
    #[default]
    Auto,
    /// Dense LU regardless of system size.
    Dense,
    /// Sparse LU with symbolic-pattern reuse regardless of system size.
    Sparse,
    /// Restarted GMRES with ILU(0) preconditioning on the sparse kernel;
    /// the knobs (restart length, relative tolerance, iteration budget)
    /// ride along in the variant.
    Gmres(GmresOptions),
}

/// Unknown count at which [`SolverChoice::Auto`] switches from dense to
/// sparse. Below this the dense factorization's tight inner loops beat
/// the sparse scatter/gather bookkeeping.
pub const AUTO_SPARSE_MIN_N: usize = 16;

/// The matrix-side storage of a workspace: either a dense matrix or the
/// sparse record/replay machinery.
///
/// One `Kernel` exists per analysis, so the dense/sparse size imbalance
/// costs nothing; boxing would only add indirection on the hot path.
#[allow(clippy::large_enum_variant)]
pub(crate) enum Kernel<T: Scalar> {
    /// Dense kernel: stamp into a [`Matrix`].
    Dense {
        mat: Matrix<T>,
        /// Checkpointed matrix values (linear-baseline replay).
        base: Option<Matrix<T>>,
    },
    /// Sparse kernel with slot replay.
    Sparse {
        /// True while the current assembly records its stamp sequence.
        recording: bool,
        /// `(row, col)` of every stamp, in call order.
        coords: Vec<(usize, usize)>,
        /// Values captured alongside `coords` during a recording pass.
        rec_vals: Vec<T>,
        /// CSC value index of the k-th stamp.
        slots: Vec<usize>,
        /// Compiled matrix (present once the pattern is recorded).
        csc: Option<CscMatrix<T>>,
        /// Next stamp index during replay.
        cursor: usize,
        /// A replayed stamp disagreed with the recorded sequence.
        mismatch: bool,
        /// Checkpointed CSC values (linear-baseline replay).
        base_vals: Vec<T>,
        /// Stamp cursor captured alongside `base_vals`.
        base_cursor: usize,
    },
}

// Same state-machine reasoning as the `MnaSink` impl below: a missing
// compiled pattern at system-view time is a sequencing bug.
#[allow(clippy::expect_used)]
impl<T: Scalar> Kernel<T> {
    /// Borrowed [`SystemRef`] view of the assembled matrix for the
    /// backend tier.
    fn system(&self) -> SystemRef<'_, T> {
        match self {
            Kernel::Dense { mat, .. } => SystemRef::Dense(mat),
            Kernel::Sparse { csc, .. } => {
                SystemRef::Sparse(csc.as_ref().expect("assembled before factor"))
            }
        }
    }
}

// The `expect`s below encode the kernel's own state machine (a pattern
// exists once recording finished, factors exist after `factor()`), not
// user input; a violation is a bug in this module, so panicking is the
// correct response and the lint is silenced for these impls.
#[allow(clippy::expect_used)]
impl<T: Scalar> MnaSink<T> for Kernel<T> {
    fn reset(&mut self) {
        match self {
            Kernel::Dense { mat, .. } => mat.clear(),
            Kernel::Sparse {
                recording,
                coords,
                rec_vals,
                csc,
                cursor,
                mismatch,
                ..
            } => {
                if *recording {
                    coords.clear();
                    rec_vals.clear();
                } else {
                    csc.as_mut().expect("compiled pattern").clear_values();
                }
                *cursor = 0;
                *mismatch = false;
            }
        }
    }

    #[inline]
    fn add(&mut self, r: usize, c: usize, v: T) {
        match self {
            Kernel::Dense { mat, .. } => mat.add_at(r, c, v),
            Kernel::Sparse {
                recording,
                coords,
                rec_vals,
                slots,
                csc,
                cursor,
                mismatch,
                ..
            } => {
                if *recording {
                    coords.push((r, c));
                    rec_vals.push(v);
                } else if *cursor < slots.len() && coords[*cursor] == (r, c) {
                    csc.as_mut().expect("compiled pattern").values_mut()[slots[*cursor]] += v;
                    *cursor += 1;
                } else {
                    *mismatch = true;
                }
            }
        }
    }
}

/// Reusable solver state for one analysis (one fixed stamp sequence).
///
/// Lifecycle per linear solve:
///
/// ```text
/// loop {
///     assemble(.., &mut ws.kernel, &mut ws.rhs, ..);
///     if !ws.finish_assembly() { break; }   // true at most once per pattern
/// }
/// ws.factor()?;
/// let x = ws.solve()?;                      // borrows ws until next use
/// ```
pub struct SolverWorkspace<T: Scalar> {
    n: usize,
    pub(crate) kernel: Kernel<T>,
    /// Pluggable solve backend (dense LU, sparse LU, or GMRES+ILU).
    backend: Box<dyn LinearSolver<T>>,
    /// Right-hand side, filled by the assemblers.
    pub(crate) rhs: Vec<T>,
    x: Vec<T>,
    /// Checkpointed right-hand side (linear-baseline replay).
    base_rhs: Vec<T>,
    /// Whether the checkpoint matches the current pattern and inputs.
    base_valid: bool,
    /// Factor/solve counters. The counts are plain integer adds and are
    /// always maintained; wall times stay zero unless
    /// [`SolverWorkspace::set_timing`] enabled clock reads.
    pub stats: SolverStats,
    timing: bool,
}

// Same state-machine invariants as the `MnaSink` impl above.
#[allow(clippy::expect_used)]
impl<T: Scalar> SolverWorkspace<T> {
    /// Allocates a workspace for an `n`-unknown system.
    pub fn new(n: usize, choice: SolverChoice) -> Self {
        // GMRES matvecs against the compiled CSC values, so it always
        // rides the sparse kernel regardless of system size.
        let sparse = match choice {
            SolverChoice::Dense => false,
            SolverChoice::Sparse | SolverChoice::Gmres(_) => true,
            SolverChoice::Auto => n >= AUTO_SPARSE_MIN_N,
        };
        let kernel = if sparse {
            Kernel::Sparse {
                recording: true,
                coords: Vec::new(),
                rec_vals: Vec::new(),
                slots: Vec::new(),
                csc: None,
                cursor: 0,
                mismatch: false,
                base_vals: Vec::new(),
                base_cursor: 0,
            }
        } else {
            Kernel::Dense {
                mat: Matrix::zeros(n, n),
                base: None,
            }
        };
        let backend: Box<dyn LinearSolver<T>> = match choice {
            SolverChoice::Gmres(opts) => Box::new(GmresIluSolver::new(opts)),
            _ if sparse => Box::new(SparseLuSolver::new()),
            _ => Box::new(DenseLuSolver::new()),
        };
        SolverWorkspace {
            n,
            kernel,
            backend,
            rhs: vec![T::ZERO; n],
            x: Vec::with_capacity(n),
            base_rhs: vec![T::ZERO; n],
            base_valid: false,
            stats: SolverStats::default(),
            timing: false,
        }
    }

    /// System dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Enables (or disables) wall-time accumulation in
    /// [`SolverWorkspace::stats`]. Off by default so untraced analyses
    /// never read the clock in their hot loops.
    pub fn set_timing(&mut self, on: bool) {
        self.timing = on;
    }

    /// Whether the sparse backend is active.
    pub fn is_sparse(&self) -> bool {
        matches!(self.kernel, Kernel::Sparse { .. })
    }

    /// Completes an assembly pass. Returns `true` when the stamp pattern
    /// just changed — first assembly, or a replay that diverged from the
    /// recorded sequence — and the caller must rerun the assembly. This
    /// happens at most once per pattern change, so `loop { assemble;
    /// if !finish_assembly() { break } }` terminates after two passes in
    /// the worst case.
    pub fn finish_assembly(&mut self) -> bool {
        let n = self.n;
        let changed = match &mut self.kernel {
            Kernel::Dense { .. } => false,
            Kernel::Sparse {
                recording,
                coords,
                rec_vals,
                slots,
                csc,
                cursor,
                mismatch,
                ..
            } => {
                if *recording {
                    let mut tb = TripletBuilder::new(n);
                    for &(r, c) in coords.iter() {
                        tb.add(r, c);
                    }
                    let (mut m, sl) = tb.compile::<T>();
                    for (k, &v) in rec_vals.iter().enumerate() {
                        m.values_mut()[sl[k]] += v;
                    }
                    *slots = sl;
                    *csc = Some(m);
                    *recording = false;
                    rec_vals.clear();
                    false
                } else if *mismatch || *cursor != slots.len() {
                    // The stamp sequence changed under a frozen pattern;
                    // drop the pattern and re-record.
                    *recording = true;
                    *csc = None;
                    true
                } else {
                    false
                }
            }
        };
        if changed {
            // Cached factors and the checkpoint were built against the
            // old pattern.
            self.backend.invalidate();
            self.base_valid = false;
        }
        changed
    }

    /// Whether the sparse backend still needs its stamp pattern — either
    /// recorded on a first assembly pass or handed over up front via
    /// [`SolverWorkspace::preset_pattern`]. Always `false` for dense.
    pub fn needs_pattern(&self) -> bool {
        matches!(
            self.kernel,
            Kernel::Sparse {
                recording: true,
                csc: None,
                ..
            }
        )
    }

    /// Installs a known stamp `(row, col)` sequence, compiling the sparse
    /// pattern directly so the first assembly replays through value slots
    /// instead of running a triplet-recording pass. No-op for dense.
    pub fn preset_pattern(&mut self, pattern: &[(usize, usize)]) {
        let n = self.n;
        if let Kernel::Sparse {
            recording,
            coords,
            slots,
            csc,
            cursor,
            mismatch,
            ..
        } = &mut self.kernel
        {
            let mut tb = TripletBuilder::new(n);
            for &(r, c) in pattern {
                tb.add(r, c);
            }
            let (m, sl) = tb.compile::<T>();
            coords.clear();
            coords.extend_from_slice(pattern);
            *slots = sl;
            *csc = Some(m);
            *recording = false;
            *cursor = 0;
            *mismatch = false;
            self.base_valid = false;
            self.backend.invalidate();
        }
    }

    /// Snapshots the current matrix values and right-hand side as the
    /// linear baseline. During a sparse recording pass there is nothing
    /// to snapshot yet, so the checkpoint is marked invalid and the next
    /// full assembly re-establishes it.
    pub fn checkpoint(&mut self) {
        match &mut self.kernel {
            Kernel::Dense { mat, base, .. } => {
                match base {
                    Some(b) => b.as_mut_slice().copy_from_slice(mat.as_slice()),
                    None => *base = Some(mat.clone()),
                }
                self.base_rhs.copy_from_slice(&self.rhs);
                self.base_valid = true;
            }
            Kernel::Sparse {
                recording,
                csc,
                cursor,
                base_vals,
                base_cursor,
                ..
            } => {
                if *recording {
                    self.base_valid = false;
                    return;
                }
                let m = csc.as_mut().expect("compiled pattern");
                base_vals.clear();
                base_vals.extend_from_slice(m.values_mut());
                *base_cursor = *cursor;
                self.base_rhs.copy_from_slice(&self.rhs);
                self.base_valid = true;
            }
        }
    }

    /// Rewinds matrix and right-hand side to the last
    /// [`SolverWorkspace::checkpoint`]. Returns `false` (and touches
    /// nothing) when no valid checkpoint exists — the caller must then
    /// assemble the baseline in full.
    pub fn restore(&mut self) -> bool {
        if !self.base_valid {
            return false;
        }
        match &mut self.kernel {
            Kernel::Dense { mat, base, .. } => {
                let b = base.as_ref().expect("valid checkpoint has a base");
                mat.as_mut_slice().copy_from_slice(b.as_slice());
            }
            Kernel::Sparse {
                recording,
                csc,
                cursor,
                mismatch,
                base_vals,
                base_cursor,
                ..
            } => {
                if *recording {
                    return false;
                }
                let m = csc.as_mut().expect("compiled pattern");
                m.values_mut().copy_from_slice(base_vals);
                *cursor = *base_cursor;
                *mismatch = false;
            }
        }
        self.rhs.copy_from_slice(&self.base_rhs);
        true
    }

    /// Drops the linear-baseline checkpoint. Call whenever the inputs
    /// the baseline was stamped from (source values, mode, timestep) may
    /// have changed.
    pub fn invalidate_checkpoint(&mut self) {
        self.base_valid = false;
    }

    /// Prepares the backend against the assembled matrix: the direct
    /// backends factor (reusing prior symbolic work and factor storage —
    /// dense refactors in place, sparse replays the frozen pivot order
    /// with a full re-pivot fallback); the iterative backend refreshes
    /// its ILU(0) preconditioner.
    ///
    /// # Errors
    ///
    /// Returns [`LinearSolveError::Singular`] when a direct factorization
    /// breaks down (map with `singular_unknown` for reporting).
    pub fn factor(&mut self) -> Result<(), LinearSolveError> {
        self.stats.factorizations += 1;
        let started = if self.timing {
            Some(Instant::now())
        } else {
            None
        };
        let result = self.backend.prepare(self.kernel.system());
        if let Some(t0) = started {
            self.stats.factor_seconds += t0.elapsed().as_secs_f64();
        }
        self.absorb_counters();
        result
    }

    /// Solves against the current right-hand side using the prepared
    /// backend; the returned slice stays valid until the next workspace
    /// use.
    ///
    /// # Errors
    ///
    /// Returns [`LinearSolveError::NoConvergence`] when the iterative
    /// backend exhausts its budget; the direct backends never fail here.
    ///
    /// # Panics
    ///
    /// Panics if [`SolverWorkspace::factor`] has not succeeded since the
    /// last pattern change.
    pub fn solve(&mut self) -> Result<&[T], LinearSolveError> {
        self.stats.solves += 1;
        let started = if self.timing {
            Some(Instant::now())
        } else {
            None
        };
        let result = self
            .backend
            .solve(self.kernel.system(), &self.rhs, &mut self.x);
        if let Some(t0) = started {
            self.stats.solve_seconds += t0.elapsed().as_secs_f64();
        }
        self.absorb_counters();
        result.map(|()| &*self.x)
    }

    /// Folds the backend's iteration counters into
    /// [`SolverWorkspace::stats`].
    fn absorb_counters(&mut self) {
        let c = self.backend.take_counters();
        if !c.is_zero() {
            self.stats.gmres_iterations += c.gmres_iterations;
            self.stats.gmres_restarts += c.gmres_restarts;
            self.stats.precond_refactors += c.precond_refactors;
            self.stats.gmres_fallbacks += c.fallbacks;
        }
    }
}

impl SolverWorkspace<f64> {
    /// NaN/Inf guard: whether every assembled matrix value and
    /// right-hand-side entry is finite. Called once per Newton iteration
    /// after assembly — a linear scan of the stored values, negligible
    /// next to the factorization — so a poisoned stamp (zero-valued
    /// part, overflowing model, injected fault) is caught before it can
    /// corrupt the factors and send Newton iterating on garbage.
    pub fn assembly_finite(&self) -> bool {
        let mat_ok = match &self.kernel {
            Kernel::Dense { mat, .. } => mat.as_slice().iter().all(|v| v.is_finite()),
            Kernel::Sparse { csc, .. } => csc
                .as_ref()
                .is_none_or(|m| m.values().iter().all(|v| v.is_finite())),
        };
        mat_ok && self.rhs.iter().all(|v| v.is_finite())
    }

    /// Fault-injection hook: overwrites one assembled matrix value with
    /// NaN, as a model evaluation gone wrong would.
    pub(crate) fn poison_nan(&mut self) {
        match &mut self.kernel {
            Kernel::Dense { mat, .. } => {
                if let Some(v) = mat.as_mut_slice().first_mut() {
                    *v = f64::NAN;
                }
            }
            Kernel::Sparse { csc, .. } => {
                if let Some(v) = csc.as_mut().and_then(|m| m.values_mut().first_mut()) {
                    *v = f64::NAN;
                }
            }
        }
    }

    /// Fault-injection hook: zeroes the assembled matrix so the next
    /// factorization genuinely breaks down as singular.
    pub(crate) fn poison_singular(&mut self) {
        match &mut self.kernel {
            Kernel::Dense { mat, .. } => mat.as_mut_slice().fill(0.0),
            Kernel::Sparse { csc, .. } => {
                if let Some(m) = csc.as_mut() {
                    m.clear_values();
                }
            }
        }
    }
}

/// Maps a linear-solver breakdown to a [`SpiceError`]: direct-backend
/// singularity carries the name of the offending unknown, iterative
/// stagnation surfaces as a typed no-convergence.
pub(crate) fn singular_unknown(prep: &Prepared, e: LinearSolveError) -> SpiceError {
    match e {
        LinearSolveError::Singular { column } => SpiceError::Singular {
            unknown: prep
                .unknown_names
                .get(column)
                .cloned()
                .unwrap_or_else(|| format!("#{column}")),
        },
        LinearSolveError::NoConvergence { iterations, .. } => SpiceError::NoConvergence {
            analysis: "gmres",
            iterations,
            time: None,
            report: None,
        },
    }
}

/// Aggregate work profile of one [`parallel_freq_map`] run, merged from
/// every worker's private workspace.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ParStats {
    /// Worker threads actually spawned (1 for the inline path).
    pub threads: usize,
    /// Factor/solve counts and (if `timing`) wall times, summed over
    /// workers.
    pub solver: SolverStats,
}

/// Maps `work` over `points` (frequencies), splitting contiguous chunks
/// across `std::thread::scope` workers. Each worker owns a private
/// [`SolverWorkspace`], so within a chunk the symbolic pattern and factor
/// storage are reused from point to point. Results come back in input
/// order; the error at the lowest index wins. `timing` turns on
/// per-workspace factor/solve wall-time accumulation (reported merged in
/// the returned [`ParStats`]). `threads` is the caller's worker budget
/// ([`Options::threads`](crate::analysis::Options::threads) semantics:
/// `0` = auto-detect from available parallelism).
// Every slot is filled before the scope joins; a `None` is a bug here,
// not a recoverable condition.
#[allow(clippy::expect_used)]
pub(crate) fn parallel_freq_map<T, R, F>(
    n: usize,
    choice: SolverChoice,
    timing: bool,
    threads: usize,
    points: &[f64],
    work: F,
) -> crate::error::Result<(Vec<R>, ParStats)>
where
    T: Scalar,
    R: Send,
    F: Fn(&mut SolverWorkspace<T>, f64) -> crate::error::Result<R> + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |c| c.get())
    } else {
        threads
    }
    .min(points.len().max(1));
    if threads <= 1 {
        let mut ws = SolverWorkspace::new(n, choice);
        ws.set_timing(timing);
        let out: crate::error::Result<Vec<R>> = points.iter().map(|&f| work(&mut ws, f)).collect();
        return out.map(|v| {
            (
                v,
                ParStats {
                    threads: 1,
                    solver: ws.stats,
                },
            )
        });
    }
    let chunk = points.len().div_ceil(threads);
    let mut results: Vec<Option<crate::error::Result<R>>> = Vec::with_capacity(points.len());
    results.resize_with(points.len(), || None);
    let num_chunks = points.len().div_ceil(chunk);
    let mut chunk_stats = vec![SolverStats::default(); num_chunks];
    let work = &work;
    std::thread::scope(|s| {
        for ((ps, rs), stat) in points
            .chunks(chunk)
            .zip(results.chunks_mut(chunk))
            .zip(chunk_stats.iter_mut())
        {
            s.spawn(move || {
                let mut ws = SolverWorkspace::new(n, choice);
                ws.set_timing(timing);
                for (&f, slot) in ps.iter().zip(rs.iter_mut()) {
                    *slot = Some(work(&mut ws, f));
                }
                *stat = ws.stats;
            });
        }
    });
    let mut solver = SolverStats::default();
    for st in &chunk_stats {
        solver.merge(st);
    }
    let out: crate::error::Result<Vec<R>> = results
        .into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect();
    out.map(|v| {
        (
            v,
            ParStats {
                threads: num_chunks,
                solver,
            },
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the workspace by hand through two assemblies of a 2x2
    /// system and checks record/replay and refactor agree with dense.
    #[test]
    fn sparse_record_replay_solves() {
        let mut ws: SolverWorkspace<f64> = SolverWorkspace::new(2, SolverChoice::Sparse);
        assert!(ws.is_sparse());
        for round in 0..3 {
            let scale = 1.0 + round as f64;
            loop {
                ws.kernel.reset();
                ws.kernel.add(0, 0, 2.0 * scale);
                ws.kernel.add(0, 1, 1.0);
                ws.kernel.add(1, 0, 1.0);
                ws.kernel.add(1, 1, 3.0 * scale);
                ws.kernel.add(1, 1, 1.0); // duplicate slot accumulates
                ws.rhs.copy_from_slice(&[1.0, 2.0]);
                if !ws.finish_assembly() {
                    break;
                }
            }
            ws.factor().unwrap();
            let x = ws.solve().unwrap().to_vec();
            // Check against the dense solve of the same system.
            let a = Matrix::from_rows(&[&[2.0 * scale, 1.0], &[1.0, 3.0 * scale + 1.0]]);
            let expect = ahfic_num::lu::solve(a, &[1.0, 2.0]).unwrap();
            for k in 0..2 {
                assert!((x[k] - expect[k]).abs() < 1e-12, "round {round}");
            }
        }
    }

    /// A changed stamp sequence is detected and re-recorded once.
    #[test]
    fn pattern_change_triggers_rerecord() {
        let mut ws: SolverWorkspace<f64> = SolverWorkspace::new(2, SolverChoice::Sparse);
        ws.kernel.reset();
        ws.kernel.add(0, 0, 1.0);
        ws.kernel.add(1, 1, 1.0);
        assert!(!ws.finish_assembly());
        // Different sequence: extra off-diagonal stamp.
        ws.kernel.reset();
        ws.kernel.add(0, 0, 2.0);
        ws.kernel.add(0, 1, 5.0);
        ws.kernel.add(1, 1, 2.0);
        assert!(ws.finish_assembly(), "mismatch must request re-assembly");
        ws.kernel.reset();
        ws.kernel.add(0, 0, 2.0);
        ws.kernel.add(0, 1, 5.0);
        ws.kernel.add(1, 1, 2.0);
        assert!(!ws.finish_assembly());
        ws.rhs.copy_from_slice(&[2.0, 4.0]);
        ws.factor().unwrap();
        let x = ws.solve().unwrap();
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((x[0] - (2.0 - 5.0 * 2.0) / 2.0).abs() < 1e-12);
    }

    /// The GMRES backend rides the sparse kernel and reproduces the LU
    /// solution through the same assembly lifecycle, ticking the Krylov
    /// counters as it goes.
    #[test]
    fn gmres_choice_matches_sparse_lu() {
        let choice = SolverChoice::Gmres(GmresOptions::default());
        let mut ws: SolverWorkspace<f64> = SolverWorkspace::new(2, choice);
        assert!(ws.is_sparse(), "GMRES forces the sparse kernel");
        let mut reference: SolverWorkspace<f64> = SolverWorkspace::new(2, SolverChoice::Sparse);
        for round in 0..3 {
            let scale = 1.0 + round as f64;
            for w in [&mut ws, &mut reference] {
                loop {
                    w.kernel.reset();
                    w.kernel.add(0, 0, 4.0 * scale);
                    w.kernel.add(0, 1, 1.0);
                    w.kernel.add(1, 0, 1.0);
                    w.kernel.add(1, 1, 3.0 * scale);
                    w.rhs.copy_from_slice(&[1.0, 2.0]);
                    if !w.finish_assembly() {
                        break;
                    }
                }
                w.factor().unwrap();
            }
            let xg = ws.solve().unwrap().to_vec();
            let xs = reference.solve().unwrap().to_vec();
            for k in 0..2 {
                assert!((xg[k] - xs[k]).abs() < 1e-8, "round {round}");
            }
        }
        assert!(ws.stats.gmres_iterations > 0, "{:?}", ws.stats);
        assert_eq!(ws.stats.precond_refactors, 3, "{:?}", ws.stats);
        assert_eq!(reference.stats.gmres_iterations, 0);
    }

    /// Auto picks dense for small systems and sparse for large ones.
    #[test]
    fn auto_threshold() {
        let small: SolverWorkspace<f64> = SolverWorkspace::new(4, SolverChoice::Auto);
        assert!(!small.is_sparse());
        let large: SolverWorkspace<f64> =
            SolverWorkspace::new(AUTO_SPARSE_MIN_N, SolverChoice::Auto);
        assert!(large.is_sparse());
    }

    /// The parallel mapper preserves order and reports the first error.
    #[test]
    fn parallel_map_orders_results() {
        let points: Vec<f64> = (0..37).map(|k| k as f64).collect();
        let (out, stats) =
            parallel_freq_map::<f64, f64, _>(4, SolverChoice::Dense, false, 0, &points, |ws, f| {
                assert_eq!(ws.dim(), 4);
                Ok(2.0 * f)
            })
            .unwrap();
        assert_eq!(out.len(), 37);
        assert!(stats.threads >= 1);
        for (k, v) in out.iter().enumerate() {
            assert_eq!(*v, 2.0 * k as f64);
        }
        // An explicit budget of one thread must take the inline path.
        let (_, pinned) =
            parallel_freq_map::<f64, f64, _>(4, SolverChoice::Dense, false, 1, &points, |_, f| {
                Ok(f)
            })
            .unwrap();
        assert_eq!(pinned.threads, 1);
        let err =
            parallel_freq_map::<f64, f64, _>(4, SolverChoice::Dense, false, 0, &points, |_, f| {
                if f >= 5.0 {
                    Err(SpiceError::Measure(format!("boom {f}")))
                } else {
                    Ok(f)
                }
            });
        match err {
            Err(SpiceError::Measure(m)) => assert_eq!(m, "boom 5"),
            other => panic!("expected first error, got {other:?}"),
        }
    }

    /// Checkpoint/restore rewinds matrix and rhs to the linear baseline,
    /// and `preset_pattern` skips the sparse recording pass entirely.
    #[test]
    fn checkpoint_restore_replays_baseline() {
        // (choice, preset): the sparse backend is exercised both with a
        // declared pattern and with first-pass recording.
        for (choice, preset) in [
            (SolverChoice::Dense, false),
            (SolverChoice::Sparse, true),
            (SolverChoice::Sparse, false),
        ] {
            let mut ws: SolverWorkspace<f64> = SolverWorkspace::new(2, choice);
            if preset {
                assert!(ws.needs_pattern());
                ws.preset_pattern(&[(0, 0), (0, 1), (1, 0), (1, 1), (1, 1)]);
                assert!(!ws.needs_pattern());
            }
            assert!(!ws.restore(), "no checkpoint yet");
            for round in 0..3 {
                let g = 1.0 + round as f64; // stands in for the nonlinear part
                loop {
                    if !ws.restore() {
                        ws.kernel.reset();
                        ws.kernel.add(0, 0, 2.0);
                        ws.kernel.add(0, 1, -1.0);
                        ws.kernel.add(1, 0, -1.0);
                        ws.kernel.add(1, 1, 1.0);
                        ws.rhs.copy_from_slice(&[1.0, 0.0]);
                        ws.checkpoint();
                    }
                    ws.kernel.add(1, 1, g);
                    ws.rhs[1] += g;
                    if !ws.finish_assembly() {
                        break;
                    }
                }
                ws.factor().unwrap();
                let x = ws.solve().unwrap().to_vec();
                let a = Matrix::from_rows(&[&[2.0, -1.0], &[-1.0, 1.0 + g]]);
                let expect = ahfic_num::lu::solve(a, &[1.0, g]).unwrap();
                for k in 0..2 {
                    assert!(
                        (x[k] - expect[k]).abs() < 1e-12,
                        "{choice:?} preset={preset} round {round}: {} vs {}",
                        x[k],
                        expect[k]
                    );
                }
            }
            ws.invalidate_checkpoint();
            assert!(!ws.restore(), "invalidated checkpoint must not restore");
        }
    }

    /// Counters tick on every factor/solve; timing stays zero when off.
    #[test]
    fn workspace_stats_count_factor_and_solve() {
        let mut ws: SolverWorkspace<f64> = SolverWorkspace::new(2, SolverChoice::Dense);
        ws.kernel.reset();
        ws.kernel.add(0, 0, 1.0);
        ws.kernel.add(1, 1, 2.0);
        ws.finish_assembly();
        ws.rhs.copy_from_slice(&[1.0, 4.0]);
        ws.factor().unwrap();
        ws.solve().unwrap();
        ws.solve().unwrap();
        assert_eq!(ws.stats.factorizations, 1);
        assert_eq!(ws.stats.solves, 2);
        assert_eq!(ws.stats.factor_seconds, 0.0);
        assert_eq!(ws.stats.solve_seconds, 0.0);

        let mut ws: SolverWorkspace<f64> = SolverWorkspace::new(2, SolverChoice::Dense);
        ws.set_timing(true);
        ws.kernel.reset();
        ws.kernel.add(0, 0, 1.0);
        ws.kernel.add(1, 1, 2.0);
        ws.finish_assembly();
        ws.rhs.copy_from_slice(&[1.0, 4.0]);
        ws.factor().unwrap();
        ws.solve().unwrap();
        assert!(ws.stats.factor_seconds > 0.0);
        assert!(ws.stats.solve_seconds > 0.0);
    }
}
