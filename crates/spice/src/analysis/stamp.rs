//! MNA assembly shared by the operating-point, DC-sweep and transient
//! engines.
//!
//! The assembler walks the element list and stamps the linearized
//! companion of every device into a dense real matrix/RHS pair. Nonlinear
//! devices (diode, BJT) are linearized at the candidate solution with
//! SPICE-style junction-voltage limiting; charge-storage elements get
//! trapezoidal companion models in transient mode.

use crate::analysis::solver::SolverChoice;
use crate::circuit::{read_slot, ElementKind, Prepared, GROUND_SLOT};
use crate::devices::bjt::eval_bjt;
use crate::devices::diode::eval_diode;
use crate::devices::junction::{depletion, pnjlim, vcrit};
use crate::wave::SourceWave;
use ahfic_num::{Matrix, Scalar};
use ahfic_trace::{TraceHandle, TraceSink};
use std::sync::Arc;

/// Simulator tolerance and iteration options (SPICE names).
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`Options::new`] (or [`Options::default`]) and adjust fields through
/// the chainable builder methods:
///
/// ```
/// use ahfic_spice::analysis::{Options, SolverChoice};
/// let opts = Options::new().solver(SolverChoice::Sparse).reltol(1e-4);
/// assert_eq!(opts.solver, SolverChoice::Sparse);
/// ```
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub struct Options {
    /// Relative convergence tolerance.
    pub reltol: f64,
    /// Absolute voltage tolerance (V).
    pub vntol: f64,
    /// Absolute current tolerance (A).
    pub abstol: f64,
    /// Junction convergence-aid conductance (S).
    pub gmin: f64,
    /// Maximum Newton iterations per solve.
    pub max_newton: usize,
    /// Thermal voltage kT/q (V); change to simulate other temperatures.
    pub vt: f64,
    /// Linear-solver backend (dense LU vs sparse LU with pattern reuse).
    pub solver: SolverChoice,
    /// Telemetry destination; [`TraceHandle::off`] (the default) makes
    /// every instrumentation point a single not-taken branch.
    pub trace: TraceHandle,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            reltol: 1e-3,
            vntol: 1e-6,
            abstol: 1e-12,
            gmin: 1e-12,
            max_newton: 100,
            vt: crate::devices::junction::VT_300K,
            solver: SolverChoice::Auto,
            trace: TraceHandle::off(),
        }
    }
}

/// Destination of MNA stamps.
///
/// The assemblers write every element's linearized companion through this
/// trait, so the same stamping code fills either a dense [`Matrix`] or the
/// sparse slot-replay workspace of
/// [`crate::analysis::solver::SolverWorkspace`]. Callers guarantee indices
/// are in range and not [`GROUND_SLOT`].
pub trait MnaSink<T: Scalar> {
    /// Zeroes every value, keeping structure and allocations.
    fn reset(&mut self);
    /// Accumulates `v` at `(r, c)`.
    fn add(&mut self, r: usize, c: usize, v: T);
}

impl<T: Scalar> MnaSink<T> for Matrix<T> {
    fn reset(&mut self) {
        self.clear();
    }

    #[inline]
    fn add(&mut self, r: usize, c: usize, v: T) {
        self.add_at(r, c, v);
    }
}

impl Options {
    /// Default options; the starting point for the builder methods.
    pub fn new() -> Self {
        Options::default()
    }

    /// Default options with the thermal voltage set for a junction
    /// temperature in °C (first-order temperature support: `kT/q` only;
    /// model parameters are not re-derated).
    ///
    /// # Panics
    ///
    /// Panics below absolute zero.
    pub fn at_celsius(temp_c: f64) -> Self {
        assert!(temp_c > -273.15, "temperature below absolute zero");
        const K_OVER_Q: f64 = 8.617333262e-5; // eV/K
        Options {
            vt: K_OVER_Q * (temp_c + 273.15),
            ..Options::default()
        }
    }

    /// Sets the relative convergence tolerance.
    pub fn reltol(mut self, reltol: f64) -> Self {
        self.reltol = reltol;
        self
    }

    /// Sets the absolute voltage tolerance (V).
    pub fn vntol(mut self, vntol: f64) -> Self {
        self.vntol = vntol;
        self
    }

    /// Sets the absolute current tolerance (A).
    pub fn abstol(mut self, abstol: f64) -> Self {
        self.abstol = abstol;
        self
    }

    /// Sets the junction convergence-aid conductance (S).
    pub fn gmin(mut self, gmin: f64) -> Self {
        self.gmin = gmin;
        self
    }

    /// Sets the maximum Newton iterations per solve.
    pub fn max_newton(mut self, max_newton: usize) -> Self {
        self.max_newton = max_newton;
        self
    }

    /// Sets the thermal voltage kT/q (V).
    pub fn vt(mut self, vt: f64) -> Self {
        self.vt = vt;
        self
    }

    /// Sets the linear-solver backend.
    pub fn solver(mut self, solver: SolverChoice) -> Self {
        self.solver = solver;
        self
    }

    /// Routes telemetry to `sink` (shared ownership).
    pub fn trace<S: TraceSink + 'static>(mut self, sink: &Arc<S>) -> Self {
        self.trace = TraceHandle::new(sink);
        self
    }

    /// Routes telemetry through an existing [`TraceHandle`].
    pub fn trace_handle(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }
}

/// Stored charge and its branch current for one charge element slot.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChargeState {
    /// Charge (C), normalized polarity for BJTs.
    pub q: f64,
    /// Charge current `dq/dt` (A), normalized polarity.
    pub i: f64,
}

/// All charge-element state for a circuit, indexed per element.
#[derive(Clone, Debug)]
pub struct ChargeBank {
    /// First slot of each element (`usize::MAX` when it stores no charge).
    pub base: Vec<usize>,
    /// Flat state storage.
    pub states: Vec<ChargeState>,
}

impl ChargeBank {
    /// Allocates zeroed charge slots for every storage element.
    pub fn new(prep: &Prepared) -> Self {
        let mut base = vec![usize::MAX; prep.circuit.elements().len()];
        let mut next = 0usize;
        for (idx, el) in prep.circuit.elements().iter().enumerate() {
            let n = match el.kind {
                ElementKind::Capacitor { .. } => 1,
                ElementKind::Diode { .. } => 1,
                ElementKind::Bjt { .. } => 4,
                _ => 0,
            };
            if n > 0 {
                base[idx] = next;
                next += n;
            }
        }
        ChargeBank {
            base,
            states: vec![ChargeState::default(); next],
        }
    }
}

/// Junction-voltage memory for Newton limiting, per element.
#[derive(Clone, Debug)]
pub struct NonlinMemory {
    /// `(vbe, vbc)` per element (meaningful for BJTs), normalized polarity.
    pub bjt: Vec<(f64, f64)>,
    /// `vd` per element (meaningful for diodes).
    pub diode: Vec<f64>,
    /// Whether any junction was limited during the last assembly.
    pub limited: bool,
}

impl NonlinMemory {
    /// Fresh memory with all junctions at zero bias.
    pub fn new(prep: &Prepared) -> Self {
        let n = prep.circuit.elements().len();
        NonlinMemory {
            bjt: vec![(0.0, 0.0); n],
            diode: vec![0.0; n],
            limited: false,
        }
    }
}

/// Assembly mode.
#[derive(Clone, Copy, Debug)]
pub enum Mode<'a> {
    /// DC: capacitors open, inductors short; sources at their DC value
    /// scaled by `source_scale` (1.0 normally, <1 during source stepping).
    Dc {
        /// Multiplier applied to all independent sources.
        source_scale: f64,
    },
    /// Transient Newton iteration at `time` with integration coefficient
    /// `a` (`2/h` for trapezoidal, `1/h` for backward Euler, `0` to
    /// initialize charges) against the previous-step `bank` and previous
    /// solution `x_prev`.
    Tran {
        /// Current simulation time (s).
        time: f64,
        /// Companion coefficient (1/s).
        a: f64,
        /// Charge states at the previous accepted timepoint.
        bank: &'a ChargeBank,
        /// Solution at the previous accepted timepoint.
        x_prev: &'a [f64],
    },
}

struct Sys<'m, M> {
    mat: &'m mut M,
    rhs: &'m mut [f64],
}

impl<M: MnaSink<f64>> Sys<'_, M> {
    #[inline]
    fn add(&mut self, r: usize, c: usize, v: f64) {
        if r != GROUND_SLOT && c != GROUND_SLOT {
            self.mat.add(r, c, v);
        }
    }

    #[inline]
    fn rhs_add(&mut self, r: usize, v: f64) {
        if r != GROUND_SLOT {
            self.rhs[r] += v;
        }
    }

    /// Conductance `g` between unknowns `p` and `n`.
    fn conductance(&mut self, p: usize, n: usize, g: f64) {
        self.add(p, p, g);
        self.add(n, n, g);
        self.add(p, n, -g);
        self.add(n, p, -g);
    }

    /// Constant current `i` flowing from `p` to `n` (through the element).
    fn current(&mut self, p: usize, n: usize, i: f64) {
        self.rhs_add(p, -i);
        self.rhs_add(n, i);
    }

    /// Current `g * (v(cp) - v(cn))` flowing from `p` to `n`.
    fn transadmittance(&mut self, p: usize, n: usize, cp: usize, cn: usize, g: f64) {
        self.add(p, cp, g);
        self.add(p, cn, -g);
        self.add(n, cp, -g);
        self.add(n, cn, g);
    }
}

fn source_value(wave: &SourceWave, mode: &Mode) -> f64 {
    match mode {
        Mode::Dc { source_scale } => wave.dc_value() * source_scale,
        Mode::Tran { time, .. } => wave.eval(*time),
    }
}

/// Assembles the linearized MNA system at candidate solution `x`.
///
/// `mem` carries junction-limiting memory between Newton iterations and
/// reports whether limiting fired. In transient mode `new_charges` (when
/// provided, sized like `bank.states`) receives the charge/current pair of
/// every storage element evaluated at `x`, which the engine commits once
/// the step is accepted.
#[allow(clippy::too_many_arguments)]
pub fn assemble<M: MnaSink<f64>>(
    prep: &Prepared,
    x: &[f64],
    opts: &Options,
    mode: &Mode,
    mem: &mut NonlinMemory,
    mat: &mut M,
    rhs: &mut [f64],
    mut new_charges: Option<&mut [ChargeState]>,
) {
    mat.reset();
    rhs.fill(0.0);
    mem.limited = false;
    let mut sys = Sys { mat, rhs };
    let gmin = opts.gmin;
    let vt = opts.vt;

    for (idx, el) in prep.circuit.elements().iter().enumerate() {
        match &el.kind {
            ElementKind::Resistor { p, n, r } => {
                let (p, n) = (prep.slot_of(*p), prep.slot_of(*n));
                sys.conductance(p, n, 1.0 / r);
            }
            ElementKind::Capacitor { p, n, c } => {
                if let Mode::Tran { a, bank, .. } = mode {
                    let (p, n) = (prep.slot_of(*p), prep.slot_of(*n));
                    let v = read_slot(x, p) - read_slot(x, n);
                    let st = bank.states[bank.base[idx]];
                    let q = c * v;
                    let i = a * (q - st.q) - st.i;
                    let geq = a * c;
                    sys.conductance(p, n, geq);
                    sys.current(p, n, i - geq * v);
                    if let Some(nc) = new_charges.as_deref_mut() {
                        nc[bank.base[idx]] = ChargeState { q, i };
                    }
                }
            }
            ElementKind::Inductor { p, n, l } => {
                let k = prep.branch_of[idx].0.expect("inductor branch");
                let (p, n) = (prep.slot_of(*p), prep.slot_of(*n));
                sys.add(p, k, 1.0);
                sys.add(n, k, -1.0);
                sys.add(k, p, 1.0);
                sys.add(k, n, -1.0);
                match mode {
                    Mode::Dc { .. } => {
                        // Short: v(p) - v(n) = 0 (plus a tiny series
                        // resistance to avoid singular source loops).
                        sys.add(k, k, -1e-9);
                    }
                    Mode::Tran { a, x_prev, .. } => {
                        // v = L di/dt, trapezoidal companion.
                        let i_prev = x_prev[k];
                        let v_prev = read_slot(x_prev, p) - read_slot(x_prev, n);
                        sys.add(k, k, -l * a);
                        let correction = if *a == 0.0 {
                            0.0
                        } else {
                            -(l * a * i_prev + v_prev)
                        };
                        sys.rhs_add(k, correction);
                    }
                }
            }
            ElementKind::Vsource { p, n, wave, .. } => {
                let k = prep.branch_of[idx].0.expect("vsource branch");
                let (p, n) = (prep.slot_of(*p), prep.slot_of(*n));
                sys.add(p, k, 1.0);
                sys.add(n, k, -1.0);
                sys.add(k, p, 1.0);
                sys.add(k, n, -1.0);
                sys.rhs_add(k, source_value(wave, mode));
            }
            ElementKind::Isource { p, n, wave, .. } => {
                let (p, n) = (prep.slot_of(*p), prep.slot_of(*n));
                sys.current(p, n, source_value(wave, mode));
            }
            ElementKind::Vcvs { p, n, cp, cn, gain } => {
                let k = prep.branch_of[idx].0.expect("vcvs branch");
                let (p, n) = (prep.slot_of(*p), prep.slot_of(*n));
                let (cp, cn) = (prep.slot_of(*cp), prep.slot_of(*cn));
                sys.add(p, k, 1.0);
                sys.add(n, k, -1.0);
                sys.add(k, p, 1.0);
                sys.add(k, n, -1.0);
                sys.add(k, cp, -gain);
                sys.add(k, cn, *gain);
            }
            ElementKind::Vccs { p, n, cp, cn, gm } => {
                let (p, n) = (prep.slot_of(*p), prep.slot_of(*n));
                let (cp, cn) = (prep.slot_of(*cp), prep.slot_of(*cn));
                sys.transadmittance(p, n, cp, cn, *gm);
            }
            ElementKind::Cccs {
                p,
                n,
                vsource,
                gain,
            } => {
                let j = prep
                    .branch_slot(vsource)
                    .expect("validated at compile time");
                let (p, n) = (prep.slot_of(*p), prep.slot_of(*n));
                sys.add(p, j, *gain);
                sys.add(n, j, -gain);
            }
            ElementKind::Ccvs { p, n, vsource, r } => {
                let k = prep.branch_of[idx].0.expect("ccvs branch");
                let j = prep
                    .branch_slot(vsource)
                    .expect("validated at compile time");
                let (p, n) = (prep.slot_of(*p), prep.slot_of(*n));
                sys.add(p, k, 1.0);
                sys.add(n, k, -1.0);
                sys.add(k, p, 1.0);
                sys.add(k, n, -1.0);
                sys.add(k, j, -r);
            }
            ElementKind::BehavioralV {
                p,
                n,
                controls,
                func,
            } => {
                let k = prep.branch_of[idx].0.expect("behavioral branch");
                let (p, n) = (prep.slot_of(*p), prep.slot_of(*n));
                sys.add(p, k, 1.0);
                sys.add(n, k, -1.0);
                sys.add(k, p, 1.0);
                sys.add(k, n, -1.0);
                let slots: Vec<usize> = controls.iter().map(|&c| prep.slot_of(c)).collect();
                let vc: Vec<f64> = slots.iter().map(|&s| read_slot(x, s)).collect();
                let f0 = func.eval(&vc);
                let mut rhs_val = f0;
                for (i, &cs) in slots.iter().enumerate() {
                    let d = func.derivative(&vc, i);
                    sys.add(k, cs, -d);
                    rhs_val -= d * vc[i];
                }
                sys.rhs_add(k, rhs_val);
            }
            ElementKind::Diode { p, n, .. } => {
                let model = prep.scaled_diode[idx].as_ref().expect("scaled diode");
                let (pa, nc) = (prep.slot_of(*p), prep.slot_of(*n));
                let ai = prep.diode_internal[idx].unwrap_or(pa);
                if ai != pa {
                    sys.conductance(pa, ai, 1.0 / model.rs);
                }
                let vd_raw = read_slot(x, ai) - read_slot(x, nc);
                let nvt = model.n * vt;
                let vc = vcrit(model.is_, nvt);
                let vd = pnjlim(vd_raw, mem.diode[idx], nvt, vc);
                if (vd - vd_raw).abs() > 1e-15 {
                    mem.limited = true;
                }
                mem.diode[idx] = vd;
                let op = eval_diode(model, vd, vt, gmin);
                sys.conductance(ai, nc, op.gd);
                sys.current(ai, nc, op.id - op.gd * vd);
                if let Mode::Tran { a, bank, .. } = mode {
                    let st = bank.states[bank.base[idx]];
                    let i = a * (op.qd - st.q) - st.i;
                    let geq = a * op.cd;
                    sys.conductance(ai, nc, geq);
                    sys.current(ai, nc, i - geq * vd);
                    if let Some(ncs) = new_charges.as_deref_mut() {
                        ncs[bank.base[idx]] = ChargeState { q: op.qd, i };
                    }
                }
            }
            ElementKind::Bjt { .. } => {
                let model = prep.scaled_bjt[idx].as_ref().expect("scaled bjt");
                let nodes = prep.bjt_nodes[idx].expect("bjt nodes");
                let sg = model.polarity.sign();
                let vbe_raw = sg * (read_slot(x, nodes.bi) - read_slot(x, nodes.ei));
                let vbc_raw = sg * (read_slot(x, nodes.bi) - read_slot(x, nodes.ci));
                let vcs = sg * (read_slot(x, nodes.s) - read_slot(x, nodes.ci));
                let nfvt = model.nf * vt;
                let nrvt = model.nr * vt;
                let (vbe_old, vbc_old) = mem.bjt[idx];
                let vbe = pnjlim(vbe_raw, vbe_old, nfvt, vcrit(model.is_, nfvt));
                let vbc = pnjlim(vbc_raw, vbc_old, nrvt, vcrit(model.is_, nrvt));
                if (vbe - vbe_raw).abs() > 1e-15 || (vbc - vbc_raw).abs() > 1e-15 {
                    mem.limited = true;
                }
                mem.bjt[idx] = (vbe, vbc);
                let op = eval_bjt(model, vbe, vbc, vcs, vt, gmin);

                // Parasitic resistances external->internal.
                if nodes.bi != nodes.b {
                    sys.conductance(nodes.b, nodes.bi, 1.0 / op.rbb.max(1e-3));
                }
                if nodes.ci != nodes.c {
                    sys.conductance(nodes.c, nodes.ci, 1.0 / model.rc);
                }
                if nodes.ei != nodes.e {
                    sys.conductance(nodes.e, nodes.ei, 1.0 / model.re);
                }

                // Base-emitter diode.
                sys.conductance(nodes.bi, nodes.ei, op.gpi);
                sys.current(nodes.bi, nodes.ei, sg * (op.ibe - op.gpi * vbe));
                // Base-collector diode.
                sys.conductance(nodes.bi, nodes.ci, op.gmu);
                sys.current(nodes.bi, nodes.ci, sg * (op.ibc - op.gmu * vbc));
                // Transport current ci -> ei with two controlling voltages.
                let (gmf, gmr) = (op.gmf, op.gmr);
                sys.add(nodes.ci, nodes.bi, gmf + gmr);
                sys.add(nodes.ci, nodes.ei, -gmf);
                sys.add(nodes.ci, nodes.ci, -gmr);
                sys.add(nodes.ei, nodes.bi, -(gmf + gmr));
                sys.add(nodes.ei, nodes.ei, gmf);
                sys.add(nodes.ei, nodes.ci, gmr);
                sys.current(nodes.ci, nodes.ei, sg * (op.it - gmf * vbe - gmr * vbc));

                if let Mode::Tran { a, bank, .. } = mode {
                    let b0 = bank.base[idx];
                    // qbe between bi-ei, controlled by vbe and (weakly) vbc.
                    {
                        let st = bank.states[b0];
                        let i = a * (op.qbe - st.q) - st.i;
                        let (gbe, gx) = (a * op.cbe, a * op.cbe_bc);
                        sys.add(nodes.bi, nodes.bi, gbe + gx);
                        sys.add(nodes.bi, nodes.ei, -gbe);
                        sys.add(nodes.bi, nodes.ci, -gx);
                        sys.add(nodes.ei, nodes.bi, -(gbe + gx));
                        sys.add(nodes.ei, nodes.ei, gbe);
                        sys.add(nodes.ei, nodes.ci, gx);
                        sys.current(nodes.bi, nodes.ei, sg * (i - gbe * vbe - gx * vbc));
                        if let Some(ncs) = new_charges.as_deref_mut() {
                            ncs[b0] = ChargeState { q: op.qbe, i };
                        }
                    }
                    // qbc between bi-ci.
                    {
                        let st = bank.states[b0 + 1];
                        let i = a * (op.qbc - st.q) - st.i;
                        let geq = a * op.cbc;
                        sys.conductance(nodes.bi, nodes.ci, geq);
                        sys.current(nodes.bi, nodes.ci, sg * (i - geq * vbc));
                        if let Some(ncs) = new_charges.as_deref_mut() {
                            ncs[b0 + 1] = ChargeState { q: op.qbc, i };
                        }
                    }
                    // qbx: external-base fraction of CJC between b and ci.
                    {
                        let vbx = sg * (read_slot(x, nodes.b) - read_slot(x, nodes.ci));
                        let (qbx, cbx) = depletion(
                            vbx,
                            model.cjc * (1.0 - model.xcjc.clamp(0.0, 1.0)),
                            model.vjc,
                            model.mjc,
                            model.fc,
                        );
                        let st = bank.states[b0 + 2];
                        let i = a * (qbx - st.q) - st.i;
                        let geq = a * cbx;
                        sys.conductance(nodes.b, nodes.ci, geq);
                        sys.current(nodes.b, nodes.ci, sg * (i - geq * vbx));
                        if let Some(ncs) = new_charges.as_deref_mut() {
                            ncs[b0 + 2] = ChargeState { q: qbx, i };
                        }
                    }
                    // qcs between s and ci.
                    {
                        let st = bank.states[b0 + 3];
                        let i = a * (op.qcs - st.q) - st.i;
                        let geq = a * op.ccs;
                        sys.conductance(nodes.s, nodes.ci, geq);
                        sys.current(nodes.s, nodes.ci, sg * (i - geq * vcs));
                        if let Some(ncs) = new_charges.as_deref_mut() {
                            ncs[b0 + 3] = ChargeState { q: op.qcs, i };
                        }
                    }
                }
            }
        }
    }
}

/// Convergence check between successive Newton iterates.
pub fn converged(prep: &Prepared, x_old: &[f64], x_new: &[f64], opts: &Options) -> bool {
    for k in 0..prep.num_unknowns {
        let (tol_abs, _is_v) = if k < prep.num_voltage_unknowns {
            (opts.vntol, true)
        } else {
            (opts.abstol, false)
        };
        let tol = opts.reltol * x_new[k].abs().max(x_old[k].abs()) + tol_abs;
        if (x_new[k] - x_old[k]).abs() > tol {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use ahfic_num::lu;

    /// Assemble and directly solve a linear circuit in DC mode.
    fn solve_dc(ckt: Circuit) -> (Prepared, Vec<f64>) {
        let prep = Prepared::compile(&ckt).unwrap();
        let n = prep.num_unknowns;
        let mut mat = Matrix::zeros(n, n);
        let mut rhs = vec![0.0; n];
        let mut mem = NonlinMemory::new(&prep);
        let x = vec![0.0; n];
        let opts = Options::default();
        assemble(
            &prep,
            &x,
            &opts,
            &Mode::Dc { source_scale: 1.0 },
            &mut mem,
            &mut mat,
            &mut rhs,
            None,
        );
        let sol = lu::solve(mat, &rhs).unwrap();
        (prep, sol)
    }

    #[test]
    fn voltage_divider() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource("V1", vin, Circuit::gnd(), 10.0);
        c.resistor("R1", vin, out, 1e3);
        c.resistor("R2", out, Circuit::gnd(), 3e3);
        let (prep, x) = solve_dc(c);
        assert!((prep.voltage(&x, out) - 7.5).abs() < 1e-9);
        // Source current: 10V over 4k = 2.5 mA flowing out of + terminal,
        // i.e. -2.5 mA into it per the SPICE convention.
        let i = x[prep.branch_slot("V1").unwrap()];
        assert!((i + 2.5e-3).abs() < 1e-9);
    }

    #[test]
    fn current_source_polarity() {
        let mut c = Circuit::new();
        let out = c.node("out");
        // 1 mA from ground into `out` through a 1k to ground: v = +1V.
        c.isource("I1", Circuit::gnd(), out, 1e-3);
        c.resistor("R1", out, Circuit::gnd(), 1e3);
        let (prep, x) = solve_dc(c);
        assert!((prep.voltage(&x, out) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn vcvs_gain() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), 2.0);
        c.vcvs("E1", b, Circuit::gnd(), a, Circuit::gnd(), 5.0);
        c.resistor("RL", b, Circuit::gnd(), 1e3);
        let (prep, x) = solve_dc(c);
        assert!((prep.voltage(&x, b) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn vccs_injects_current() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), 1.0);
        // gm = 1mS controlled by v(a): pushes 1 mA from gnd into b.
        c.vccs("G1", Circuit::gnd(), b, a, Circuit::gnd(), 1e-3);
        c.resistor("RL", b, Circuit::gnd(), 1e3);
        let (prep, x) = solve_dc(c);
        assert!((prep.voltage(&x, b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cccs_mirrors_current() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), 1.0);
        c.resistor("R1", a, Circuit::gnd(), 1e3); // i(V1) = -1 mA
        c.cccs("F1", Circuit::gnd(), b, "V1", 2.0);
        c.resistor("RL", b, Circuit::gnd(), 1e3);
        let (prep, x) = solve_dc(c);
        // F injects 2*i(V1) = -2 mA from gnd to b -> v(b) = -2 V.
        assert!((prep.voltage(&x, b) + 2.0).abs() < 1e-9);
    }

    #[test]
    fn ccvs_transresistance() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), 1.0);
        c.resistor("R1", a, Circuit::gnd(), 1e3);
        c.ccvs("H1", b, Circuit::gnd(), "V1", 500.0);
        c.resistor("RL", b, Circuit::gnd(), 1e3);
        let (prep, x) = solve_dc(c);
        // v(b) = 500 * (-1 mA) = -0.5 V.
        assert!((prep.voltage(&x, b) + 0.5).abs() < 1e-9);
    }

    #[test]
    fn inductor_is_dc_short() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), 1.0);
        c.inductor("L1", a, b, 1e-6);
        c.resistor("R1", b, Circuit::gnd(), 100.0);
        let (prep, x) = solve_dc(c);
        assert!((prep.voltage(&x, b) - 1.0).abs() < 1e-6);
        let i = x[prep.branch_slot("L1").unwrap()];
        assert!((i - 0.01).abs() < 1e-6);
    }

    #[test]
    fn temperature_scales_thermal_voltage() {
        let cold = Options::at_celsius(-40.0);
        let room = Options::at_celsius(26.85);
        let hot = Options::at_celsius(125.0);
        assert!(cold.vt < room.vt && room.vt < hot.vt);
        assert!((room.vt - Options::default().vt).abs() < 1e-4);
        // A diode drop shrinks with temperature at fixed current: check
        // via the junction law directly.
        use crate::devices::diode::eval_diode;
        use crate::model::DiodeModel;
        let m = DiodeModel::default();
        let i_cold = eval_diode(&m, 0.65, cold.vt, 0.0).id;
        let i_hot = eval_diode(&m, 0.65, hot.vt, 0.0).id;
        assert!(
            i_cold > i_hot,
            "same V -> more current when cold (fixed IS)"
        );
    }

    #[test]
    fn converged_checks_tolerances() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, Circuit::gnd(), 1.0);
        let prep = Prepared::compile(&c).unwrap();
        let opts = Options::default();
        assert!(converged(&prep, &[1.0], &[1.0 + 1e-7], &opts));
        assert!(!converged(&prep, &[1.0], &[1.01], &opts));
    }
}
