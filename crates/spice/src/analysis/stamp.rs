//! MNA assembly shared by the operating-point, DC-sweep and transient
//! engines.
//!
//! Assembly walks the compiled device list (see [`crate::devices`]): the
//! **linear** partition is stamped by [`stamp_linear`] (cacheable — its
//! stamps never depend on the solution vector), the **nonlinear**
//! partition by [`stamp_nonlinear`] (re-evaluated at every candidate
//! solution with SPICE-style junction-voltage limiting). [`assemble`]
//! runs both back to back; the Newton loop splits them so the linear
//! baseline is replayed by `memcpy` instead of re-stamped.
//! `real_pattern` runs the same walk through a `PatternProbe` to
//! declare the sparsity pattern to the solver up front.

use crate::analysis::control::{Budget, CancelHandle, CancelToken, StreamPolicy};
use crate::analysis::fault::{FaultHandle, FaultInjector};
use crate::analysis::solver::SolverChoice;
use crate::circuit::Prepared;
use crate::devices::{RealCtx, RealStamper};
use crate::lint::LintPolicy;
use ahfic_num::{Matrix, Scalar};
use ahfic_trace::{TraceHandle, TraceSink};
use std::sync::Arc;

/// Which rungs of the operating-point continuation ladder are armed.
///
/// The full ladder (the default) runs, in order: plain Newton, adaptive
/// damped Newton, gmin stepping, source stepping, pseudo-transient
/// homotopy. Disabling rungs is mainly useful for benchmarking the
/// ladder itself and for reproducing legacy behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LadderConfig {
    /// Adaptive damped-Newton retry after plain Newton fails.
    pub damping: bool,
    /// Gmin stepping (diagonal conductance relaxed over decades).
    pub gmin_stepping: bool,
    /// Source stepping (all sources ramped from zero).
    pub source_stepping: bool,
    /// Pseudo-transient homotopy, the last resort.
    pub ptran: bool,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            damping: true,
            gmin_stepping: true,
            source_stepping: true,
            ptran: true,
        }
    }
}

impl LadderConfig {
    /// The pre-damping/ptran ladder: plain Newton, gmin stepping, source
    /// stepping only. Kept for comparisons and benchmarks.
    pub fn legacy() -> Self {
        LadderConfig {
            damping: false,
            gmin_stepping: true,
            source_stepping: true,
            ptran: false,
        }
    }
}

/// Simulator tolerance and iteration options (SPICE names).
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`Options::new`] (or [`Options::default`]) and adjust fields through
/// the chainable builder methods:
///
/// ```
/// use ahfic_spice::analysis::{Options, SolverChoice};
/// let opts = Options::new().solver(SolverChoice::Sparse).reltol(1e-4);
/// assert_eq!(opts.solver, SolverChoice::Sparse);
/// ```
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub struct Options {
    /// Relative convergence tolerance.
    pub reltol: f64,
    /// Absolute voltage tolerance (V).
    pub vntol: f64,
    /// Absolute current tolerance (A).
    pub abstol: f64,
    /// Junction convergence-aid conductance (S).
    pub gmin: f64,
    /// Maximum Newton iterations per solve.
    pub max_newton: usize,
    /// Thermal voltage kT/q (V); change to simulate other temperatures.
    pub vt: f64,
    /// Linear-solver backend (dense LU vs sparse LU with pattern reuse).
    pub solver: SolverChoice,
    /// Cache the linear-device stamps once per Newton solve and replay
    /// them by `memcpy` each iteration (on by default). Off forces a
    /// full re-stamp every iteration; both paths produce bit-identical
    /// results because the stamp order is unchanged.
    pub linear_replay: bool,
    /// Telemetry destination; [`TraceHandle::off`] (the default) makes
    /// every instrumentation point a single not-taken branch.
    pub trace: TraceHandle,
    /// Continuation-ladder rung selection for hard operating points.
    pub ladder: LadderConfig,
    /// Deterministic fault injection; [`FaultHandle::off`] (the default)
    /// makes every poll site a single not-taken branch.
    pub faults: FaultHandle,
    /// Pre-flight static verification policy applied by
    /// [`Session::compile_with`](crate::analysis::Session::compile_with)
    /// (default: [`LintPolicy::Deny`]).
    pub lint: LintPolicy,
    /// Batched variant execution for the study drivers (Monte-Carlo
    /// yield, batch characterization, mixed-level and DC sweeps). Off
    /// (the default) runs today's sequential path; see [`BatchMode`].
    pub batch: BatchMode,
    /// Worker-thread budget for `parallel` analyses (AC/noise frequency
    /// fan-out and the batched sample pool). `0` (the default) means
    /// auto-detect from [`std::thread::available_parallelism`]; `1`
    /// pins everything on the calling thread for deterministic
    /// debugging and CI.
    pub threads: usize,
    /// Cooperative cancellation; [`CancelHandle::off`] (the default)
    /// makes every poll site a single not-taken branch. Polled at
    /// Newton-iteration and transient-timestep boundaries.
    pub cancel: CancelHandle,
    /// Per-analysis resource budget (Newton iterations, transient
    /// steps, batch lanes). Unlimited by default; see
    /// [`Budget`].
    pub budget: Budget,
    /// Incremental transient-progress streaming over the trace path.
    /// Off by default; see [`StreamPolicy`].
    pub stream: StreamPolicy,
}

/// Batched-execution mode for variant studies ([`Options::batch`]).
///
/// When enabled, the study drivers solve groups of variants side by
/// side over one shared sparse pattern (structure-of-arrays values,
/// SIMD lane kernels), falling back to the sequential path per sample
/// whenever a lane misbehaves. `Lanes(1)` runs the batched engine with
/// a single lane, which reproduces the sequential **sparse** solver
/// bit for bit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BatchMode {
    /// Sequential execution (today's path) — the default.
    #[default]
    Off,
    /// Batched execution with a heuristic lane count.
    Auto,
    /// Batched execution with an explicit lane count (clamped to ≥ 1).
    Lanes(usize),
}

/// Lane count used by [`BatchMode::Auto`].
const AUTO_LANES: usize = 8;

impl BatchMode {
    /// The number of SoA lanes this mode asks for, or `None` when
    /// batching is off.
    pub fn lanes(self) -> Option<usize> {
        match self {
            BatchMode::Off => None,
            BatchMode::Auto => Some(AUTO_LANES),
            BatchMode::Lanes(n) => Some(n.max(1)),
        }
    }
}

impl Default for Options {
    fn default() -> Self {
        Options {
            reltol: 1e-3,
            vntol: 1e-6,
            abstol: 1e-12,
            gmin: 1e-12,
            max_newton: 100,
            vt: crate::devices::junction::VT_300K,
            solver: SolverChoice::Auto,
            linear_replay: true,
            trace: TraceHandle::off(),
            ladder: LadderConfig::default(),
            faults: FaultHandle::off(),
            lint: LintPolicy::default(),
            batch: BatchMode::Off,
            threads: 0,
            cancel: CancelHandle::off(),
            budget: Budget::unlimited(),
            stream: StreamPolicy::Off,
        }
    }
}

/// Destination of MNA stamps.
///
/// The assemblers write every element's linearized companion through this
/// trait, so the same stamping code fills either a dense [`Matrix`] or the
/// sparse slot-replay workspace of
/// [`crate::analysis::solver::SolverWorkspace`]. Callers guarantee indices
/// are in range and not [`crate::circuit::GROUND_SLOT`].
pub trait MnaSink<T: Scalar> {
    /// Zeroes every value, keeping structure and allocations.
    fn reset(&mut self);
    /// Accumulates `v` at `(r, c)`.
    fn add(&mut self, r: usize, c: usize, v: T);
}

impl<T: Scalar> MnaSink<T> for Matrix<T> {
    fn reset(&mut self) {
        self.clear();
    }

    #[inline]
    fn add(&mut self, r: usize, c: usize, v: T) {
        self.add_at(r, c, v);
    }
}

/// Records the coordinate sequence of an assembly pass without storing
/// values: feeds the declared MNA pattern to the sparse solver's
/// symbolic analysis before the first numeric assembly.
#[derive(Default)]
pub(crate) struct PatternProbe {
    /// `(row, col)` of every stamp, in stamp order.
    pub coords: Vec<(usize, usize)>,
}

impl<T: Scalar> MnaSink<T> for PatternProbe {
    fn reset(&mut self) {
        self.coords.clear();
    }

    #[inline]
    fn add(&mut self, r: usize, c: usize, _v: T) {
        self.coords.push((r, c));
    }
}

impl Options {
    /// Default options; the starting point for the builder methods.
    pub fn new() -> Self {
        Options::default()
    }

    /// Default options with the thermal voltage set for a junction
    /// temperature in °C (first-order temperature support: `kT/q` only;
    /// model parameters are not re-derated).
    ///
    /// # Panics
    ///
    /// Panics below absolute zero.
    pub fn at_celsius(temp_c: f64) -> Self {
        assert!(temp_c > -273.15, "temperature below absolute zero");
        const K_OVER_Q: f64 = 8.617333262e-5; // eV/K
        Options {
            vt: K_OVER_Q * (temp_c + 273.15),
            ..Options::default()
        }
    }

    /// Sets the relative convergence tolerance.
    pub fn reltol(mut self, reltol: f64) -> Self {
        self.reltol = reltol;
        self
    }

    /// Sets the absolute voltage tolerance (V).
    pub fn vntol(mut self, vntol: f64) -> Self {
        self.vntol = vntol;
        self
    }

    /// Sets the absolute current tolerance (A).
    pub fn abstol(mut self, abstol: f64) -> Self {
        self.abstol = abstol;
        self
    }

    /// Sets the junction convergence-aid conductance (S).
    pub fn gmin(mut self, gmin: f64) -> Self {
        self.gmin = gmin;
        self
    }

    /// Sets the maximum Newton iterations per solve.
    pub fn max_newton(mut self, max_newton: usize) -> Self {
        self.max_newton = max_newton;
        self
    }

    /// Sets the thermal voltage kT/q (V).
    pub fn vt(mut self, vt: f64) -> Self {
        self.vt = vt;
        self
    }

    /// Sets the linear-solver backend.
    pub fn solver(mut self, solver: SolverChoice) -> Self {
        self.solver = solver;
        self
    }

    /// Enables or disables the linear-stamp replay cache in the Newton
    /// loop.
    pub fn linear_replay(mut self, on: bool) -> Self {
        self.linear_replay = on;
        self
    }

    /// Routes telemetry to `sink` (shared ownership).
    pub fn trace<S: TraceSink + 'static>(mut self, sink: &Arc<S>) -> Self {
        self.trace = TraceHandle::new(sink);
        self
    }

    /// Routes telemetry through an existing [`TraceHandle`].
    pub fn trace_handle(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// Selects which continuation-ladder rungs are armed.
    pub fn ladder(mut self, ladder: LadderConfig) -> Self {
        self.ladder = ladder;
        self
    }

    /// Installs a deterministic fault injector (shared ownership) — see
    /// [`crate::analysis::fault`]. Off by default and zero-cost when
    /// unset.
    pub fn fault_injector(mut self, injector: &Arc<FaultInjector>) -> Self {
        self.faults = FaultHandle::new(injector);
        self
    }

    /// Sets the pre-flight lint policy used when compiling through a
    /// [`Session`](crate::analysis::Session).
    pub fn lint(mut self, lint: LintPolicy) -> Self {
        self.lint = lint;
        self
    }

    /// Selects batched variant execution for the study drivers.
    pub fn batch(mut self, batch: BatchMode) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the worker-thread budget (`0` = auto-detect).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Installs a cooperative [`CancelToken`], polled at every
    /// Newton-iteration and transient-timestep boundary. Off by default
    /// and zero-cost when unset.
    pub fn cancel_token(mut self, token: &CancelToken) -> Self {
        self.cancel = CancelHandle::new(token);
        self
    }

    /// Installs an existing [`CancelHandle`].
    pub fn cancel_handle(mut self, cancel: CancelHandle) -> Self {
        self.cancel = cancel;
        self
    }

    /// Sets the per-analysis resource [`Budget`].
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the transient-progress streaming policy.
    pub fn stream(mut self, stream: StreamPolicy) -> Self {
        self.stream = stream;
        self
    }

    /// Streams a transient-progress chunk every `n` accepted steps
    /// (shorthand for `stream(StreamPolicy::EverySteps(n))`).
    pub fn stream_every(mut self, n: usize) -> Self {
        self.stream = StreamPolicy::EverySteps(n);
        self
    }

    /// The effective worker-thread count: the explicit
    /// [`Options::threads`] value, or the machine's available
    /// parallelism when unset.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |c| c.get())
        } else {
            self.threads
        }
    }
}

/// Stored charge and its branch current for one charge element slot.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChargeState {
    /// Charge (C), normalized polarity for BJTs.
    pub q: f64,
    /// Charge current `dq/dt` (A), normalized polarity.
    pub i: f64,
}

/// All charge-element state for a circuit, indexed per element.
#[derive(Clone, Debug)]
pub struct ChargeBank {
    /// First slot of each element (`usize::MAX` when it stores no charge).
    pub base: Vec<usize>,
    /// Flat state storage.
    pub states: Vec<ChargeState>,
}

impl ChargeBank {
    /// Allocates zeroed charge slots for every storage device, as
    /// declared by [`crate::devices::Device::charge_slots`].
    pub fn new(prep: &Prepared) -> Self {
        let mut base = vec![usize::MAX; prep.circuit.elements().len()];
        let mut next = 0usize;
        for d in prep.devices() {
            let n = d.charge_slots();
            if n > 0 {
                base[d.index()] = next;
                next += n;
            }
        }
        ChargeBank {
            base,
            states: vec![ChargeState::default(); next],
        }
    }
}

/// Junction-voltage memory for Newton limiting, per element.
#[derive(Clone, Debug)]
pub struct NonlinMemory {
    /// `(vbe, vbc)` per element (meaningful for BJTs), normalized polarity.
    pub bjt: Vec<(f64, f64)>,
    /// `vd` per element (meaningful for diodes).
    pub diode: Vec<f64>,
    /// Number of junctions whose Newton update was pnjlim-limited during
    /// the last assembly (0 = every junction took its full step). The
    /// per-junction count replaces the old all-or-nothing flag: the
    /// continuation ladder reads it both as a convergence veto and as a
    /// diagnostic of *how much* limiting is still happening.
    pub limited: u32,
    /// Largest voltage shift pnjlim applied during the last assembly (V).
    pub max_limit_shift: f64,
}

impl NonlinMemory {
    /// Fresh memory with all junctions at zero bias.
    pub fn new(prep: &Prepared) -> Self {
        let n = prep.circuit.elements().len();
        NonlinMemory {
            bjt: vec![(0.0, 0.0); n],
            diode: vec![0.0; n],
            limited: 0,
            max_limit_shift: 0.0,
        }
    }

    /// Records one pnjlim intervention that moved a junction voltage by
    /// `shift` volts. Called by device stamps.
    #[inline]
    pub fn note_limited(&mut self, shift: f64) {
        self.limited += 1;
        if shift > self.max_limit_shift {
            self.max_limit_shift = shift;
        }
    }

    /// Whether the last assembly limited any junction.
    #[inline]
    pub fn any_limited(&self) -> bool {
        self.limited > 0
    }
}

/// Assembly mode.
#[derive(Clone, Copy, Debug)]
pub enum Mode<'a> {
    /// DC: capacitors open, inductors short; sources at their DC value
    /// scaled by `source_scale` (1.0 normally, <1 during source stepping).
    Dc {
        /// Multiplier applied to all independent sources.
        source_scale: f64,
    },
    /// Transient Newton iteration at `time` with integration coefficient
    /// `a` (`2/h` for trapezoidal, `1/h` for backward Euler, `0` to
    /// initialize charges) against the previous-step `bank` and previous
    /// solution `x_prev`.
    Tran {
        /// Current simulation time (s).
        time: f64,
        /// Companion coefficient (1/s).
        a: f64,
        /// Charge states at the previous accepted timepoint.
        bank: &'a ChargeBank,
        /// Solution at the previous accepted timepoint.
        x_prev: &'a [f64],
    },
}

/// Stamps the linear device partition. These stamps depend on `mode`
/// (source values, companion coefficients) but never on `x`, so within
/// one Newton solve the result is a constant baseline.
pub fn stamp_linear<M: MnaSink<f64>>(
    prep: &Prepared,
    x: &[f64],
    opts: &Options,
    mode: &Mode,
    mat: &mut M,
    rhs: &mut [f64],
) {
    let cx = RealCtx {
        prep,
        opts,
        mode,
        x,
    };
    let mut mem_unused = NonlinMemory {
        bjt: Vec::new(),
        diode: Vec::new(),
        limited: 0,
        max_limit_shift: 0.0,
    };
    let mut s = RealStamper::new(mat, rhs);
    for &i in &prep.linear {
        prep.devices[i].stamp_real(&cx, &mut mem_unused, &mut s);
    }
}

/// Stamps the nonlinear device partition, linearized at `x`. Resets and
/// updates `mem.limited`.
pub fn stamp_nonlinear<M: MnaSink<f64>>(
    prep: &Prepared,
    x: &[f64],
    opts: &Options,
    mode: &Mode,
    mem: &mut NonlinMemory,
    mat: &mut M,
    rhs: &mut [f64],
) {
    mem.limited = 0;
    mem.max_limit_shift = 0.0;
    let cx = RealCtx {
        prep,
        opts,
        mode,
        x,
    };
    let mut s = RealStamper::new(mat, rhs);
    for &i in &prep.nonlinear {
        prep.devices[i].stamp_real(&cx, mem, &mut s);
    }
}

/// Assembles the full linearized MNA system at candidate solution `x`:
/// reset, linear partition, then nonlinear partition.
///
/// `mem` carries junction-limiting memory between Newton iterations and
/// reports whether limiting fired.
pub fn assemble<M: MnaSink<f64>>(
    prep: &Prepared,
    x: &[f64],
    opts: &Options,
    mode: &Mode,
    mem: &mut NonlinMemory,
    mat: &mut M,
    rhs: &mut [f64],
) {
    mat.reset();
    rhs.fill(0.0);
    stamp_linear(prep, x, opts, mode, mat, rhs);
    stamp_nonlinear(prep, x, opts, mode, mem, mat, rhs);
}

/// Runs the Newton full-pass stamp sequence (linear partition, one
/// diagonal gmin slot per voltage row, nonlinear partition) through a
/// probe and returns the coordinate list, ready for
/// [`crate::analysis::solver::SolverWorkspace::preset_pattern`].
///
/// Uses scratch junction memory so probing never disturbs the real
/// Newton limiting state.
pub(crate) fn real_pattern(
    prep: &Prepared,
    x: &[f64],
    opts: &Options,
    mode: &Mode,
    diag_rows: usize,
) -> Vec<(usize, usize)> {
    let mut probe = PatternProbe::default();
    let mut rhs = vec![0.0; prep.num_unknowns];
    let mut mem = NonlinMemory::new(prep);
    stamp_linear(prep, x, opts, mode, &mut probe, &mut rhs);
    for k in 0..diag_rows {
        MnaSink::<f64>::add(&mut probe, k, k, 0.0);
    }
    rhs.fill(0.0);
    stamp_nonlinear(prep, x, opts, mode, &mut mem, &mut probe, &mut rhs);
    probe.coords
}

/// Recomputes every storage device's charge state at solution `x` into
/// `states` (sized like the bank's state vector). No matrix assembly
/// happens; this is how the transient engine initializes charges and
/// commits them after an accepted step.
pub fn update_all_charges(
    prep: &Prepared,
    x: &[f64],
    opts: &Options,
    mode: &Mode,
    states: &mut [ChargeState],
) {
    let Mode::Tran { bank, .. } = mode else {
        return;
    };
    let cx = RealCtx {
        prep,
        opts,
        mode,
        x,
    };
    for d in prep.devices() {
        let n = d.charge_slots();
        if n == 0 {
            continue;
        }
        let b = bank.base[d.index()];
        d.update_charges(&cx, &mut states[b..b + n]);
    }
}

/// Convergence check between successive Newton iterates.
pub fn converged(prep: &Prepared, x_old: &[f64], x_new: &[f64], opts: &Options) -> bool {
    for k in 0..prep.num_unknowns {
        let (tol_abs, _is_v) = if k < prep.num_voltage_unknowns {
            (opts.vntol, true)
        } else {
            (opts.abstol, false)
        };
        let tol = opts.reltol * x_new[k].abs().max(x_old[k].abs()) + tol_abs;
        if (x_new[k] - x_old[k]).abs() > tol {
            return false;
        }
    }
    true
}

/// Ranks the unknowns whose last Newton update exceeded tolerance the
/// most, named for [`crate::error::ConvergenceReport`] diagnostics.
/// Only called on failure paths.
pub(crate) fn worst_unknowns(
    prep: &Prepared,
    x_old: &[f64],
    x_new: &[f64],
    opts: &Options,
    top: usize,
) -> Vec<crate::error::WorstUnknown> {
    let mut ranked: Vec<(f64, usize, f64, f64)> = (0..prep.num_unknowns)
        .map(|k| {
            let tol_abs = if k < prep.num_voltage_unknowns {
                opts.vntol
            } else {
                opts.abstol
            };
            let tol = opts.reltol * x_new[k].abs().max(x_old[k].abs()) + tol_abs;
            let delta = (x_new[k] - x_old[k]).abs();
            // Non-finite iterates rank worst of all.
            let score = if delta.is_finite() {
                delta / tol
            } else {
                f64::INFINITY
            };
            (score, k, delta, tol)
        })
        .filter(|&(score, ..)| score > 1.0 || !score.is_finite())
        .collect();
    ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
    ranked
        .into_iter()
        .take(top)
        .map(|(_, k, delta, tol)| crate::error::WorstUnknown {
            name: prep
                .unknown_names
                .get(k)
                .cloned()
                .unwrap_or_else(|| format!("#{k}")),
            delta,
            tol,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use ahfic_num::lu;

    /// Assemble and directly solve a linear circuit in DC mode.
    fn solve_dc(ckt: Circuit) -> (Prepared, Vec<f64>) {
        let prep = Prepared::compile(&ckt).unwrap();
        let n = prep.num_unknowns;
        let mut mat = Matrix::zeros(n, n);
        let mut rhs = vec![0.0; n];
        let mut mem = NonlinMemory::new(&prep);
        let x = vec![0.0; n];
        let opts = Options::default();
        assemble(
            &prep,
            &x,
            &opts,
            &Mode::Dc { source_scale: 1.0 },
            &mut mem,
            &mut mat,
            &mut rhs,
        );
        let sol = lu::solve(mat, &rhs).unwrap();
        (prep, sol)
    }

    #[test]
    fn voltage_divider() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource("V1", vin, Circuit::gnd(), 10.0);
        c.resistor("R1", vin, out, 1e3);
        c.resistor("R2", out, Circuit::gnd(), 3e3);
        let (prep, x) = solve_dc(c);
        assert!((prep.voltage(&x, out) - 7.5).abs() < 1e-9);
        // Source current: 10V over 4k = 2.5 mA flowing out of + terminal,
        // i.e. -2.5 mA into it per the SPICE convention.
        let i = x[prep.branch_slot("V1").unwrap()];
        assert!((i + 2.5e-3).abs() < 1e-9);
    }

    #[test]
    fn current_source_polarity() {
        let mut c = Circuit::new();
        let out = c.node("out");
        // 1 mA from ground into `out` through a 1k to ground: v = +1V.
        c.isource("I1", Circuit::gnd(), out, 1e-3);
        c.resistor("R1", out, Circuit::gnd(), 1e3);
        let (prep, x) = solve_dc(c);
        assert!((prep.voltage(&x, out) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn vcvs_gain() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), 2.0);
        c.vcvs("E1", b, Circuit::gnd(), a, Circuit::gnd(), 5.0);
        c.resistor("RL", b, Circuit::gnd(), 1e3);
        let (prep, x) = solve_dc(c);
        assert!((prep.voltage(&x, b) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn vccs_injects_current() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), 1.0);
        // gm = 1mS controlled by v(a): pushes 1 mA from gnd into b.
        c.vccs("G1", Circuit::gnd(), b, a, Circuit::gnd(), 1e-3);
        c.resistor("RL", b, Circuit::gnd(), 1e3);
        let (prep, x) = solve_dc(c);
        assert!((prep.voltage(&x, b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cccs_mirrors_current() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), 1.0);
        c.resistor("R1", a, Circuit::gnd(), 1e3); // i(V1) = -1 mA
        c.cccs("F1", Circuit::gnd(), b, "V1", 2.0);
        c.resistor("RL", b, Circuit::gnd(), 1e3);
        let (prep, x) = solve_dc(c);
        // F injects 2*i(V1) = -2 mA from gnd to b -> v(b) = -2 V.
        assert!((prep.voltage(&x, b) + 2.0).abs() < 1e-9);
    }

    #[test]
    fn ccvs_transresistance() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), 1.0);
        c.resistor("R1", a, Circuit::gnd(), 1e3);
        c.ccvs("H1", b, Circuit::gnd(), "V1", 500.0);
        c.resistor("RL", b, Circuit::gnd(), 1e3);
        let (prep, x) = solve_dc(c);
        // v(b) = 500 * (-1 mA) = -0.5 V.
        assert!((prep.voltage(&x, b) + 0.5).abs() < 1e-9);
    }

    #[test]
    fn inductor_is_dc_short() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), 1.0);
        c.inductor("L1", a, b, 1e-6);
        c.resistor("R1", b, Circuit::gnd(), 100.0);
        let (prep, x) = solve_dc(c);
        assert!((prep.voltage(&x, b) - 1.0).abs() < 1e-6);
        let i = x[prep.branch_slot("L1").unwrap()];
        assert!((i - 0.01).abs() < 1e-6);
    }

    #[test]
    fn temperature_scales_thermal_voltage() {
        let cold = Options::at_celsius(-40.0);
        let room = Options::at_celsius(26.85);
        let hot = Options::at_celsius(125.0);
        assert!(cold.vt < room.vt && room.vt < hot.vt);
        assert!((room.vt - Options::default().vt).abs() < 1e-4);
        // A diode drop shrinks with temperature at fixed current: check
        // via the junction law directly.
        use crate::devices::diode::eval_diode;
        use crate::model::DiodeModel;
        let m = DiodeModel::default();
        let i_cold = eval_diode(&m, 0.65, cold.vt, 0.0).id;
        let i_hot = eval_diode(&m, 0.65, hot.vt, 0.0).id;
        assert!(
            i_cold > i_hot,
            "same V -> more current when cold (fixed IS)"
        );
    }

    #[test]
    fn converged_checks_tolerances() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, Circuit::gnd(), 1.0);
        let prep = Prepared::compile(&c).unwrap();
        let opts = Options::default();
        assert!(converged(&prep, &[1.0], &[1.0 + 1e-7], &opts));
        assert!(!converged(&prep, &[1.0], &[1.01], &opts));
    }

    #[test]
    fn pattern_probe_matches_assembly_coords() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), 1.0);
        c.resistor("R1", a, b, 1e3);
        c.resistor("R2", b, Circuit::gnd(), 1e3);
        let prep = Prepared::compile(&c).unwrap();
        let opts = Options::default();
        let mode = Mode::Dc { source_scale: 1.0 };
        let x = vec![0.0; prep.num_unknowns];
        let pat = real_pattern(&prep, &x, &opts, &mode, prep.num_voltage_unknowns);
        // Two resistors (4 stamps each, minus ground drops), one source
        // (4 branch stamps minus ground drops), plus one diagonal slot
        // per voltage row.
        assert!(pat.len() >= prep.num_unknowns);
        assert!(pat.contains(&(0, 0)));
        for &(r, c) in &pat {
            assert!(r < prep.num_unknowns && c < prep.num_unknowns);
        }
    }
}
