//! A SPICE-class analog circuit simulator.
//!
//! This crate is the transistor-level substrate of the AHFIC design kit:
//! a modified-nodal-analysis simulator with the device set and analyses
//! needed to reproduce the DAC'96 high-frequency bipolar design flow:
//!
//! - **Devices** ([`devices`]): R, C, L, mutual-inductor coupling (K),
//!   independent V/I sources (DC/SIN/PULSE/PWL), all four controlled
//!   sources (E/G/F/H), junction diodes and full Gummel–Poon BJTs with
//!   internal `RB`/`RE`/`RC` nodes, bias-dependent base resistance,
//!   depletion + diffusion charge storage, the `XTF/VTF/ITF`
//!   transit-time model that produces realistic fT roll-off, and
//!   optional `KF`/`AF` flicker noise. Every element implements the one
//!   [`devices::Device`] stamp contract; analyses walk the compiled
//!   device list and never match on element kinds.
//! - **Analyses** (all behind [`analysis::Session`]): Newton operating
//!   point with gmin/source stepping ([`analysis::Session::op`]) and a
//!   linear/nonlinear stamp split that replays cached linear stamps
//!   across iterations, DC sweeps ([`analysis::Session::dc`]), complex
//!   AC sweeps ([`analysis::Session::ac`]), noise
//!   ([`analysis::Session::noise`]) and adaptive trapezoidal transient
//!   ([`analysis::Session::tran`]). Analyses honor a cooperative
//!   [`analysis::CancelToken`] and a per-run resource
//!   [`analysis::Budget`], checked at Newton-iteration and timestep
//!   boundaries.
//! - **Compile cache** ([`cache`]): a content-addressed
//!   [`cache::PreparedCache`] shares one compiled deck (`Arc`) across
//!   concurrent sessions, with LRU eviction and hit/miss telemetry —
//!   the substrate of the `ahfic-serve` job queue.
//! - **Measurements** ([`measure`]): fT extraction from `|h21|`
//!   extrapolation, oscillation frequency from zero crossings, THD, AC
//!   gain/bandwidth.
//! - **Netlists**: a builder API ([`circuit::Circuit`]) and a SPICE deck
//!   parser ([`parse::parse_netlist`]).
//! - **Telemetry** ([`trace`]): install a [`trace::TraceSink`] via
//!   [`analysis::Options::trace`] and every analysis emits spans and
//!   work counters (Newton iterations, factorizations, step counts);
//!   with no sink installed the instrumentation is a single branch.
//!
//! # Example
//!
//! ```
//! use ahfic_spice::prelude::*;
//!
//! // 2:1 resistive divider driven by 10 V.
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.vsource("V1", vin, Circuit::gnd(), 10.0);
//! ckt.resistor("R1", vin, out, 1e3);
//! ckt.resistor("R2", out, Circuit::gnd(), 1e3);
//! let sess = Session::compile(&ckt)?;
//! let op = sess.op()?;
//! assert!((sess.prepared().voltage(op.x(), out) - 5.0).abs() < 1e-9);
//! # Ok::<(), ahfic_spice::error::SpiceError>(())
//! ```

pub mod analysis;
pub mod cache;
pub mod circuit;
pub mod devices;
pub mod error;
pub mod lint;
pub mod measure;
pub mod model;
pub mod parse;
pub mod subckt;
pub mod units;
pub mod wave;

pub use ahfic_trace as trace;

/// Convenient glob import for typical use.
pub mod prelude {
    #[allow(deprecated)]
    pub use crate::analysis::{ac_sweep, dc_sweep, op, op_from, tran};
    pub use crate::analysis::{
        bjt_operating, Budget, CancelToken, FaultInjector, FaultKind, LadderConfig, Options,
        PacParams, PacResult, PssParams, PssResult, PssStatus, Session, SolverChoice, StreamPolicy,
        TranParams, TranResult, TranStatus,
    };
    pub use crate::cache::PreparedCache;
    pub use crate::circuit::{Circuit, NodeId, Prepared};
    pub use crate::error::{ConvergenceReport, RungReport, SpiceError, WorstUnknown};
    pub use crate::lint::{LintCode, LintDiagnostic, LintPolicy, LintReport, LintSeverity};
    pub use crate::model::{BjtModel, BjtPolarity, DiodeModel};
    pub use crate::wave::{AcWaveform, SourceWave, Waveform};
    pub use ahfic_trace::{InMemorySink, JsonLinesSink, NullSink, TraceHandle, TraceSink};
}

pub use circuit::{Circuit, NodeId, Prepared};
pub use error::SpiceError;
pub use model::{BjtModel, BjtPolarity, DiodeModel};
