//! Harder simulator workouts: rectifiers, switching, saturation, sweeps
//! across operating regions — the stress cases a production simulator
//! must take in stride.

use ahfic_num::interp::{linspace, logspace};
use ahfic_spice::analysis::{Session, TranParams};
use ahfic_spice::circuit::Circuit;
use ahfic_spice::model::{BjtModel, DiodeModel};
use ahfic_spice::parse::parse_netlist;
use ahfic_spice::wave::SourceWave;

/// Half-wave rectifier with smoothing cap: the classic stiff transient
/// (diode switching + large RC time constant).
#[test]
fn half_wave_rectifier_charges_and_ripples() {
    let mut c = Circuit::new();
    let ac = c.node("ac");
    let out = c.node("out");
    c.vsource_wave(
        "VAC",
        ac,
        Circuit::gnd(),
        SourceWave::Sin {
            offset: 0.0,
            ampl: 5.0,
            freq: 1e3,
            delay: 0.0,
            damping: 0.0,
            phase_deg: 0.0,
        },
    );
    let dm = c.add_diode_model(DiodeModel::default());
    c.diode("D1", ac, out, dm, 1.0);
    c.capacitor("C1", out, Circuit::gnd(), 10e-6);
    c.resistor("RL", out, Circuit::gnd(), 10e3);
    let sess = Session::compile(&c).unwrap();
    let w = sess
        .tran(&TranParams::new(10e-3, 5e-6))
        .unwrap()
        .into_wave();
    let v = w.signal("v(out)").unwrap();
    let t = w.axis();
    // After a few cycles the output sits near the peak minus a diode drop.
    let late: Vec<f64> = t
        .iter()
        .zip(v.iter())
        .filter(|(tt, _)| **tt > 5e-3)
        .map(|(_, vv)| *vv)
        .collect();
    let vmin = late.iter().cloned().fold(f64::MAX, f64::min);
    let vmax = late.iter().cloned().fold(f64::MIN, f64::max);
    assert!(vmax > 4.0 && vmax < 5.0, "peak {vmax}");
    // Ripple: tau = RC = 0.1 s >> period, so only a small sag.
    assert!(vmax - vmin < 0.5, "ripple {}", vmax - vmin);
    assert!(vmin > 3.5, "valley {vmin}");
}

/// BJT saturated switch: drive a common-emitter stage rail to rail and
/// check both logic levels plus the propagation behaviour.
#[test]
fn bjt_switch_saturates_and_cuts_off() {
    let mut c = Circuit::new();
    let vcc = c.node("vcc");
    let b = c.node("b");
    let col = c.node("c");
    c.vsource("VCC", vcc, Circuit::gnd(), 5.0);
    c.vsource_wave(
        "VIN",
        b,
        Circuit::gnd(),
        SourceWave::Pulse {
            v1: 0.0,
            v2: 5.0,
            delay: 10e-9,
            rise: 1e-9,
            fall: 1e-9,
            width: 50e-9,
            period: 0.0,
        },
    );
    let mut m = BjtModel::named("sw");
    m.bf = 80.0;
    m.cje = 60e-15;
    m.cjc = 30e-15;
    m.tf = 20e-12;
    m.tr = 2e-9;
    m.rb = 0.0;
    let mi = c.add_bjt_model(m);
    // Base resistor limits drive; collector load to VCC.
    let bb = c.node("bb");
    c.resistor("RBB", b, bb, 10e3);
    c.resistor("RC", vcc, col, 1e3);
    c.bjt("Q1", col, bb, Circuit::gnd(), mi, 1.0);
    let sess = Session::compile(&c).unwrap();
    let w = sess
        .tran(&TranParams::new(120e-9, 0.2e-9))
        .unwrap()
        .into_wave();
    let v = w.signal("v(c)").unwrap();
    let t = w.axis();
    let at = |time: f64| {
        let k = t.iter().position(|&tt| tt >= time).unwrap();
        v[k]
    };
    assert!(at(5e-9) > 4.9, "off level {}", at(5e-9)); // before the pulse
    assert!(at(40e-9) < 0.4, "saturated level {}", at(40e-9)); // on
    assert!(at(115e-9) > 4.0, "recovered level {}", at(115e-9)); // off again
}

/// Gummel plot: sweep VBE over five decades of collector current and
/// verify the exponential slope plus the high-injection knee.
#[test]
fn gummel_plot_shows_ideal_slope_and_knee() {
    let ckt = parse_netlist(
        ".model g NPN (IS=1e-16 BF=100 IKF=3m NF=1.0)\n\
         VB b 0 0.5\nVC c 0 2\nQ1 c b 0 g\n",
    )
    .unwrap();
    let mut sess = Session::compile(&ckt).unwrap();
    let vbes = linspace(0.45, 0.95, 26);
    let sweep = sess.dc("VB", &vbes).unwrap();
    let ic: Vec<f64> = sweep.signal("i(VC)").unwrap().iter().map(|i| -i).collect();
    // Low-injection slope: one decade per ~59.5 mV.
    let k1 = 2; // 0.49 V
    let k2 = 7; // 0.59 V
    let decades = (ic[k2] / ic[k1]).log10();
    let mv_per_decade = (vbes[k2] - vbes[k1]) * 1e3 / decades;
    assert!(
        (mv_per_decade - 59.5).abs() < 2.0,
        "slope {mv_per_decade} mV/dec"
    );
    // High injection: above IKF the log-slope (decades per volt of VBE)
    // drops to about half the ideal value.
    let slope_lo = (ic[k2] / ic[k1]).log10() / (vbes[k2] - vbes[k1]);
    let slope_hi = (ic[25] / ic[20]).log10() / (vbes[25] - vbes[20]);
    assert!(
        slope_hi < 0.75 * slope_lo,
        "knee: hi {slope_hi:.2} vs lo {slope_lo:.2} dec/V"
    );
    assert!(ic[25] > 3e-3, "deep high injection reached: {}", ic[25]);
}

/// AC across six decades on a two-pole amplifier: monotonic roll-off and
/// ~-40 dB/dec asymptote.
#[test]
fn two_pole_rolloff_is_40db_per_decade() {
    let mut c = Circuit::new();
    let (a, m, o) = (c.node("a"), c.node("m"), c.node("o"));
    c.vsource("VIN", a, Circuit::gnd(), 0.0);
    c.set_ac("VIN", 1.0, 0.0).unwrap();
    c.resistor("R1", a, m, 1e3);
    c.capacitor("C1", m, Circuit::gnd(), 1e-9); // pole at 159 kHz
    let buf = c.node("buf");
    c.vcvs("E1", buf, Circuit::gnd(), m, Circuit::gnd(), 1.0);
    c.resistor("R2", buf, o, 10e3);
    c.capacitor("C2", o, Circuit::gnd(), 1e-9); // pole at 15.9 kHz
    let sess = Session::compile(&c).unwrap();
    let dc = sess.op().unwrap();
    let freqs = logspace(1e2, 1e8, 61);
    let w = sess.ac(dc.x(), &freqs).unwrap();
    let mag = w.magnitude("v(o)").unwrap();
    for k in 1..mag.len() {
        assert!(mag[k] <= mag[k - 1] + 1e-12, "monotonic roll-off");
    }
    // Asymptotic slope between 10 MHz and 100 MHz.
    let k10 = freqs.iter().position(|&f| f >= 1e7).unwrap();
    let k100 = freqs.len() - 1;
    let slope_db = 20.0 * (mag[k100] / mag[k10]).log10() / (freqs[k100] / freqs[k10]).log10();
    assert!((slope_db + 40.0).abs() < 1.5, "slope {slope_db} dB/dec");
}

/// A differential pair driven to full switching: transfer curve is a
/// tanh with limits at +/- I*R.
#[test]
fn diff_pair_transfer_is_tanh_limited() {
    let ckt = parse_netlist(
        ".model d NPN (IS=1e-16 BF=120)\n\
         VCC vcc 0 5\n\
         VIP inp 0 2.5\n\
         VIN inn 0 2.5\n\
         RLP vcc cp 1k\n\
         RLN vcc cn 1k\n\
         Q1 cp inp e d\n\
         Q2 cn inn e d\n\
         IT e 0 1m\n",
    )
    .unwrap();
    let mut sess = Session::compile(&ckt).unwrap();
    let sweep = sess.dc("VIP", &linspace(2.2, 2.8, 25)).unwrap();
    let cp = sweep.signal("v(cp)").unwrap();
    let cn = sweep.signal("v(cn)").unwrap();
    // Fully steered at the ends: one side carries all the current.
    assert!((cp[0] - 5.0).abs() < 0.01, "Q1 off at low vin: {}", cp[0]);
    assert!((cn[0] - 4.0).abs() < 0.02, "Q2 carries 1 mA: {}", cn[0]);
    assert!((cp[24] - 4.0).abs() < 0.02);
    assert!((cn[24] - 5.0).abs() < 0.01);
    // Balanced in the middle.
    let mid = 12;
    assert!((cp[mid] - cn[mid]).abs() < 1e-6);
    assert!((cp[mid] - 4.5).abs() < 0.01);
    // Differential output follows alpha*I*R*tanh(vd/(2*Vt)); check at the
    // grid point nearest vd = 2 Vt using the actual grid drive.
    let vt = 0.025852;
    let vd_idx = sweep
        .axis()
        .iter()
        .position(|&v| v >= 2.5 + 2.0 * vt)
        .unwrap();
    let vd = sweep.axis()[vd_idx] - 2.5;
    let vdiff = cn[vd_idx] - cp[vd_idx];
    let expect = 1e-3 * 1e3 * (vd / (2.0 * vt)).tanh();
    assert!(
        (vdiff - expect).abs() < 0.03,
        "tanh point at vd={vd:.4}: {vdiff} vs {expect}"
    );
}

/// Same netlist through the subckt path must match the flat netlist
/// exactly.
#[test]
fn subckt_expansion_matches_flat_netlist() {
    let flat = parse_netlist("V1 in 0 3\nR1 in m 1k\nR2 m 0 2k\nC1 m 0 1p\n").unwrap();
    let hier = parse_netlist(
        ".subckt rdiv a b\nR1 a b 1k\n.ends\n\
         V1 in 0 3\nX1 in m rdiv\nR2 m 0 2k\nC1 m 0 1p\n",
    )
    .unwrap();
    let sf = Session::compile(&flat).unwrap();
    let sh = Session::compile(&hier).unwrap();
    let rf = sf.op().unwrap();
    let rh = sh.op().unwrap();
    let (pf, ph) = (sf.prepared(), sh.prepared());
    let mf = pf.circuit.find_node("m").unwrap();
    let mh = ph.circuit.find_node("m").unwrap();
    assert!((pf.voltage(rf.x(), mf) - ph.voltage(rh.x(), mh)).abs() < 1e-12);
}
