//! Tests for the behavioral (closure-defined) voltage source — the
//! mixed-level hook that embeds block-level behavior inside the circuit
//! simulator.

use ahfic_spice::analysis::{Session, TranParams};
use ahfic_spice::circuit::{BehavioralFn, Circuit};
use ahfic_spice::wave::SourceWave;

#[test]
fn linear_behavioral_source_acts_as_vcvs() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.vsource("V1", a, Circuit::gnd(), 2.0);
    ckt.behavioral_vsource(
        "B1",
        b,
        Circuit::gnd(),
        &[a],
        BehavioralFn::new(|v| 5.0 * v[0]),
    );
    ckt.resistor("RL", b, Circuit::gnd(), 1e3);
    let sess = Session::compile(&ckt).unwrap();
    let r = sess.op().unwrap();
    assert!((sess.prepared().voltage(r.x(), b) - 10.0).abs() < 1e-9);
}

#[test]
fn nonlinear_behavioral_source_converges() {
    // v(b) = tanh(3 * v(a)) — a soft limiter in the loop.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.vsource("V1", a, Circuit::gnd(), 0.4);
    ckt.behavioral_vsource(
        "B1",
        b,
        Circuit::gnd(),
        &[a],
        BehavioralFn::new(|v| (3.0 * v[0]).tanh()),
    );
    ckt.resistor("RL", b, Circuit::gnd(), 1e3);
    let sess = Session::compile(&ckt).unwrap();
    let r = sess.op().unwrap();
    assert!((sess.prepared().voltage(r.x(), b) - (1.2f64).tanh()).abs() < 1e-9);
}

#[test]
fn two_control_mixer_in_transient() {
    // A behavioral multiplier (ideal mixer) inside a transient run:
    // product of 10 MHz and 8 MHz tones shows 2 MHz and 18 MHz.
    let mut ckt = Circuit::new();
    let rf = ckt.node("rf");
    let lo = ckt.node("lo");
    let out = ckt.node("out");
    let sine = |f: f64| SourceWave::Sin {
        offset: 0.0,
        ampl: 1.0,
        freq: f,
        delay: 0.0,
        damping: 0.0,
        phase_deg: 0.0,
    };
    ckt.vsource_wave("VRF", rf, Circuit::gnd(), sine(10e6));
    ckt.vsource_wave("VLO", lo, Circuit::gnd(), sine(8e6));
    ckt.behavioral_vsource(
        "BMIX",
        out,
        Circuit::gnd(),
        &[rf, lo],
        BehavioralFn::new(|v| v[0] * v[1]),
    );
    ckt.resistor("RL", out, Circuit::gnd(), 1e3);
    let sess = Session::compile(&ckt).unwrap();
    let wave = sess.tran(&TranParams::new(2e-6, 1e-9)).unwrap().into_wave();
    let (fs, y) = wave.resample_uniform("v(out)", 4000).unwrap();
    let a_dif = ahfic_num::goertzel::tone_amplitude(&y, fs, 2e6).abs();
    let a_sum = ahfic_num::goertzel::tone_amplitude(&y, fs, 18e6).abs();
    assert!((a_dif - 0.5).abs() < 0.02, "difference product {a_dif}");
    assert!((a_sum - 0.5).abs() < 0.05, "sum product {a_sum}");
}

#[test]
fn ac_linearizes_at_operating_point() {
    // f(v) = v^2 has small-signal gain 2*V0 at the OP.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.vsource("V1", a, Circuit::gnd(), 1.5);
    ckt.set_ac("V1", 1.0, 0.0).unwrap();
    ckt.behavioral_vsource(
        "B1",
        b,
        Circuit::gnd(),
        &[a],
        BehavioralFn::new(|v| v[0] * v[0]),
    );
    ckt.resistor("RL", b, Circuit::gnd(), 1e3);
    let sess = Session::compile(&ckt).unwrap();
    let dc = sess.op().unwrap();
    assert!((sess.prepared().voltage(dc.x(), b) - 2.25).abs() < 1e-9);
    let acw = sess.ac(dc.x(), &[1e6]).unwrap();
    let gain = acw.signal("v(b)").unwrap()[0].abs();
    assert!((gain - 3.0).abs() < 1e-4, "small-signal gain {gain}");
}

#[test]
fn behavioral_source_with_bjt_load_converges() {
    // Behavioral bias generator driving a real transistor — the two
    // worlds in one Newton loop.
    let mut ckt = Circuit::new();
    let ctrl = ckt.node("ctrl");
    let base = ckt.node("base");
    let col = ckt.node("col");
    let vcc = ckt.node("vcc");
    ckt.vsource("VCC", vcc, Circuit::gnd(), 5.0);
    ckt.vsource("VCTRL", ctrl, Circuit::gnd(), 1.0);
    // Behavioral soft clamp keeps the base near 0.75 V.
    ckt.behavioral_vsource(
        "BBIAS",
        base,
        Circuit::gnd(),
        &[ctrl],
        BehavioralFn::new(|v| 0.65 + 0.1 * (v[0]).tanh()),
    );
    let mut m = ahfic_spice::model::BjtModel::named("n");
    m.cje = 50e-15;
    m.tf = 15e-12;
    let mi = ckt.add_bjt_model(m);
    ckt.resistor("RC", vcc, col, 1e3);
    ckt.bjt("Q1", col, base, Circuit::gnd(), mi, 1.0);
    let sess = Session::compile(&ckt).unwrap();
    let r = sess.op().unwrap();
    let vb = sess.prepared().voltage(r.x(), base);
    assert!((vb - (0.65 + 0.1 * 1.0f64.tanh())).abs() < 1e-9);
    let vc = sess.prepared().voltage(r.x(), col);
    assert!(vc > 0.1 && vc < 5.0, "vc = {vc}");
}
