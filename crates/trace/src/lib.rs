//! Structured simulation telemetry for the AHFIC kit.
//!
//! Every analysis engine in the workspace (SPICE operating point, DC/AC/
//! noise sweeps, transient, the AHDL system simulator and the top-down
//! flow) reports what it did — spans with wall time, named counters,
//! one-shot events — through the [`TraceSink`] trait. Three sinks ship
//! with the crate:
//!
//! - [`NullSink`]: accepts and discards everything (for overhead tests);
//! - [`InMemorySink`]: buffers [`TraceRecord`]s for in-process analysis
//!   and the `render_trace_summary` report;
//! - [`JsonLinesSink`]: one JSON object per record, machine-readable.
//!
//! # Zero cost when disabled
//!
//! Analyses hold a [`TraceHandle`] (a cloneable `Option<Arc<dyn
//! TraceSink>>`). The hot paths obtain a borrowed [`Tracer`] — a `Copy`
//! wrapper around `Option<&dyn TraceSink>` — and every primitive is a
//! single branch on that option: no clock reads, no allocation, and no
//! dynamic dispatch happen unless a sink is installed.
//!
//! # Example
//!
//! ```
//! use ahfic_trace::{InMemorySink, RecordKind, TraceHandle};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(InMemorySink::new());
//! let handle = TraceHandle::new(&sink);
//! {
//!     let t = handle.tracer();
//!     let _span = t.span("op");
//!     t.counter("op.newton_iterations", 7.0);
//! }
//! let records = sink.records();
//! assert_eq!(records.len(), 3);
//! assert_eq!(records[0].kind, RecordKind::SpanStart);
//! assert_eq!(records[1].name, "op.newton_iterations");
//! assert_eq!(records[2].kind, RecordKind::SpanEnd);
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

mod stats;
mod summary;

pub use stats::{ContinuationStats, SolverStats, SweepStats, TranStats};
pub use summary::{summarize_top_level, SpanSummary};

/// What a [`TraceRecord`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecordKind {
    /// A span (timed region) opened. `value` is unused.
    SpanStart,
    /// A span closed; `value` is the wall time in seconds.
    SpanEnd,
    /// A named quantity; `value` is the reading.
    Counter,
    /// A one-shot marker. `value` is unused.
    Event,
}

/// One telemetry record. The flat shape (no payload enum) keeps the
/// JSON-lines format trivial and round-trippable.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Record discriminator.
    pub kind: RecordKind,
    /// Span/counter/event name (dotted hierarchy by convention,
    /// e.g. `tran.accepted_steps`).
    pub name: String,
    /// Wall seconds for `SpanEnd`, the reading for `Counter`, `0.0`
    /// otherwise.
    pub value: f64,
}

impl TraceRecord {
    /// Convenience constructor.
    pub fn new(kind: RecordKind, name: &str, value: f64) -> Self {
        TraceRecord {
            kind,
            name: name.to_string(),
            value,
        }
    }
}

/// Destination of telemetry records. Implementations must be callable
/// from multiple threads (sweeps are parallel), hence `&self` methods
/// and the `Send + Sync` bound.
pub trait TraceSink: Send + Sync {
    /// Accepts one record.
    fn record(&self, rec: TraceRecord);
}

/// Recovers a poisoned sink lock. A panicking recording thread must not
/// disable telemetry for every other thread, and each record is pushed
/// or written atomically under the lock, so the protected state stays
/// coherent even after a panic mid-`record`.
fn lock_sink<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A sink that discards everything. Used to measure the enabled-path
/// overhead (clock reads and record construction) without storage costs.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _rec: TraceRecord) {}
}

/// Buffers records in memory for later inspection.
#[derive(Debug, Default)]
pub struct InMemorySink {
    records: Mutex<Vec<TraceRecord>>,
}

impl InMemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        InMemorySink::default()
    }

    /// A snapshot of everything recorded so far.
    pub fn records(&self) -> Vec<TraceRecord> {
        lock_sink(&self.records).clone()
    }

    /// Drains and returns everything recorded so far.
    pub fn take(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut *lock_sink(&self.records))
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        lock_sink(&self.records).len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for InMemorySink {
    fn record(&self, rec: TraceRecord) {
        lock_sink(&self.records).push(rec);
    }
}

/// Writes one JSON object per record to the wrapped writer
/// (`{"kind": "Counter", "name": "op.newton_iterations", "value": 7}`).
///
/// Lines round-trip through `serde_json::from_str::<TraceRecord>`.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        JsonLinesSink {
            out: Mutex::new(out),
        }
    }

    /// Consumes the sink, returning the writer. A poisoned lock is
    /// recovered: complete records were fully written before any panic,
    /// so the writer's contents are still line-coherent.
    pub fn into_inner(self) -> W {
        self.out
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl JsonLinesSink<Vec<u8>> {
    /// A sink buffering the JSON lines in memory.
    pub fn buffered() -> Self {
        JsonLinesSink::new(Vec::new())
    }

    /// The buffered JSON-lines text so far.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&lock_sink(&self.out)).into_owned()
    }
}

impl<W: Write + Send> TraceSink for JsonLinesSink<W> {
    fn record(&self, rec: TraceRecord) {
        // `TraceRecord` is a flat struct of primitives and strings;
        // serialization cannot fail, but if it ever did the right
        // degradation for telemetry is to drop the record, not panic.
        let Ok(line) = serde_json::to_string(&rec) else {
            return;
        };
        let mut out = lock_sink(&self.out);
        let _ = out.write_all(line.as_bytes());
        let _ = out.write_all(b"\n");
    }
}

/// Owning, cloneable handle to an optional sink. Analyses store this in
/// their options; `off()` (the default) disables telemetry entirely.
#[derive(Clone, Default)]
pub struct TraceHandle {
    sink: Option<Arc<dyn TraceSink>>,
}

impl TraceHandle {
    /// The disabled handle: every primitive through it is a single
    /// not-taken branch.
    pub const fn off() -> Self {
        TraceHandle { sink: None }
    }

    /// A handle sharing ownership of `sink`.
    pub fn new<S: TraceSink + 'static>(sink: &Arc<S>) -> Self {
        TraceHandle {
            sink: Some(sink.clone()),
        }
    }

    /// A handle from an already-erased sink.
    pub fn from_arc(sink: Arc<dyn TraceSink>) -> Self {
        TraceHandle { sink: Some(sink) }
    }

    /// Whether a sink is installed.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Borrows the handle as the `Copy` hot-path wrapper.
    pub fn tracer(&self) -> Tracer<'_> {
        Tracer {
            sink: self.sink.as_deref(),
        }
    }
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.enabled() {
            "TraceHandle(on)"
        } else {
            "TraceHandle(off)"
        })
    }
}

/// Equality ignores the sink identity: two handles compare equal when
/// both are enabled or both disabled. This keeps containers deriving
/// `PartialEq` working without demanding sink comparability.
impl PartialEq for TraceHandle {
    fn eq(&self, other: &Self) -> bool {
        self.enabled() == other.enabled()
    }
}

/// Borrowed, `Copy` tracing context used inside hot loops. All methods
/// are no-ops (one predictable branch) when no sink is installed.
#[derive(Clone, Copy, Default)]
pub struct Tracer<'a> {
    sink: Option<&'a dyn TraceSink>,
}

impl<'a> Tracer<'a> {
    /// The disabled tracer.
    pub const fn off() -> Tracer<'static> {
        Tracer { sink: None }
    }

    /// A tracer writing to `sink`.
    pub fn new(sink: &'a dyn TraceSink) -> Self {
        Tracer { sink: Some(sink) }
    }

    /// Whether records actually go anywhere. Use to skip expensive
    /// formatting on the disabled path.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Opens a timed span; it closes (recording wall time) when the
    /// returned guard drops. Nest spans by holding multiple guards —
    /// drop order yields well-formed LIFO nesting per thread.
    pub fn span(&self, name: &str) -> Span<'a> {
        match self.sink {
            None => Span { open: None },
            Some(sink) => {
                sink.record(TraceRecord::new(RecordKind::SpanStart, name, 0.0));
                Span {
                    open: Some(OpenSpan {
                        sink,
                        started: Instant::now(),
                        name: name.to_string(),
                    }),
                }
            }
        }
    }

    /// Records a named reading.
    pub fn counter(&self, name: &str, value: f64) {
        if let Some(sink) = self.sink {
            sink.record(TraceRecord::new(RecordKind::Counter, name, value));
        }
    }

    /// Records a one-shot marker.
    pub fn event(&self, name: &str) {
        if let Some(sink) = self.sink {
            sink.record(TraceRecord::new(RecordKind::Event, name, 0.0));
        }
    }
}

struct OpenSpan<'a> {
    sink: &'a dyn TraceSink,
    started: Instant,
    name: String,
}

/// Guard of an open span; records `SpanEnd` with the elapsed wall time
/// on drop.
pub struct Span<'a> {
    open: Option<OpenSpan<'a>>,
}

impl Span<'_> {
    /// Closes the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            open.sink.record(TraceRecord::new(
                RecordKind::SpanEnd,
                &open.name,
                open.started.elapsed().as_secs_f64(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_emits_nothing_and_costs_no_clock() {
        let t = Tracer::off();
        assert!(!t.enabled());
        let span = t.span("nothing");
        t.counter("c", 1.0);
        t.event("e");
        drop(span);
        // Nothing observable; the real assertion is that no sink panics
        // and `span` carried no state.
    }

    #[test]
    fn in_memory_sink_preserves_order_and_nesting() {
        let sink = Arc::new(InMemorySink::new());
        let handle = TraceHandle::new(&sink);
        let t = handle.tracer();
        {
            let _outer = t.span("outer");
            {
                let _inner = t.span("inner");
                t.counter("inner.count", 2.0);
            }
            t.event("outer.done");
        }
        let recs = sink.records();
        let kinds: Vec<(RecordKind, &str)> =
            recs.iter().map(|r| (r.kind, r.name.as_str())).collect();
        assert_eq!(
            kinds,
            vec![
                (RecordKind::SpanStart, "outer"),
                (RecordKind::SpanStart, "inner"),
                (RecordKind::Counter, "inner.count"),
                (RecordKind::SpanEnd, "inner"),
                (RecordKind::Event, "outer.done"),
                (RecordKind::SpanEnd, "outer"),
            ]
        );
        assert!(recs[3].value >= 0.0);
    }

    #[test]
    fn json_lines_round_trip() {
        let sink = JsonLinesSink::buffered();
        sink.record(TraceRecord::new(RecordKind::Counter, "x.y", 3.5));
        sink.record(TraceRecord::new(RecordKind::SpanEnd, "x", 1e-4));
        let text = sink.contents();
        let parsed: Vec<TraceRecord> = text
            .lines()
            .map(|l| serde_json::from_str(l).expect("line parses"))
            .collect();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], TraceRecord::new(RecordKind::Counter, "x.y", 3.5));
        assert_eq!(parsed[1].kind, RecordKind::SpanEnd);
        assert!((parsed[1].value - 1e-4).abs() < 1e-18);
    }

    #[test]
    fn handle_equality_tracks_enablement_only() {
        let a = TraceHandle::off();
        let b = TraceHandle::new(&Arc::new(NullSink));
        let c = TraceHandle::new(&Arc::new(InMemorySink::new()));
        assert_eq!(a, TraceHandle::default());
        assert_ne!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn span_explicit_end() {
        let sink = Arc::new(InMemorySink::new());
        let handle = TraceHandle::new(&sink);
        let span = handle.tracer().span("s");
        span.end();
        assert_eq!(sink.records().len(), 2);
    }
}
