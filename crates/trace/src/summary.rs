//! Aggregation of a flat record stream into per-top-level-span
//! summaries (used by `ahfic::report::render_trace_summary` and the
//! solver smoke bench).

use crate::{RecordKind, TraceRecord};

/// Aggregate view of one top-level (depth-0) span: its wall time plus
/// every counter recorded while it was open, summed by name.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanSummary {
    /// Span name.
    pub name: String,
    /// Wall time from the matching `SpanEnd` record.
    pub wall_seconds: f64,
    /// `(counter name, summed value)` in first-seen order.
    pub counters: Vec<(String, f64)>,
}

impl SpanSummary {
    /// The summed value of `counter`, if it was recorded in this span.
    pub fn counter(&self, counter: &str) -> Option<f64> {
        self.counters
            .iter()
            .find(|(n, _)| n == counter)
            .map(|(_, v)| *v)
    }
}

/// Walks a record stream (as produced by a single coordinator thread,
/// so spans nest LIFO) and returns one [`SpanSummary`] per top-level
/// span, in order of appearance. Counters inside nested spans are
/// attributed to the enclosing top-level span; counters outside any
/// span are dropped.
pub fn summarize_top_level(records: &[TraceRecord]) -> Vec<SpanSummary> {
    let mut out: Vec<SpanSummary> = Vec::new();
    let mut depth = 0usize;
    let mut current: Option<SpanSummary> = None;

    for rec in records {
        match rec.kind {
            RecordKind::SpanStart => {
                if depth == 0 {
                    current = Some(SpanSummary {
                        name: rec.name.clone(),
                        wall_seconds: 0.0,
                        counters: Vec::new(),
                    });
                }
                depth += 1;
            }
            RecordKind::SpanEnd => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(mut s) = current.take() {
                        s.wall_seconds = rec.value;
                        out.push(s);
                    }
                }
            }
            RecordKind::Counter => {
                if let Some(s) = current.as_mut() {
                    match s.counters.iter_mut().find(|(n, _)| n == &rec.name) {
                        Some((_, v)) => *v += rec.value,
                        None => s.counters.push((rec.name.clone(), rec.value)),
                    }
                }
            }
            RecordKind::Event => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: RecordKind, name: &str, value: f64) -> TraceRecord {
        TraceRecord::new(kind, name, value)
    }

    #[test]
    fn nested_counters_attribute_to_top_level() {
        let records = vec![
            rec(RecordKind::SpanStart, "tran", 0.0),
            rec(RecordKind::SpanStart, "op", 0.0),
            rec(RecordKind::Counter, "op.newton_iterations", 5.0),
            rec(RecordKind::SpanEnd, "op", 0.001),
            rec(RecordKind::Counter, "tran.accepted_steps", 40.0),
            rec(RecordKind::Counter, "tran.accepted_steps", 2.0),
            rec(RecordKind::SpanEnd, "tran", 0.02),
            rec(RecordKind::SpanStart, "ac", 0.0),
            rec(RecordKind::Counter, "ac.points", 60.0),
            rec(RecordKind::SpanEnd, "ac", 0.003),
        ];
        let sums = summarize_top_level(&records);
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].name, "tran");
        assert!((sums[0].wall_seconds - 0.02).abs() < 1e-15);
        assert_eq!(sums[0].counter("tran.accepted_steps"), Some(42.0));
        assert_eq!(sums[0].counter("op.newton_iterations"), Some(5.0));
        assert_eq!(sums[1].name, "ac");
        assert_eq!(sums[1].counter("ac.points"), Some(60.0));
        assert_eq!(sums[1].counter("missing"), None);
    }

    #[test]
    fn stray_counters_outside_spans_are_dropped() {
        let records = vec![
            rec(RecordKind::Counter, "loose", 1.0),
            rec(RecordKind::SpanStart, "s", 0.0),
            rec(RecordKind::SpanEnd, "s", 0.5),
        ];
        let sums = summarize_top_level(&records);
        assert_eq!(sums.len(), 1);
        assert!(sums[0].counters.is_empty());
    }
}
