//! Per-analysis statistics structs.
//!
//! Analyses accumulate these cheaply (plain integer adds, always on)
//! and emit them as counters through a [`Tracer`](crate::Tracer) only
//! when a sink is installed.

use crate::Tracer;

/// Sparse/dense linear-kernel work: factorization and solve counts and
/// (when timing is enabled) their accumulated wall time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SolverStats {
    /// Number of LU factorizations performed.
    pub factorizations: u64,
    /// Number of triangular solves performed.
    pub solves: u64,
    /// Accumulated factorization wall time (zero unless timing was on).
    pub factor_seconds: f64,
    /// Accumulated solve wall time (zero unless timing was on).
    pub solve_seconds: f64,
    /// Inner GMRES iterations (zero unless the iterative backend ran).
    pub gmres_iterations: u64,
    /// GMRES restart cycles (zero unless the iterative backend ran).
    pub gmres_restarts: u64,
    /// ILU preconditioner (re)factorizations (zero unless the iterative
    /// backend ran).
    pub precond_refactors: u64,
    /// Solves rescued by the direct-LU fallback after GMRES stagnated
    /// or ran out of budget (zero unless the iterative backend ran).
    pub gmres_fallbacks: u64,
}

impl SolverStats {
    /// Adds another accumulator into this one.
    pub fn merge(&mut self, other: &SolverStats) {
        self.factorizations += other.factorizations;
        self.solves += other.solves;
        self.factor_seconds += other.factor_seconds;
        self.solve_seconds += other.solve_seconds;
        self.gmres_iterations += other.gmres_iterations;
        self.gmres_restarts += other.gmres_restarts;
        self.precond_refactors += other.precond_refactors;
        self.gmres_fallbacks += other.gmres_fallbacks;
    }

    /// The work done since `earlier` was captured from the same
    /// accumulator.
    pub fn delta(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            factorizations: self.factorizations - earlier.factorizations,
            solves: self.solves - earlier.solves,
            factor_seconds: self.factor_seconds - earlier.factor_seconds,
            solve_seconds: self.solve_seconds - earlier.solve_seconds,
            gmres_iterations: self.gmres_iterations - earlier.gmres_iterations,
            gmres_restarts: self.gmres_restarts - earlier.gmres_restarts,
            precond_refactors: self.precond_refactors - earlier.precond_refactors,
            gmres_fallbacks: self.gmres_fallbacks - earlier.gmres_fallbacks,
        }
    }

    /// Emits `<prefix>.factorizations`, `.solves`, `.factor_seconds`,
    /// `.solve_seconds` counters. When the iterative backend did any work
    /// this also emits the fixed-name Krylov counters
    /// `solver.gmres.iters`, `solver.gmres.restarts`,
    /// `solver.gmres.precond_refactors` and `solver.gmres.fallbacks`
    /// (conditional, so direct-solver runs keep their exact record
    /// shape). No-op when the tracer is disabled.
    pub fn emit(&self, t: Tracer<'_>, prefix: &str) {
        if !t.enabled() {
            return;
        }
        t.counter(
            &format!("{prefix}.factorizations"),
            self.factorizations as f64,
        );
        t.counter(&format!("{prefix}.solves"), self.solves as f64);
        t.counter(&format!("{prefix}.factor_seconds"), self.factor_seconds);
        t.counter(&format!("{prefix}.solve_seconds"), self.solve_seconds);
        if self.gmres_iterations != 0
            || self.gmres_restarts != 0
            || self.precond_refactors != 0
            || self.gmres_fallbacks != 0
        {
            t.counter("solver.gmres.iters", self.gmres_iterations as f64);
            t.counter("solver.gmres.restarts", self.gmres_restarts as f64);
            t.counter(
                "solver.gmres.precond_refactors",
                self.precond_refactors as f64,
            );
            t.counter("solver.gmres.fallbacks", self.gmres_fallbacks as f64);
        }
    }
}

/// Newton-continuation work for one operating-point solve.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ContinuationStats {
    /// Total Newton iterations across all attempts and stages.
    pub newton_iterations: u64,
    /// Iterations spent in the adaptive damped-Newton rung (0 when it
    /// never ran).
    pub damped_iterations: u64,
    /// Gmin-ladder stages visited (0 when plain Newton converged).
    pub gmin_stages: u64,
    /// Source-stepping steps taken (0 unless source stepping ran).
    pub source_steps: u64,
    /// Pseudo-transient homotopy steps taken (0 unless ptran ran).
    pub ptran_steps: u64,
    /// Times the NaN/Inf assembly guard fired and the ladder recovered
    /// by escalating instead of iterating on garbage.
    pub nonfinite_recoveries: u64,
    /// Ladder rungs attempted (1 = plain Newton sufficed).
    pub rungs_attempted: u64,
}

impl ContinuationStats {
    /// Emits `<prefix>.newton_iterations`, `.damped_iterations`,
    /// `.gmin_stages`, `.source_steps`, `.ptran_steps`,
    /// `.nonfinite_recoveries`, `.rungs_attempted`. No-op when the
    /// tracer is disabled.
    pub fn emit(&self, t: Tracer<'_>, prefix: &str) {
        if !t.enabled() {
            return;
        }
        t.counter(
            &format!("{prefix}.newton_iterations"),
            self.newton_iterations as f64,
        );
        t.counter(
            &format!("{prefix}.damped_iterations"),
            self.damped_iterations as f64,
        );
        t.counter(&format!("{prefix}.gmin_stages"), self.gmin_stages as f64);
        t.counter(&format!("{prefix}.source_steps"), self.source_steps as f64);
        t.counter(&format!("{prefix}.ptran_steps"), self.ptran_steps as f64);
        t.counter(
            &format!("{prefix}.nonfinite_recoveries"),
            self.nonfinite_recoveries as f64,
        );
        t.counter(
            &format!("{prefix}.rungs_attempted"),
            self.rungs_attempted as f64,
        );
    }
}

/// Adaptive-timestep transient work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TranStats {
    /// Steps accepted into the output waveform.
    pub accepted_steps: u64,
    /// Steps rejected (Newton non-convergence or iteration-count/LTE
    /// control) and retried at a smaller h.
    pub rejected_steps: u64,
    /// Newton iterations summed over all attempted steps.
    pub newton_iterations: u64,
    /// Source breakpoints honored by the step controller.
    pub breakpoints: u64,
}

impl TranStats {
    /// Emits `<prefix>.accepted_steps`, `.rejected_steps`,
    /// `.newton_iterations`, `.breakpoints`. No-op when disabled.
    pub fn emit(&self, t: Tracer<'_>, prefix: &str) {
        if !t.enabled() {
            return;
        }
        t.counter(
            &format!("{prefix}.accepted_steps"),
            self.accepted_steps as f64,
        );
        t.counter(
            &format!("{prefix}.rejected_steps"),
            self.rejected_steps as f64,
        );
        t.counter(
            &format!("{prefix}.newton_iterations"),
            self.newton_iterations as f64,
        );
        t.counter(&format!("{prefix}.breakpoints"), self.breakpoints as f64);
    }
}

/// Parallel frequency-sweep shape (AC and noise analyses).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Frequency (or bias) points evaluated.
    pub points: u64,
    /// Worker threads actually used.
    pub threads: u64,
}

impl SweepStats {
    /// Emits `<prefix>.points` and `<prefix>.threads`. No-op when
    /// disabled.
    pub fn emit(&self, t: Tracer<'_>, prefix: &str) {
        if !t.enabled() {
            return;
        }
        t.counter(&format!("{prefix}.points"), self.points as f64);
        t.counter(&format!("{prefix}.threads"), self.threads as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InMemorySink, RecordKind, TraceHandle};
    use std::sync::Arc;

    #[test]
    fn solver_stats_merge_and_delta() {
        let mut a = SolverStats {
            factorizations: 3,
            solves: 7,
            factor_seconds: 0.5,
            solve_seconds: 0.25,
            ..SolverStats::default()
        };
        let b = SolverStats {
            factorizations: 1,
            solves: 2,
            factor_seconds: 0.1,
            solve_seconds: 0.05,
            gmres_iterations: 4,
            gmres_restarts: 1,
            precond_refactors: 2,
            gmres_fallbacks: 1,
        };
        let before = a;
        a.merge(&b);
        let d = a.delta(&before);
        assert_eq!(d.factorizations, 1);
        assert_eq!(d.solves, 2);
        assert!((d.factor_seconds - 0.1).abs() < 1e-12);
        assert_eq!(d.gmres_iterations, 4);
        assert_eq!(d.precond_refactors, 2);
    }

    #[test]
    fn gmres_counters_emit_only_when_nonzero() {
        let sink = Arc::new(InMemorySink::new());
        let handle = TraceHandle::new(&sink);
        SolverStats::default().emit(handle.tracer(), "op");
        assert_eq!(sink.records().len(), 4, "direct runs keep 4 records");

        let sink = Arc::new(InMemorySink::new());
        let handle = TraceHandle::new(&sink);
        SolverStats {
            gmres_iterations: 9,
            gmres_restarts: 1,
            precond_refactors: 3,
            ..SolverStats::default()
        }
        .emit(handle.tracer(), "op");
        let recs = sink.records();
        assert_eq!(recs.len(), 8);
        assert_eq!(recs[4].name, "solver.gmres.iters");
        assert_eq!(recs[4].value, 9.0);
        assert_eq!(recs[6].name, "solver.gmres.precond_refactors");
        assert_eq!(recs[6].value, 3.0);
        assert_eq!(recs[7].name, "solver.gmres.fallbacks");
        assert_eq!(recs[7].value, 0.0);
    }

    #[test]
    fn emit_writes_prefixed_counters() {
        let sink = Arc::new(InMemorySink::new());
        let handle = TraceHandle::new(&sink);
        ContinuationStats {
            newton_iterations: 11,
            gmin_stages: 2,
            ..ContinuationStats::default()
        }
        .emit(handle.tracer(), "op");
        let recs = sink.records();
        assert_eq!(recs.len(), 7);
        assert!(recs.iter().all(|r| r.kind == RecordKind::Counter));
        assert_eq!(recs[0].name, "op.newton_iterations");
        assert_eq!(recs[0].value, 11.0);
        assert_eq!(recs[2].name, "op.gmin_stages");
        assert_eq!(recs[2].value, 2.0);
    }

    #[test]
    fn emit_on_disabled_tracer_is_noop() {
        TranStats::default().emit(crate::Tracer::off(), "tran");
    }
}
