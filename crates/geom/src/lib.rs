//! Geometry-aware bipolar transistor model parameter generation.
//!
//! Reproduces §4 of the DAC'96 paper: instead of SPICE's single
//! emitter-area factor, full Gummel–Poon model cards are synthesized for
//! arbitrary transistor shapes from three inputs (the paper's Fig. 10):
//!
//! 1. a **reference transistor model** based on measurements
//!    ([`generate::ModelGenerator::with_reference`]),
//! 2. **transistor process data** ([`process::ProcessData`]) — current,
//!    capacitance and resistance densities,
//! 3. **mask design rules** ([`rules::MaskRules`]) — spacings and
//!    enclosures that determine junction areas and resistance paths.
//!
//! Shapes use the paper's Fig. 8 naming (`N1.2-12D` = 1.2 µm x 12 µm
//! single emitter, double base contact; see [`shape::TransistorShape`]).
//! [`area_factor`] implements the SPICE-style baseline for the ablation
//! experiments, and [`flow::annotate_circuit`] runs the full Fig. 10 flow
//! over a schematic.
//!
//! # Example
//!
//! ```
//! use ahfic_geom::prelude::*;
//! let generator = ModelGenerator::new(ProcessData::default(), MaskRules::default());
//! let card = generator.generate(&"N1.2-12D".parse()?);
//! assert!(card.to_card().starts_with(".model N1.2-12D NPN"));
//! # Ok::<(), ahfic_geom::shape::ParseShapeError>(())
//! ```

// A malformed input must surface as a typed error, never a panic:
// `unwrap`/`expect` in non-test code warns (CI promotes warnings to
// errors), with local `#[allow]`s where an invariant guarantees success.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod area_factor;
pub mod flow;
pub mod generate;
pub mod layout;
pub mod process;
pub mod rules;
pub mod shape;
pub mod variation;

/// Convenient glob import.
pub mod prelude {
    pub use crate::area_factor::area_factor_model;
    pub use crate::flow::{annotate_circuit, extract_shapes};
    pub use crate::generate::ModelGenerator;
    pub use crate::layout::DeviceGeometry;
    pub use crate::process::ProcessData;
    pub use crate::rules::MaskRules;
    pub use crate::shape::TransistorShape;
    pub use crate::variation::ProcessSampler;
}

pub use generate::ModelGenerator;
pub use process::ProcessData;
pub use rules::MaskRules;
pub use shape::TransistorShape;
