//! Transistor shape descriptors and the `N1.2-12D` naming scheme of the
//! paper's Fig. 8.

use std::fmt;
use std::str::FromStr;

/// Geometry of a bipolar transistor's emitter/base structure.
///
/// The paper's Fig. 8 catalogue is spanned by four degrees of freedom:
/// emitter strip width and length, the number of emitter strips, and the
/// number of base contact stripes interleaved with them.
///
/// # Example
///
/// ```
/// use ahfic_geom::shape::TransistorShape;
/// let s: TransistorShape = "N1.2-12D".parse()?;
/// assert!((s.emitter_area_um2() - 14.4).abs() < 1e-12);
/// assert_eq!(s.to_string(), "N1.2-12D");
/// # Ok::<(), ahfic_geom::shape::ParseShapeError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransistorShape {
    /// Emitter strip width (µm).
    pub emitter_width_um: f64,
    /// Emitter strip length (µm).
    pub emitter_length_um: f64,
    /// Number of emitter strips.
    pub emitter_strips: u32,
    /// Number of base contact stripes (1 = single, 2 = double, 3 = triple).
    pub base_stripes: u32,
}

impl TransistorShape {
    /// Creates a shape; validates positivity.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or count is non-positive.
    pub fn new(width_um: f64, length_um: f64, emitter_strips: u32, base_stripes: u32) -> Self {
        assert!(width_um > 0.0 && length_um > 0.0, "dimensions must be > 0");
        assert!(
            emitter_strips >= 1 && base_stripes >= 1,
            "strip counts must be >= 1"
        );
        TransistorShape {
            emitter_width_um: width_um,
            emitter_length_um: length_um,
            emitter_strips,
            base_stripes,
        }
    }

    /// Total emitter area (µm²).
    pub fn emitter_area_um2(&self) -> f64 {
        self.emitter_width_um * self.emitter_length_um * self.emitter_strips as f64
    }

    /// Total emitter junction perimeter (µm).
    pub fn emitter_perimeter_um(&self) -> f64 {
        2.0 * (self.emitter_width_um + self.emitter_length_um) * self.emitter_strips as f64
    }

    /// True when every emitter strip has base contacts on both sides
    /// (full interdigitation) — this quarters the intrinsic base
    /// resistance relative to single-sided contacting.
    pub fn double_sided_base(&self) -> bool {
        self.base_stripes > self.emitter_strips
    }

    /// The paper's six Fig. 8 shapes, in the order (a)–(f).
    ///
    /// Per the Fig. 8 caption, the double-emitter devices (d) and (f) have
    /// the *same total emitter size as (a)* — two 1.2 µm x 3 µm strips.
    /// In this crate's naming (per-strip length) they print as
    /// `N1.2x2-3S` / `N1.2x2-3T`.
    pub fn fig8_catalogue() -> Vec<TransistorShape> {
        vec![
            TransistorShape::new(1.2, 6.0, 1, 1),  // (a) N1.2-6S
            TransistorShape::new(1.2, 6.0, 1, 2),  // (b) N1.2-6D
            TransistorShape::new(2.4, 6.0, 1, 2),  // (c) N2.4-6D
            TransistorShape::new(1.2, 3.0, 2, 1),  // (d) double emitter, single base
            TransistorShape::new(1.2, 12.0, 1, 2), // (e) N1.2-12D
            TransistorShape::new(1.2, 3.0, 2, 3),  // (f) double emitter, triple base
        ]
    }

    /// The Fig. 9 emitter-length series: N1.2-6D / 12D / 24D / 48D.
    pub fn fig9_series() -> Vec<TransistorShape> {
        [6.0, 12.0, 24.0, 48.0]
            .iter()
            .map(|&l| TransistorShape::new(1.2, l, 1, 2))
            .collect()
    }
}

impl fmt::Display for TransistorShape {
    /// Formats in the paper's naming scheme: `N<w>[x<n>]-<l><S|D|T>`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", trim_num(self.emitter_width_um))?;
        if self.emitter_strips > 1 {
            write!(f, "x{}", self.emitter_strips)?;
        }
        write!(f, "-{}", trim_num(self.emitter_length_um))?;
        let suffix = match self.base_stripes {
            1 => "S".to_string(),
            2 => "D".to_string(),
            3 => "T".to_string(),
            n => format!("B{n}"),
        };
        write!(f, "{suffix}")
    }
}

fn trim_num(v: f64) -> String {
    let s = format!("{v:.2}");
    s.trim_end_matches('0').trim_end_matches('.').to_string()
}

/// Error parsing a shape name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseShapeError {
    /// The offending text.
    pub input: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot parse shape `{}`: {}", self.input, self.message)
    }
}

impl std::error::Error for ParseShapeError {}

impl FromStr for TransistorShape {
    type Err = ParseShapeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |msg: &str| ParseShapeError {
            input: s.to_string(),
            message: msg.to_string(),
        };
        let body = s
            .trim()
            .strip_prefix(['N', 'n'])
            .ok_or_else(|| err("must start with N"))?;
        let (we_part, rest) = body.split_once('-').ok_or_else(|| err("missing `-`"))?;
        let (width_txt, strips) = match we_part.split_once(['x', 'X']) {
            Some((w, n)) => (w, n.parse::<u32>().map_err(|_| err("bad strip count"))?),
            None => (we_part, 1),
        };
        let width: f64 = width_txt.parse().map_err(|_| err("bad emitter width"))?;
        let suffix = rest
            .chars()
            .last()
            .ok_or_else(|| err("missing base suffix"))?;
        let length_txt = &rest[..rest.len() - suffix.len_utf8()];
        let length: f64 = length_txt.parse().map_err(|_| err("bad emitter length"))?;
        let base_stripes = match suffix.to_ascii_uppercase() {
            'S' => 1,
            'D' => 2,
            'T' => 3,
            _ => return Err(err("base suffix must be S, D or T")),
        };
        if width <= 0.0 || length <= 0.0 || strips == 0 {
            return Err(err("dimensions must be positive"));
        }
        Ok(TransistorShape::new(width, length, strips, base_stripes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_fig8_names() {
        let cases = [
            ("N1.2-6S", (1.2, 6.0, 1, 1)),
            ("N1.2-6D", (1.2, 6.0, 1, 2)),
            ("N2.4-6D", (2.4, 6.0, 1, 2)),
            ("N1.2x2-6S", (1.2, 6.0, 2, 1)),
            ("N1.2-12D", (1.2, 12.0, 1, 2)),
            ("N1.2x2-6T", (1.2, 6.0, 2, 3)),
        ];
        for (name, (w, l, ne, nb)) in cases {
            let s: TransistorShape = name.parse().unwrap();
            assert_eq!(s.emitter_width_um, w, "{name}");
            assert_eq!(s.emitter_length_um, l, "{name}");
            assert_eq!(s.emitter_strips, ne, "{name}");
            assert_eq!(s.base_stripes, nb, "{name}");
        }
    }

    #[test]
    fn round_trip_display_parse() {
        for s in TransistorShape::fig8_catalogue() {
            let back: TransistorShape = s.to_string().parse().unwrap();
            assert_eq!(back, s, "{s}");
        }
        for s in TransistorShape::fig9_series() {
            let back: TransistorShape = s.to_string().parse().unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn areas_match_fig8_caption() {
        // (a), (b), (d), (f): 7.2 um^2 ("same emitter size as (a)");
        // (c), (e): 14.4 um^2.
        let cat = TransistorShape::fig8_catalogue();
        assert!((cat[0].emitter_area_um2() - 7.2).abs() < 1e-12);
        assert!((cat[1].emitter_area_um2() - 7.2).abs() < 1e-12);
        assert!((cat[2].emitter_area_um2() - 14.4).abs() < 1e-12);
        assert!((cat[3].emitter_area_um2() - 7.2).abs() < 1e-12);
        assert!((cat[4].emitter_area_um2() - 14.4).abs() < 1e-12);
        assert!((cat[5].emitter_area_um2() - 7.2).abs() < 1e-12);
    }

    #[test]
    fn double_sided_detection() {
        assert!(!TransistorShape::new(1.2, 6.0, 1, 1).double_sided_base());
        assert!(TransistorShape::new(1.2, 6.0, 1, 2).double_sided_base());
        assert!(!TransistorShape::new(1.2, 6.0, 2, 2).double_sided_base());
        assert!(TransistorShape::new(1.2, 6.0, 2, 3).double_sided_base());
    }

    #[test]
    fn perimeter_formula() {
        let s = TransistorShape::new(1.2, 6.0, 2, 3);
        assert!((s.emitter_perimeter_um() - 2.0 * 7.2 * 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_names() {
        assert!("X1.2-6D".parse::<TransistorShape>().is_err());
        assert!("N1.2_6D".parse::<TransistorShape>().is_err());
        assert!("N1.2-6Q".parse::<TransistorShape>().is_err());
        assert!("N-6D".parse::<TransistorShape>().is_err());
        assert!("N1.2-D".parse::<TransistorShape>().is_err());
        assert!("N1.2x0-6D".parse::<TransistorShape>().is_err());
    }

    #[test]
    fn error_display_mentions_input() {
        let e = "bogus".parse::<TransistorShape>().unwrap_err();
        assert!(e.to_string().contains("bogus"));
    }
}
