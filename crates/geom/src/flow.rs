//! The Fig. 10 generation flow: read schematic data, extract transistor
//! shapes, calculate model parameters, hand the annotated netlist to
//! SPICE.
//!
//! Shape extraction follows the convention that a BJT's *model name* names
//! its shape (`Q1 c b e N1.2-12D`). Every model whose name parses as a
//! shape is regenerated in place from the process data.

use crate::generate::ModelGenerator;
use crate::shape::TransistorShape;
use ahfic_spice::circuit::Circuit;

/// Summary of one regenerated model.
#[derive(Clone, Debug, PartialEq)]
pub struct GeneratedModelReport {
    /// Shape name (also the model name).
    pub shape: TransistorShape,
    /// How many transistors in the schematic reference it.
    pub instance_count: usize,
}

/// Extracts the distinct shapes referenced by the circuit's BJTs (model
/// names that parse as shape names), in first-appearance order.
pub fn extract_shapes(ckt: &Circuit) -> Vec<(TransistorShape, usize)> {
    let mut found: Vec<(String, TransistorShape, usize)> = Vec::new();
    for m in ckt.bjt_instance_models() {
        let name = m.name.clone();
        if let Ok(shape) = name.parse::<TransistorShape>() {
            match found.iter_mut().find(|(n, _, _)| *n == name) {
                Some(entry) => entry.2 += 1,
                None => found.push((name, shape, 1)),
            }
        }
    }
    found.into_iter().map(|(_, s, c)| (s, c)).collect()
}

/// Runs the Fig. 10 flow over a circuit: every BJT model named after a
/// shape is replaced by a freshly generated geometry-aware card
/// (polarity preserved). Returns a report of what was regenerated.
pub fn annotate_circuit(
    ckt: &mut Circuit,
    generator: &ModelGenerator,
) -> Vec<GeneratedModelReport> {
    let usage = extract_shapes(ckt);
    let mut reports = Vec::new();
    for (shape, count) in usage {
        let fresh = generator.generate(&shape);
        for model in &mut ckt.bjt_models {
            if model.name == shape.to_string() {
                let polarity = model.polarity;
                *model = fresh.clone();
                model.polarity = polarity;
            }
        }
        reports.push(GeneratedModelReport {
            shape,
            instance_count: count,
        });
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::ProcessData;
    use crate::rules::MaskRules;
    use ahfic_spice::model::BjtModel;
    use ahfic_spice::parse::parse_netlist;

    fn generator() -> ModelGenerator {
        ModelGenerator::new(ProcessData::default(), MaskRules::default())
    }

    #[test]
    fn extracts_shapes_with_counts() {
        let ckt = parse_netlist(
            ".model N1.2-6D NPN (IS=1e-16)\n.model other NPN (IS=1e-16)\n\
             Q1 c1 b1 0 N1.2-6D\nQ2 c2 b2 0 N1.2-6D\nQ3 c3 b3 0 other\n",
        )
        .unwrap();
        let shapes = extract_shapes(&ckt);
        assert_eq!(shapes.len(), 1);
        assert_eq!(shapes[0].1, 2);
        assert_eq!(shapes[0].0.to_string(), "N1.2-6D");
    }

    #[test]
    fn annotate_replaces_placeholder_cards() {
        let mut ckt = parse_netlist(
            ".model N1.2-12D NPN (IS=1e-16)\nVCC vcc 0 5\nRC vcc c 1k\n\
             RB vcc b 400k\nQ1 c b 0 N1.2-12D\n",
        )
        .unwrap();
        let before = ckt.bjt_models[0].clone();
        assert_eq!(before.rb, 0.0);
        let reports = annotate_circuit(&mut ckt, &generator());
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].instance_count, 1);
        let after = &ckt.bjt_models[0];
        assert!(after.rb > 0.0, "generated rb");
        assert!(after.cje > 0.0);
        assert_eq!(after.name, "N1.2-12D");
        // And the circuit still simulates.
        let r = ahfic_spice::analysis::Session::compile(&ckt)
            .unwrap()
            .op()
            .unwrap();
        assert!(r.x().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn non_shape_models_untouched() {
        let mut ckt = Circuit::new();
        let (c, b) = (ckt.node("c"), ckt.node("b"));
        let mi = ckt.add_bjt_model(BjtModel::named("custom"));
        ckt.bjt("Q1", c, b, Circuit::gnd(), mi, 1.0);
        let snapshot = ckt.bjt_models[0].clone();
        let reports = annotate_circuit(&mut ckt, &generator());
        assert!(reports.is_empty());
        assert_eq!(ckt.bjt_models[0], snapshot);
    }
}
