//! Electrical process data of the synthetic high-frequency bipolar
//! process.
//!
//! The paper used Toshiba's proprietary process; this module defines a
//! self-consistent synthetic substitute typical of mid-90s 6–8 GHz
//! double-poly bipolar technology. All current-like quantities are
//! densities (per emitter area/perimeter) so that geometry scaling is
//! physical rather than the SPICE area-factor approximation.

/// Electrical process description. Units noted per field; lengths in µm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProcessData {
    /// Emitter saturation current density (A/µm²).
    pub js_area: f64,
    /// Emitter sidewall saturation current density (A/µm).
    pub js_perim: f64,
    /// B-E leakage (recombination) current density along the perimeter
    /// (A/µm).
    pub jse_perim: f64,
    /// Kirk-effect knee current density (A/µm²) — sets `IKF`.
    pub jkf_area: f64,
    /// Transit-time knee current density (A/µm²) — sets `ITF`.
    pub jtf_area: f64,
    /// Ideal forward beta.
    pub beta_f: f64,
    /// Reverse beta.
    pub beta_r: f64,
    /// Forward Early voltage (V).
    pub vaf: f64,
    /// Reverse Early voltage (V).
    pub var: f64,
    /// Base transit time (s).
    pub tf0: f64,
    /// `XTF` bias coefficient of the transit time.
    pub xtf: f64,
    /// `VTF` (V).
    pub vtf: f64,
    /// Reverse transit time (s).
    pub tr: f64,
    /// B-E depletion capacitance per area (F/µm²).
    pub cje_area: f64,
    /// B-E depletion capacitance per perimeter (F/µm).
    pub cje_perim: f64,
    /// B-E built-in potential (V) / grading.
    pub vje: f64,
    /// B-E grading coefficient.
    pub mje: f64,
    /// B-C depletion capacitance per area (F/µm²).
    pub cjc_area: f64,
    /// B-C depletion capacitance per perimeter (F/µm).
    pub cjc_perim: f64,
    /// B-C built-in potential (V).
    pub vjc: f64,
    /// B-C grading coefficient.
    pub mjc: f64,
    /// Collector-substrate capacitance per area (F/µm²).
    pub cjs_area: f64,
    /// Collector-substrate capacitance per perimeter (F/µm).
    pub cjs_perim: f64,
    /// Substrate junction potential (V).
    pub vjs: f64,
    /// Substrate grading coefficient.
    pub mjs: f64,
    /// Pinched (intrinsic) base sheet resistance (ohm/sq).
    pub rsb_intrinsic: f64,
    /// Extrinsic base sheet resistance (ohm/sq).
    pub rsb_extrinsic: f64,
    /// Base contact resistivity (ohm·µm²).
    pub rc_base_contact: f64,
    /// Emitter contact + poly resistivity (ohm·µm²).
    pub rc_emitter: f64,
    /// Collector epi resistivity (ohm·µm — sheet times thickness form).
    pub rho_epi: f64,
    /// Collector sinker/contact resistivity (ohm·µm²).
    pub rc_collector_contact: f64,
    /// Current where base resistance falls halfway, per emitter area
    /// (A/µm²).
    pub jrb_area: f64,
}

impl Default for ProcessData {
    fn default() -> Self {
        ProcessData {
            js_area: 2.0e-18,
            js_perim: 2.5e-19,
            jse_perim: 4.0e-20,
            jkf_area: 8.0e-4,
            jtf_area: 1.0e-3,
            beta_f: 120.0,
            beta_r: 3.0,
            vaf: 45.0,
            var: 4.0,
            tf0: 15e-12,
            xtf: 4.0,
            vtf: 3.0,
            tr: 0.6e-9,
            cje_area: 6.0e-15,
            cje_perim: 1.8e-15,
            vje: 0.9,
            mje: 0.35,
            cjc_area: 1.0e-15,
            cjc_perim: 0.35e-15,
            vjc: 0.65,
            mjc: 0.4,
            cjs_area: 0.35e-15,
            cjs_perim: 0.25e-15,
            vjs: 0.55,
            mjs: 0.3,
            rsb_intrinsic: 9e3,
            rsb_extrinsic: 450.0,
            rc_base_contact: 60.0,
            rc_emitter: 45.0,
            rho_epi: 14.0,
            rc_collector_contact: 40.0,
            jrb_area: 2.5e-5,
        }
    }
}

impl ProcessData {
    /// Peak transition frequency implied by the transit time alone:
    /// `1/(2*pi*tf0)` — the technology's asymptotic fT ceiling.
    pub fn ft_ceiling(&self) -> f64 {
        1.0 / (2.0 * std::f64::consts::PI * self.tf0)
    }

    /// Multiplies every density-like quantity by independent lognormal-ish
    /// factors to emulate a process corner; `frac` is the fractional
    /// 1-sigma spread and `draws` supplies unit-normal samples via the
    /// closure (so callers control the RNG).
    pub fn perturbed(&self, frac: f64, mut draw: impl FnMut() -> f64) -> ProcessData {
        let mut p = *self;
        let mut tweak = |v: &mut f64| {
            *v *= (frac * draw()).exp();
        };
        tweak(&mut p.js_area);
        tweak(&mut p.js_perim);
        tweak(&mut p.jkf_area);
        tweak(&mut p.tf0);
        tweak(&mut p.cje_area);
        tweak(&mut p.cje_perim);
        tweak(&mut p.cjc_area);
        tweak(&mut p.cjc_perim);
        tweak(&mut p.rsb_intrinsic);
        tweak(&mut p.rsb_extrinsic);
        tweak(&mut p.rho_epi);
        tweak(&mut p.beta_f);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ft_ceiling_is_ghz_class() {
        let p = ProcessData::default();
        let f = p.ft_ceiling();
        assert!(f > 5e9 && f < 20e9, "ceiling {f:.3e}");
    }

    #[test]
    fn perturbation_with_zero_sigma_is_identity() {
        let p = ProcessData::default();
        let q = p.perturbed(0.0, || 1.0);
        assert_eq!(p, q);
    }

    #[test]
    fn perturbation_moves_values() {
        let p = ProcessData::default();
        let q = p.perturbed(0.1, || 1.0); // +10% lognormal shift everywhere
        assert!(q.js_area > p.js_area);
        assert!(q.tf0 > p.tf0);
        assert!((q.js_area / p.js_area - (0.1f64).exp()).abs() < 1e-12);
        // Untouched parameters stay put.
        assert_eq!(q.vje, p.vje);
    }
}
