//! Mask design rules (layout spacings/enclosures) of the synthetic
//! bipolar process.
//!
//! These are the "mask design rule" inputs of the paper's Fig. 10 flow:
//! together with a [`crate::process::ProcessData`] they turn a
//! [`crate::shape::TransistorShape`] into junction areas, perimeters and
//! resistance path lengths.

/// Layout rules, all in µm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MaskRules {
    /// Emitter-to-base-contact spacing.
    pub emitter_base_space: f64,
    /// Base contact stripe width.
    pub base_contact_width: f64,
    /// Base region enclosure of the outermost emitter/base-contact
    /// geometry (along both axes).
    pub base_enclosure: f64,
    /// Collector (island) enclosure of the base region.
    pub collector_enclosure: f64,
    /// Collector contact (sinker) stripe width.
    pub collector_contact_width: f64,
    /// Spacing between base region and collector sinker.
    pub base_collector_space: f64,
    /// Epitaxial layer thickness (for the vertical collector resistance).
    pub epi_thickness: f64,
}

impl Default for MaskRules {
    /// A 0.8 µm-class double-poly bipolar rule set.
    fn default() -> Self {
        MaskRules {
            emitter_base_space: 0.8,
            base_contact_width: 1.0,
            base_enclosure: 0.8,
            collector_enclosure: 1.5,
            collector_contact_width: 1.5,
            base_collector_space: 1.2,
            epi_thickness: 1.0,
        }
    }
}

impl MaskRules {
    /// Validates that every rule is positive.
    ///
    /// # Panics
    ///
    /// Panics when a rule is non-positive (a broken rule deck is a
    /// programming error, not a runtime condition).
    pub fn validate(&self) {
        let vals = [
            self.emitter_base_space,
            self.base_contact_width,
            self.base_enclosure,
            self.collector_enclosure,
            self.collector_contact_width,
            self.base_collector_space,
            self.epi_thickness,
        ];
        assert!(
            vals.iter().all(|&v| v > 0.0),
            "all mask rules must be positive"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        MaskRules::default().validate();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rule_panics() {
        let r = MaskRules {
            base_enclosure: 0.0,
            ..MaskRules::default()
        };
        r.validate();
    }
}
