//! Monte-Carlo process variation: the paper's §2.2 notes that designers
//! must "examine the performance … taking IC process variations into
//! account"; this module provides reproducible process-corner sampling.

use crate::generate::ModelGenerator;
use crate::process::ProcessData;
use crate::rules::MaskRules;
use crate::shape::TransistorShape;
use ahfic_spice::model::BjtModel;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Reproducible sampler of process corners.
#[derive(Debug)]
pub struct ProcessSampler {
    nominal: ProcessData,
    rules: MaskRules,
    sigma_frac: f64,
    rng: StdRng,
}

impl ProcessSampler {
    /// Creates a sampler with fractional 1-sigma spread `sigma_frac`
    /// (e.g. `0.05` for a 5 % process) and a fixed seed.
    pub fn new(nominal: ProcessData, rules: MaskRules, sigma_frac: f64, seed: u64) -> Self {
        ProcessSampler {
            nominal,
            rules,
            sigma_frac,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws one process corner.
    pub fn sample_process(&mut self) -> ProcessData {
        let rng = &mut self.rng;
        self.nominal
            .perturbed(self.sigma_frac, || standard_normal(rng))
    }

    /// Draws one corner and generates a model card for `shape` on it.
    pub fn sample_model(&mut self, shape: &TransistorShape) -> BjtModel {
        let p = self.sample_process();
        ModelGenerator::new(p, self.rules).generate(shape)
    }

    /// Generates `n` Monte-Carlo model cards for `shape`.
    pub fn sample_models(&mut self, shape: &TransistorShape, n: usize) -> Vec<BjtModel> {
        (0..n).map(|_| self.sample_model(shape)).collect()
    }
}

/// Box–Muller standard normal draw.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler(sigma: f64, seed: u64) -> ProcessSampler {
        ProcessSampler::new(ProcessData::default(), MaskRules::default(), sigma, seed)
    }

    #[test]
    fn same_seed_reproduces() {
        let shape: TransistorShape = "N1.2-6D".parse().unwrap();
        let a = sampler(0.05, 42).sample_models(&shape, 5);
        let b = sampler(0.05, 42).sample_models(&shape, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let shape: TransistorShape = "N1.2-6D".parse().unwrap();
        let a = sampler(0.05, 1).sample_model(&shape);
        let b = sampler(0.05, 2).sample_model(&shape);
        assert_ne!(a, b);
    }

    #[test]
    fn spread_is_calibrated() {
        let shape: TransistorShape = "N1.2-6D".parse().unwrap();
        let mut s = sampler(0.10, 7);
        let models = s.sample_models(&shape, 400);
        let nominal =
            ModelGenerator::new(ProcessData::default(), MaskRules::default()).generate(&shape);
        let logs: Vec<f64> = models.iter().map(|m| (m.is_ / nominal.is_).ln()).collect();
        let mean = logs.iter().sum::<f64>() / logs.len() as f64;
        let var = logs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / logs.len() as f64;
        let sd = var.sqrt();
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((sd - 0.10).abs() < 0.02, "sd = {sd}");
    }

    #[test]
    fn zero_sigma_gives_nominal() {
        let shape: TransistorShape = "N1.2-6D".parse().unwrap();
        let mut s = sampler(0.0, 9);
        let m = s.sample_model(&shape);
        let nominal =
            ModelGenerator::new(ProcessData::default(), MaskRules::default()).generate(&shape);
        assert_eq!(m, nominal);
    }
}
