//! Derived device geometry: junction areas, perimeters and resistance
//! path factors computed from a [`TransistorShape`] plus [`MaskRules`].

use crate::rules::MaskRules;
use crate::shape::TransistorShape;

/// All geometry numbers the parameter generator needs (µm / µm²).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceGeometry {
    /// Emitter junction area.
    pub emitter_area: f64,
    /// Emitter junction perimeter.
    pub emitter_perimeter: f64,
    /// Active region width (across the strip direction).
    pub active_width: f64,
    /// Base diffusion width.
    pub base_width: f64,
    /// Base diffusion length.
    pub base_length: f64,
    /// Base-collector junction area.
    pub base_area: f64,
    /// Base-collector junction perimeter.
    pub base_perimeter: f64,
    /// Collector island width.
    pub collector_width: f64,
    /// Collector island length.
    pub collector_length: f64,
    /// Collector-substrate junction area.
    pub collector_area: f64,
    /// Collector-substrate junction perimeter.
    pub collector_perimeter: f64,
    /// Number of base-contact sides serving each emitter strip (1 or 2).
    pub base_sides: u32,
    /// Dimensionless intrinsic base-resistance factor: multiply by the
    /// pinched base sheet resistance to get ohms (`w/(3l)` single-sided,
    /// `w/(12l)` double-sided, divided by the strip count).
    pub rb_intrinsic_factor: f64,
    /// Extrinsic (gap + far-strip) base-resistance factor: multiply by the
    /// extrinsic base sheet resistance.
    pub rb_extrinsic_factor: f64,
    /// Total base contact area (for contact resistance).
    pub base_contact_area: f64,
    /// Total collector contact area.
    pub collector_contact_area: f64,
}

impl DeviceGeometry {
    /// Computes the layout-derived geometry of `shape` under `rules`.
    pub fn derive(shape: &TransistorShape, rules: &MaskRules) -> Self {
        rules.validate();
        let w = shape.emitter_width_um;
        let l = shape.emitter_length_um;
        let ne = shape.emitter_strips as f64;
        let nb = shape.base_stripes as f64;

        let emitter_area = shape.emitter_area_um2();
        let emitter_perimeter = shape.emitter_perimeter_um();

        // Interleaved stripes: every emitter/base adjacency costs one
        // emitter-base spacing.
        let gaps = ne + nb - 1.0;
        let active_width = ne * w + nb * rules.base_contact_width + gaps * rules.emitter_base_space;
        let base_width = active_width + 2.0 * rules.base_enclosure;
        let base_length = l + 2.0 * rules.base_enclosure;
        let base_area = base_width * base_length;
        let base_perimeter = 2.0 * (base_width + base_length);

        let collector_width = base_width
            + rules.base_collector_space
            + rules.collector_contact_width
            + 2.0 * rules.collector_enclosure;
        let collector_length = base_length + 2.0 * rules.collector_enclosure;
        let collector_area = collector_width * collector_length;
        let collector_perimeter = 2.0 * (collector_width + collector_length);

        // Distributed base resistance under the emitter: w/(3l) when the
        // contact is on one side only, w/(12l) when both sides carry
        // current; strips are in parallel.
        let base_sides: u32 = if shape.double_sided_base() { 2 } else { 1 };
        let k = if base_sides == 2 {
            1.0 / 12.0
        } else {
            1.0 / 3.0
        };
        let rb_intrinsic_factor = k * (w / l) / ne;

        // Extrinsic: emitter-base gap sheet path, in parallel over every
        // conducting side; strips beyond the contact count pay an extra
        // lateral detour of one strip pitch.
        let n_paths = ne * base_sides as f64;
        let gap_factor = rules.emitter_base_space / l / n_paths;
        let starved = (ne - nb).max(0.0);
        let detour_factor = starved * (w + rules.emitter_base_space) / l / ne;
        let rb_extrinsic_factor = gap_factor + detour_factor;

        let base_contact_area = nb * rules.base_contact_width * l;
        let collector_contact_area = rules.collector_contact_width * collector_length;

        DeviceGeometry {
            emitter_area,
            emitter_perimeter,
            active_width,
            base_width,
            base_length,
            base_area,
            base_perimeter,
            collector_width,
            collector_length,
            collector_area,
            collector_perimeter,
            base_sides,
            rb_intrinsic_factor,
            rb_extrinsic_factor,
            base_contact_area,
            collector_contact_area,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo(name: &str) -> DeviceGeometry {
        DeviceGeometry::derive(&name.parse().unwrap(), &MaskRules::default())
    }

    #[test]
    fn single_vs_double_base_resistance() {
        let s = geo("N1.2-6S");
        let d = geo("N1.2-6D");
        // Double-sided contact quarters the intrinsic factor.
        assert!((s.rb_intrinsic_factor / d.rb_intrinsic_factor - 4.0).abs() < 1e-12);
        assert_eq!(s.base_sides, 1);
        assert_eq!(d.base_sides, 2);
        // ...at the cost of a wider base diffusion.
        assert!(d.base_area > s.base_area);
    }

    #[test]
    fn long_emitter_cuts_base_resistance() {
        let short = geo("N1.2-6D");
        let long = geo("N1.2-12D");
        assert!((short.rb_intrinsic_factor / long.rb_intrinsic_factor - 2.0).abs() < 1e-12);
    }

    #[test]
    fn wide_emitter_raises_base_resistance() {
        let narrow = geo("N1.2-6D");
        let wide = geo("N2.4-6D");
        assert!((wide.rb_intrinsic_factor / narrow.rb_intrinsic_factor - 2.0).abs() < 1e-12);
    }

    #[test]
    fn equal_area_shapes_differ_in_base_area() {
        // N1.2-12D vs N1.2x2-6T: same emitter area, but the two-strip
        // triple-base layout spends more width on contacts.
        let long = geo("N1.2-12D");
        let multi = geo("N1.2x2-6T");
        assert!((long.emitter_area - multi.emitter_area).abs() < 1e-12);
        assert!(multi.base_width > long.base_width);
        // Long single strip has the smaller collector junction per length.
        assert!(multi.base_area / multi.base_length > long.base_area / long.base_length);
    }

    #[test]
    fn areas_nest_properly() {
        for name in ["N1.2-6S", "N1.2-6D", "N2.4-6D", "N1.2x2-6T", "N1.2-48D"] {
            let g = geo(name);
            assert!(g.base_area > g.emitter_area, "{name}");
            assert!(g.collector_area > g.base_area, "{name}");
            assert!(g.collector_perimeter > g.base_perimeter, "{name}");
        }
    }

    #[test]
    fn starved_multi_emitter_pays_detour() {
        let ok = geo("N1.2x2-6T"); // nb=3 >= ne+1, fully contacted
        let starved = geo("N1.2x2-6S"); // nb=1 < ne
        assert_eq!(
            ok.rb_extrinsic_factor
                .partial_cmp(&starved.rb_extrinsic_factor),
            Some(std::cmp::Ordering::Less)
        );
    }

    #[test]
    fn active_width_formula() {
        // N1.2-6D: B E B -> 1 emitter + 2 contacts + 2 gaps.
        let g = geo("N1.2-6D");
        let expect = 1.2 + 2.0 * 1.0 + 2.0 * 0.8;
        assert!((g.active_width - expect).abs() < 1e-12);
    }
}
