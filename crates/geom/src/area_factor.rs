//! The SPICE emitter-area-factor baseline the paper argues against.
//!
//! Berkeley SPICE scales a reference model by a single `AREA` multiplier:
//! currents and capacitances multiply, resistances divide. That is exact
//! only for parameters proportional to emitter *area*; anything tied to
//! perimeter, base/collector junction geometry or contact arrangement
//! (RB, RE, RC, CJE, CJC, CJS) is misestimated — the paper's §4
//! motivation. This module implements the baseline so the ablation
//! benches can quantify the error.

use crate::shape::TransistorShape;
use ahfic_spice::circuit::scale_bjt_model;
use ahfic_spice::model::BjtModel;

/// Scales `reference` (a card measured at `ref_shape`) to `target` using
/// only the emitter-area ratio, exactly as `Q... AREA=x` would in SPICE.
/// The returned card is named `<target>-af`.
pub fn area_factor_model(
    reference: &BjtModel,
    ref_shape: &TransistorShape,
    target: &TransistorShape,
) -> BjtModel {
    let factor = target.emitter_area_um2() / ref_shape.emitter_area_um2();
    let mut m = scale_bjt_model(reference, factor);
    m.name = format!("{target}-af");
    m
}

/// Relative error table between a geometry-aware card and the area-factor
/// card, for the parameters the paper calls out (RB, RE, RC, CJE, CJC,
/// CJS). Entries are `(name, full_value, area_factor_value, rel_error)`.
pub fn parameter_errors(full: &BjtModel, af: &BjtModel) -> Vec<(&'static str, f64, f64, f64)> {
    let rel = |a: f64, b: f64| {
        if a == 0.0 {
            0.0
        } else {
            (b - a) / a
        }
    };
    vec![
        ("RB", full.rb, af.rb, rel(full.rb, af.rb)),
        ("RE", full.re, af.re, rel(full.re, af.re)),
        ("RC", full.rc, af.rc, rel(full.rc, af.rc)),
        ("CJE", full.cje, af.cje, rel(full.cje, af.cje)),
        ("CJC", full.cjc, af.cjc, rel(full.cjc, af.cjc)),
        ("CJS", full.cjs, af.cjs, rel(full.cjs, af.cjs)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::ModelGenerator;
    use crate::process::ProcessData;
    use crate::rules::MaskRules;

    fn generator() -> ModelGenerator {
        ModelGenerator::new(ProcessData::default(), MaskRules::default())
    }

    #[test]
    fn unit_factor_is_identity_except_name() {
        let g = generator();
        let r = ModelGenerator::reference_shape();
        let reference = g.generate(&r);
        let m = area_factor_model(&reference, &r, &r);
        assert_eq!(m.is_, reference.is_);
        assert_eq!(m.rb, reference.rb);
        assert_eq!(m.name, "N1.2-6S-af");
    }

    #[test]
    fn area_factor_misses_shape_dependence() {
        // N1.2-12D vs N2.4-6D have the same emitter area, so area-factor
        // scaling produces *identical* cards for them; the geometry-aware
        // generator does not.
        let g = generator();
        let r: TransistorShape = "N1.2-6D".parse().unwrap();
        let reference = g.generate(&r);
        let long: TransistorShape = "N1.2-12D".parse().unwrap();
        let wide: TransistorShape = "N2.4-6D".parse().unwrap();
        let af_long = area_factor_model(&reference, &r, &long);
        let af_wide = area_factor_model(&reference, &r, &wide);
        assert_eq!(af_long.rb, af_wide.rb);
        assert_eq!(af_long.cjc, af_wide.cjc);
        let full_long = g.generate(&long);
        let full_wide = g.generate(&wide);
        assert!((full_wide.rb / full_long.rb) > 1.5);
    }

    #[test]
    fn error_table_flags_rb() {
        let g = generator();
        let r: TransistorShape = "N1.2-6D".parse().unwrap();
        let reference = g.generate(&r);
        let wide: TransistorShape = "N2.4-6D".parse().unwrap();
        let af = area_factor_model(&reference, &r, &wide);
        let full = g.generate(&wide);
        let errs = parameter_errors(&full, &af);
        let rb = errs.iter().find(|e| e.0 == "RB").unwrap();
        // The wide emitter's real RB is much larger than the halved value
        // area-factor scaling predicts.
        assert!(rb.3 < -0.4, "rb rel err = {}", rb.3);
    }
}
