//! The model parameter generation technique (paper §4, Fig. 10).
//!
//! [`ModelGenerator`] turns a [`TransistorShape`] into a full Gummel–Poon
//! card by computing every geometry-dependent parameter from junction
//! areas, perimeters and resistance path factors — the paper's improvement
//! over SPICE's emitter-area-factor scaling, which cannot capture
//! perimeter- and layout-dependent parasitics (see
//! [`crate::area_factor`] for that baseline).

use crate::layout::DeviceGeometry;
use crate::process::ProcessData;
use crate::rules::MaskRules;
use crate::shape::TransistorShape;
use ahfic_spice::model::{BjtModel, BjtPolarity};

/// Generates geometry-aware SPICE model cards for arbitrary transistor
/// shapes on a given process.
///
/// # Example
///
/// ```
/// use ahfic_geom::prelude::*;
/// let generator = ModelGenerator::new(ProcessData::default(), MaskRules::default());
/// let m6 = generator.generate(&"N1.2-6D".parse()?);
/// let m12 = generator.generate(&"N1.2-12D".parse()?);
/// // Twice the emitter: twice the saturation current, half-ish the RB.
/// assert!(m12.is_ / m6.is_ > 1.8);
/// assert!(m12.rb < m6.rb);
/// # Ok::<(), ahfic_geom::shape::ParseShapeError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ModelGenerator {
    process: ProcessData,
    rules: MaskRules,
    calibration: Option<Calibration>,
}

/// Multiplicative per-parameter corrections derived from a measured
/// reference transistor (the paper's "reference transistor model
/// parameters which are based on actual measurements").
#[derive(Clone, Copy, Debug, PartialEq)]
struct Calibration {
    is_: f64,
    ise: f64,
    ikf: f64,
    itf: f64,
    bf: f64,
    tf: f64,
    cje: f64,
    cjc: f64,
    cjs: f64,
    rb: f64,
    rbm: f64,
    re: f64,
    rc: f64,
}

impl ModelGenerator {
    /// Creates a generator working purely from process data and mask
    /// rules.
    pub fn new(process: ProcessData, rules: MaskRules) -> Self {
        ModelGenerator {
            process,
            rules,
            calibration: None,
        }
    }

    /// Creates a generator calibrated against a measured reference model
    /// card: the generated card for `ref_shape` will reproduce
    /// `reference` exactly in every geometry-dependent parameter, and all
    /// other shapes inherit the same per-parameter corrections.
    pub fn with_reference(
        process: ProcessData,
        rules: MaskRules,
        reference: &BjtModel,
        ref_shape: &TransistorShape,
    ) -> Self {
        let mut g = ModelGenerator::new(process, rules);
        let nominal = g.generate(ref_shape);
        let ratio = |measured: f64, nom: f64| {
            if nom.abs() > 0.0 && measured.is_finite() && nom.is_finite() {
                measured / nom
            } else {
                1.0
            }
        };
        g.calibration = Some(Calibration {
            is_: ratio(reference.is_, nominal.is_),
            ise: ratio(reference.ise, nominal.ise),
            ikf: ratio(reference.ikf, nominal.ikf),
            itf: ratio(reference.itf, nominal.itf),
            bf: ratio(reference.bf, nominal.bf),
            tf: ratio(reference.tf, nominal.tf),
            cje: ratio(reference.cje, nominal.cje),
            cjc: ratio(reference.cjc, nominal.cjc),
            cjs: ratio(reference.cjs, nominal.cjs),
            rb: ratio(reference.rb, nominal.rb),
            rbm: ratio(reference.rbm, nominal.rbm),
            re: ratio(reference.re, nominal.re),
            rc: ratio(reference.rc, nominal.rc),
        });
        g
    }

    /// The process this generator models.
    pub fn process(&self) -> &ProcessData {
        &self.process
    }

    /// The mask rules this generator lays out against.
    pub fn rules(&self) -> &MaskRules {
        &self.rules
    }

    /// The conventional reference device of the kit (`N1.2-6S`, the
    /// smallest single-base transistor).
    pub fn reference_shape() -> TransistorShape {
        TransistorShape::new(1.2, 6.0, 1, 1)
    }

    /// Generates a full Gummel–Poon model card for `shape`. The model is
    /// named after the shape (`N1.2-12D` …).
    pub fn generate(&self, shape: &TransistorShape) -> BjtModel {
        let p = &self.process;
        let g = DeviceGeometry::derive(shape, &self.rules);

        let mut m = BjtModel::named(shape.to_string());
        m.polarity = BjtPolarity::Npn;
        m.is_ = p.js_area * g.emitter_area + p.js_perim * g.emitter_perimeter;
        m.bf = p.beta_f;
        m.nf = 1.0;
        m.vaf = p.vaf;
        m.ikf = p.jkf_area * g.emitter_area;
        m.ise = p.jse_perim * g.emitter_perimeter;
        m.ne = 1.9;
        m.br = p.beta_r;
        m.nr = 1.0;
        m.var = p.var;
        m.ikr = m.ikf;
        m.isc = 0.0;

        m.rb = p.rsb_intrinsic * g.rb_intrinsic_factor
            + p.rsb_extrinsic * g.rb_extrinsic_factor
            + p.rc_base_contact / g.base_contact_area;
        m.rbm = p.rsb_extrinsic * g.rb_extrinsic_factor + p.rc_base_contact / g.base_contact_area;
        m.irb = p.jrb_area * g.emitter_area;
        m.re = p.rc_emitter / g.emitter_area;
        m.rc = p.rho_epi * self.rules.epi_thickness / g.emitter_area
            + p.rho_epi * (self.rules.base_collector_space + g.base_width / 2.0)
                / (g.collector_length * self.rules.epi_thickness)
            + p.rc_collector_contact / g.collector_contact_area;

        m.cje = p.cje_area * g.emitter_area + p.cje_perim * g.emitter_perimeter;
        m.vje = p.vje;
        m.mje = p.mje;
        m.tf = p.tf0;
        m.xtf = p.xtf;
        m.vtf = p.vtf;
        m.itf = p.jtf_area * g.emitter_area;
        m.cjc = p.cjc_area * g.base_area + p.cjc_perim * g.base_perimeter;
        m.vjc = p.vjc;
        m.mjc = p.mjc;
        // Fraction of the B-C junction under the intrinsic device.
        let intrinsic = (shape.emitter_strips as f64 * shape.emitter_width_um
            + (shape.emitter_strips + shape.base_stripes - 1) as f64
                * self.rules.emitter_base_space)
            * g.base_length;
        m.xcjc = (intrinsic / g.base_area).clamp(0.05, 0.95);
        m.tr = p.tr;
        m.cjs = p.cjs_area * g.collector_area + p.cjs_perim * g.collector_perimeter;
        m.vjs = p.vjs;
        m.mjs = p.mjs;
        m.fc = 0.5;

        if let Some(c) = &self.calibration {
            m.is_ *= c.is_;
            m.ise *= c.ise;
            m.ikf *= c.ikf;
            m.ikr = m.ikf;
            m.itf *= c.itf;
            m.bf *= c.bf;
            m.tf *= c.tf;
            m.cje *= c.cje;
            m.cjc *= c.cjc;
            m.cjs *= c.cjs;
            m.rb *= c.rb;
            m.rbm *= c.rbm;
            m.re *= c.re;
            m.rc *= c.rc;
        }
        m
    }

    /// Generates models for a set of shapes (convenience for sweeps).
    pub fn generate_all(&self, shapes: &[TransistorShape]) -> Vec<BjtModel> {
        shapes.iter().map(|s| self.generate(s)).collect()
    }

    /// Emits a ready-to-`.include` SPICE model library with one card per
    /// shape — what the paper's generation program hands to SPICE.
    pub fn model_library(&self, shapes: &[TransistorShape]) -> String {
        let mut out =
            String::from("* Geometry-aware bipolar model library (generated by ahfic-geom)\n");
        for shape in shapes {
            out.push_str(&format!(
                "* {}: Ae = {:.2} um^2, {} emitter strip(s), {} base stripe(s)\n",
                shape,
                shape.emitter_area_um2(),
                shape.emitter_strips,
                shape.base_stripes
            ));
            out.push_str(&self.generate(shape).to_card());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator() -> ModelGenerator {
        ModelGenerator::new(ProcessData::default(), MaskRules::default())
    }

    fn gen(name: &str) -> BjtModel {
        generator().generate(&name.parse().unwrap())
    }

    #[test]
    fn model_named_after_shape() {
        assert_eq!(gen("N1.2-12D").name, "N1.2-12D");
    }

    #[test]
    fn currents_scale_with_emitter_area() {
        let m6 = gen("N1.2-6D");
        let m48 = gen("N1.2-48D");
        assert!((m48.ikf / m6.ikf - 8.0).abs() < 1e-9);
        assert!((m48.itf / m6.itf - 8.0).abs() < 1e-9);
        // IS grows slightly less than 8x: perimeter grows slower than area.
        let r = m48.is_ / m6.is_;
        assert!(r > 6.5 && r < 8.0, "r = {r}");
    }

    #[test]
    fn base_resistance_ordering_matches_layout_physics() {
        let s = gen("N1.2-6S");
        let d = gen("N1.2-6D");
        let wide = gen("N2.4-6D");
        let long = gen("N1.2-12D");
        assert!(s.rb > d.rb, "single > double");
        assert!(wide.rb > d.rb, "wide > narrow");
        assert!(long.rb < d.rb, "long < short");
        // RBM is always below RB.
        for m in [&s, &d, &wide, &long] {
            assert!(m.rbm < m.rb, "{}", m.name);
            assert!(m.rbm > 0.0);
        }
    }

    #[test]
    fn values_are_plausible_for_a_6ghz_process() {
        let m = gen("N1.2-6D");
        assert!(m.is_ > 1e-18 && m.is_ < 1e-15, "is = {:e}", m.is_);
        assert!(m.rb > 50.0 && m.rb < 500.0, "rb = {}", m.rb);
        assert!(m.re > 1.0 && m.re < 30.0, "re = {}", m.re);
        assert!(m.rc > 5.0 && m.rc < 200.0, "rc = {}", m.rc);
        assert!(m.cje > 20e-15 && m.cje < 300e-15, "cje = {:e}", m.cje);
        assert!(m.cjc > 10e-15 && m.cjc < 300e-15, "cjc = {:e}", m.cjc);
        assert!(m.cjs > m.cjc * 0.1, "cjs = {:e}", m.cjs);
        assert!(m.ikf > 1e-3 && m.ikf < 20e-3, "ikf = {:e}", m.ikf);
        assert!(m.xcjc > 0.05 && m.xcjc < 0.95);
    }

    #[test]
    fn equal_area_shapes_get_distinct_cards() {
        // The whole point of the technique: area-factor scaling would make
        // these identical, geometry-aware generation must not.
        let long = gen("N1.2-12D");
        let wide = gen("N2.4-6D");
        let multi = gen("N1.2x2-6T");
        assert!((long.ikf - wide.ikf).abs() < 1e-12, "same emitter area");
        assert!(wide.rb / long.rb > 1.5, "rb: {} vs {}", wide.rb, long.rb);
        // Equal-area cards must still be electrically distinct where the
        // layout differs (junction footprints).
        assert!((multi.cjc - long.cjc).abs() / long.cjc > 0.02);
        assert!((multi.cjs - long.cjs).abs() / long.cjs > 0.02);
        assert!((wide.rb - multi.rb).abs() / multi.rb > 0.5);
        // Narrow long emitter has more perimeter -> more CJE sidewall.
        assert!(long.cje > wide.cje);
    }

    #[test]
    fn reference_calibration_round_trips() {
        let reference = {
            // A "measured" card that deviates from nominal by various
            // factors.
            let mut m = gen("N1.2-6S");
            m.is_ *= 1.3;
            m.rb *= 0.8;
            m.cjc *= 1.15;
            m.tf *= 1.07;
            m.name = "measured-ref".into();
            m
        };
        let cal = ModelGenerator::with_reference(
            ProcessData::default(),
            MaskRules::default(),
            &reference,
            &ModelGenerator::reference_shape(),
        );
        let back = cal.generate(&ModelGenerator::reference_shape());
        assert!((back.is_ - reference.is_).abs() / reference.is_ < 1e-12);
        assert!((back.rb - reference.rb).abs() / reference.rb < 1e-12);
        assert!((back.cjc - reference.cjc).abs() / reference.cjc < 1e-12);
        assert!((back.tf - reference.tf).abs() / reference.tf < 1e-12);
        // And other shapes inherit the corrections.
        let m12 = cal.generate(&"N1.2-12D".parse().unwrap());
        let nom12 = gen("N1.2-12D");
        assert!((m12.is_ / nom12.is_ - 1.3).abs() < 1e-9);
    }

    #[test]
    fn model_library_parses_back_in_spice() {
        let g = generator();
        let lib = g.model_library(&TransistorShape::fig9_series());
        let ckt = ahfic_spice::parse::parse_netlist(&lib).unwrap();
        assert_eq!(ckt.bjt_models.len(), 4);
        assert!(ckt.find_bjt_model("N1.2-48D").is_some());
        // Parsed parameters agree with the generated ones (within the
        // 4-digit card precision).
        let m = &ckt.bjt_models[ckt.find_bjt_model("N1.2-6D").unwrap()];
        let direct = g.generate(&"N1.2-6D".parse().unwrap());
        assert!((m.cje - direct.cje).abs() / direct.cje < 1e-3);
        assert!((m.rb - direct.rb).abs() / direct.rb < 1e-3);
    }

    #[test]
    fn generate_all_matches_individual() {
        let g = generator();
        let shapes = TransistorShape::fig9_series();
        let all = g.generate_all(&shapes);
        assert_eq!(all.len(), 4);
        for (m, s) in all.iter().zip(shapes.iter()) {
            assert_eq!(*m, g.generate(s));
        }
    }
}
