//! Simulation-as-a-service front end: netlists in, typed results out.
//!
//! [`JobQueue`] turns the AHFIC SPICE engine into a multi-tenant
//! service inside one process. A batch of [`JobRequest`]s — each a deck
//! (builder [`Circuit`] or raw netlist text), an analysis
//! [`JobSpec`], and per-job [`Options`] — fans out over the
//! work-stealing sample pool; every worker checks its deck out of one
//! shared [`PreparedCache`], so N jobs on the same circuit compile it
//! once and share the `Arc<Prepared>`.
//!
//! The serving contract:
//!
//! - **Typed outcomes, never panics.** Each job returns a
//!   [`JobReport`] whose outcome is either a [`JobOutput`] or a
//!   [`SampleFailure`] carrying the job index, label, and the typed
//!   [`SpiceError`] that killed it — parse errors, lint rejections, and
//!   solver failures all degrade the same way.
//! - **Cooperative cancellation.** Install a
//!   [`CancelToken`] in a job's
//!   options; the engine polls it at Newton-iteration and
//!   timestep boundaries. A cancelled transient returns a typed
//!   *partial* result (status [`TranStatus::Cancelled`]), not an error.
//! - **Resource budgets.** A per-job
//!   [`Budget`] bounds Newton
//!   iterations, wall-steps, and batch lanes; exhaustion degrades to a
//!   typed partial (transient) or a `BudgetExhausted` failure (op).
//! - **Incremental streaming.** With
//!   [`Options::stream_every`](ahfic_spice::analysis::Options::stream_every)
//!   set and a [`JsonLinesSink`](ahfic_trace::JsonLinesSink) installed,
//!   transient jobs emit `progress.tran.*` records chunk by chunk while
//!   they run.
//! - **Warm-start reuse.** Each cache entry remembers the last
//!   converged operating point; later jobs on the same deck start
//!   Newton from it instead of a cold continuation-ladder climb. This
//!   is where most of the shared-cache throughput multiple comes from.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use ahfic::robust::SampleFailure;
use ahfic_spice::analysis::{
    sample_pool_map, Options, PssParams, PssResult, Session, TranParams, TranResult,
};
use ahfic_spice::cache::{CacheStats, DeckKey, PreparedCache};
use ahfic_spice::circuit::Circuit;
use ahfic_spice::error::SpiceError;
use ahfic_spice::parse::parse_netlist;
use ahfic_spice::wave::{AcWaveform, Waveform};
use ahfic_trace::TraceHandle;
use std::collections::HashMap;
use std::sync::Arc;

/// Upper bound on sessions a single worker parks for deck reuse; past
/// this a worker is clearly sweeping distinct decks and reuse buys
/// nothing.
const MAX_PARKED_SESSIONS: usize = 64;

pub use ahfic_spice::analysis::noise::NoisePoint;
pub use ahfic_spice::analysis::OpResult;
pub use ahfic_spice::analysis::{Budget, CancelToken, StreamPolicy, TranStatus};

/// The deck a job runs on: an already-built circuit or raw netlist
/// text parsed when the job executes (a parse failure becomes that
/// job's typed failure, never an abort of the batch).
// A request holds exactly one deck for its whole lifetime; boxing the
// circuit would add an indirection per job without shrinking anything
// that is ever stored in bulk.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum DeckSource {
    /// A circuit built through the [`Circuit`] API.
    Circuit(Circuit),
    /// SPICE netlist text, parsed on the worker.
    Netlist(String),
}

impl From<Circuit> for DeckSource {
    fn from(c: Circuit) -> Self {
        DeckSource::Circuit(c)
    }
}

impl From<String> for DeckSource {
    fn from(s: String) -> Self {
        DeckSource::Netlist(s)
    }
}

impl From<&str> for DeckSource {
    fn from(s: &str) -> Self {
        DeckSource::Netlist(s.to_string())
    }
}

/// Which analysis a job runs.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum JobSpec {
    /// DC operating point.
    Op,
    /// DC transfer sweep of the named source over the given values.
    Dc {
        /// Independent source to sweep.
        source: String,
        /// Swept values.
        values: Vec<f64>,
    },
    /// AC sweep (operating point computed implicitly).
    Ac {
        /// Sweep frequencies (Hz).
        freqs: Vec<f64>,
    },
    /// Noise analysis at the named output node (operating point
    /// computed implicitly).
    Noise {
        /// Output node name.
        output: String,
        /// Analysis frequencies (Hz).
        freqs: Vec<f64>,
    },
    /// Transient simulation.
    Tran(TranParams),
    /// Periodic steady state by shooting Newton. Cancellation and
    /// budget exhaustion are polled at shooting-iteration boundaries
    /// (and inside each period integration at timestep boundaries);
    /// both degrade to a typed partial result carrying the best orbit
    /// found so far.
    Pss(PssParams),
}

/// One unit of work for the queue.
#[derive(Clone, Debug)]
pub struct JobRequest {
    deck: DeckSource,
    spec: JobSpec,
    options: Options,
    label: String,
}

impl JobRequest {
    /// A job running `spec` on `deck` under default options.
    pub fn new(deck: impl Into<DeckSource>, spec: JobSpec) -> Self {
        JobRequest {
            deck: deck.into(),
            spec,
            options: Options::default(),
            label: String::new(),
        }
    }

    /// Replaces the job's analysis options — solver choice, lint
    /// policy, trace sink, cancel handle, budget, stream policy
    /// (chainable).
    pub fn options(mut self, options: Options) -> Self {
        self.options = options;
        self
    }

    /// Attaches a human-readable label carried into the report and any
    /// failure (chainable).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

/// A successful job's typed result.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum JobOutput {
    /// Operating-point solution.
    Op(OpResult),
    /// DC sweep waveform.
    Dc(Waveform),
    /// AC sweep waveform.
    Ac(AcWaveform),
    /// Noise spectrum.
    Noise(Vec<NoisePoint>),
    /// Transient result — inspect
    /// [`status()`](ahfic_spice::analysis::TranResult::status): a
    /// cancelled or budget-exhausted run still lands here, with the
    /// partial waveform.
    Tran(TranResult),
    /// Periodic-steady-state result — inspect
    /// [`status()`](ahfic_spice::analysis::PssResult::status); a
    /// cancelled or budget-exhausted run still lands here, with the
    /// best orbit found so far.
    Pss(PssResult),
}

impl JobOutput {
    /// The transient result, if this job ran a transient.
    pub fn as_tran(&self) -> Option<&TranResult> {
        match self {
            JobOutput::Tran(t) => Some(t),
            _ => None,
        }
    }

    /// The operating-point result, if this job ran an OP.
    pub fn as_op(&self) -> Option<&OpResult> {
        match self {
            JobOutput::Op(r) => Some(r),
            _ => None,
        }
    }

    /// The periodic-steady-state result, if this job ran a PSS.
    pub fn as_pss(&self) -> Option<&PssResult> {
        match self {
            JobOutput::Pss(r) => Some(r),
            _ => None,
        }
    }
}

/// Everything the queue reports back for one job.
#[derive(Debug)]
#[non_exhaustive]
pub struct JobReport {
    /// Zero-based position of the job in the submitted batch.
    pub index: usize,
    /// The label given at submission.
    pub label: String,
    /// The typed result, or the typed failure that killed the job.
    pub outcome: Result<JobOutput, SampleFailure>,
    /// Whether the deck came out of the shared cache already compiled.
    pub cache_hit: bool,
}

impl JobReport {
    /// Zero-based position of the job in the submitted batch.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The label given at submission.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The typed result, or the typed failure that killed the job.
    pub fn outcome(&self) -> &Result<JobOutput, SampleFailure> {
        &self.outcome
    }

    /// Whether the deck came out of the shared cache already compiled.
    pub fn cache_hit(&self) -> bool {
        self.cache_hit
    }

    /// Whether the job produced a result.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }
}

/// Queue tuning knobs.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct QueueConfig {
    /// Worker threads; 0 resolves to the machine's parallelism.
    pub threads: usize,
    /// Compiled-deck cache capacity (decks, not bytes).
    pub cache_capacity: usize,
    /// Trace handle for queue-level telemetry (`job.done`,
    /// `job.failed` counters and the cache's hit/miss/evict stream).
    pub trace: TraceHandle,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            threads: 0,
            cache_capacity: 64,
            trace: TraceHandle::off(),
        }
    }
}

impl QueueConfig {
    /// Default configuration: auto thread count, 64-deck cache, no
    /// tracing.
    pub fn new() -> Self {
        QueueConfig::default()
    }

    /// Sets the worker thread count (0 = auto, 1 = inline).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the compiled-deck cache capacity (clamped to ≥ 1).
    pub fn cache_capacity(mut self, decks: usize) -> Self {
        self.cache_capacity = decks.max(1);
        self
    }

    /// Routes queue and cache telemetry to `trace`.
    pub fn trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }
}

/// A concurrent simulation job queue over one shared compile cache.
///
/// ```
/// use ahfic_serve::{JobQueue, JobRequest, JobSpec, QueueConfig};
/// use ahfic_spice::circuit::Circuit;
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.vsource("V1", a, Circuit::gnd(), 2.0);
/// ckt.resistor("R1", a, Circuit::gnd(), 1e3);
///
/// let queue = JobQueue::new(QueueConfig::new().threads(2));
/// let jobs = (0..4)
///     .map(|i| JobRequest::new(ckt.clone(), JobSpec::Op).label(format!("job {i}")))
///     .collect();
/// let reports = queue.run(jobs);
/// assert!(reports.iter().all(|r| r.is_ok()));
/// // One compile served all four jobs.
/// assert_eq!(queue.cache_stats().compiles(), 1);
/// ```
#[derive(Debug)]
pub struct JobQueue {
    cache: Arc<PreparedCache>,
    config: QueueConfig,
}

impl JobQueue {
    /// A queue with its own cache sized by `config.cache_capacity`.
    pub fn new(config: QueueConfig) -> Self {
        let cache = Arc::new(PreparedCache::with_trace(
            config.cache_capacity,
            config.trace.clone(),
        ));
        JobQueue { cache, config }
    }

    /// A queue sharing an existing cache (e.g. with other queues or
    /// with direct [`Session::compile_cached`] users).
    pub fn with_cache(cache: Arc<PreparedCache>, config: QueueConfig) -> Self {
        JobQueue { cache, config }
    }

    /// The shared compile cache.
    pub fn cache(&self) -> &Arc<PreparedCache> {
        &self.cache
    }

    /// Compile-cache effectiveness counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Runs a batch of jobs across the worker pool, returning one
    /// report per job in submission order.
    ///
    /// Workers claim jobs through an atomic cursor (work stealing), so
    /// a slow transient does not serialize the queue behind it. This
    /// call never fails as a whole: per-job errors come back as typed
    /// failures inside the reports.
    pub fn run(&self, jobs: Vec<JobRequest>) -> Vec<JobReport> {
        let n = jobs.len();
        let tr = self.config.trace.tracer();
        let span = tr.span("serve.batch");
        let reports: Vec<JobReport> = sample_pool_map(
            self.config.threads,
            n,
            1,
            |_| HashMap::new(),
            |sessions, i| self.run_one_with(i, &jobs[i], sessions),
        );
        tr.counter("serve.jobs", n as f64);
        tr.counter(
            "serve.failed",
            reports.iter().filter(|r| !r.is_ok()).count() as f64,
        );
        span.end();
        reports
    }

    /// Runs one job synchronously on the caller's thread (still
    /// through the shared cache).
    pub fn run_one(&self, index: usize, job: &JobRequest) -> JobReport {
        self.run_one_with(index, job, &mut HashMap::new())
    }

    /// [`JobQueue::run_one`] against a worker-local session pool keyed
    /// by deck content, so consecutive jobs on one deck keep the
    /// session's warmed Newton workspace alongside the cache's
    /// operating-point hint.
    fn run_one_with(
        &self,
        index: usize,
        job: &JobRequest,
        sessions: &mut HashMap<DeckKey, Session>,
    ) -> JobReport {
        let fail = |e: SpiceError| {
            self.config.trace.tracer().counter("job.failed", 1.0);
            JobReport {
                index,
                label: job.label.clone(),
                outcome: Err(SampleFailure::new(index, job.label.clone(), e)),
                cache_hit: false,
            }
        };
        let parsed;
        let circuit: &Circuit = match &job.deck {
            DeckSource::Circuit(c) => c,
            DeckSource::Netlist(text) => match parse_netlist(text) {
                Ok(c) => {
                    parsed = c;
                    &parsed
                }
                Err(e) => return fail(e),
            },
        };
        let deck = match self.cache.get_or_compile(circuit, job.options.lint) {
            Ok(d) => d,
            Err(e) => return fail(e),
        };
        let cache_hit = deck.was_hit();
        // Check out this worker's parked session for the deck (fresh if
        // none); the job's own options always replace whatever the
        // previous job left installed.
        let key = deck.key();
        let mut sess = match sessions.remove(&key) {
            Some(s) => s.with_options(job.options.clone()),
            None => Session::from_arc(deck.prepared_arc()).with_options(job.options.clone()),
        };
        let warm = deck.op_hint();
        // Solve the implicit operating point once for the specs that
        // need one, warm-started from the deck's last converged
        // solution; park the fresh solution back on the cache entry.
        let op_for = |sess: &Session| {
            let r = sess.op_from(warm.as_deref())?;
            deck.store_op_hint(r.x());
            Ok::<_, SpiceError>(r)
        };
        let outcome = match &job.spec {
            JobSpec::Op => op_for(&sess).map(JobOutput::Op),
            JobSpec::Dc { source, values } => sess.dc(source, values).map(JobOutput::Dc),
            JobSpec::Ac { freqs } => op_for(&sess)
                .and_then(|r| sess.ac(r.x(), freqs))
                .map(JobOutput::Ac),
            JobSpec::Noise { output, freqs } => match sess.prepared().circuit.find_node(output) {
                None => Err(SpiceError::Netlist(format!("no node named {output}"))),
                Some(node) => op_for(&sess)
                    .and_then(|r| sess.noise(r.x(), node, freqs))
                    .map(JobOutput::Noise),
            },
            JobSpec::Tran(params) => sess.tran(params).map(JobOutput::Tran),
            JobSpec::Pss(params) => sess.pss(params).map(JobOutput::Pss),
        };
        // Park the session for the worker's next job on this deck. A DC
        // sweep copies the shared deck on write, so its session is
        // dropped rather than parked with a diverged copy; the pool is
        // bounded so a worker churning through many decks cannot hoard
        // memory.
        if !matches!(job.spec, JobSpec::Dc { .. }) && sessions.len() < MAX_PARKED_SESSIONS {
            sessions.insert(key, sess);
        }
        let tr = self.config.trace.tracer();
        match outcome {
            Ok(out) => {
                tr.counter("job.done", 1.0);
                JobReport {
                    index,
                    label: job.label.clone(),
                    outcome: Ok(out),
                    cache_hit,
                }
            }
            Err(e) => {
                tr.counter("job.failed", 1.0);
                JobReport {
                    index,
                    label: job.label.clone(),
                    outcome: Err(SampleFailure::new(index, job.label.clone(), e)),
                    cache_hit,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahfic_spice::analysis::{Budget, CancelToken};
    use ahfic_trace::InMemorySink;

    fn divider(r2: f64) -> Circuit {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), 2.0);
        c.resistor("R1", a, b, 1e3);
        c.resistor("R2", b, Circuit::gnd(), r2);
        c
    }

    fn rc_tran_deck() -> Circuit {
        let mut c = Circuit::new();
        let a = c.node("a");
        let out = c.node("out");
        c.vsource_wave(
            "V1",
            a,
            Circuit::gnd(),
            ahfic_spice::wave::SourceWave::Sin {
                offset: 0.0,
                ampl: 1.0,
                freq: 1e6,
                delay: 0.0,
                damping: 0.0,
                phase_deg: 0.0,
            },
        );
        c.resistor("R1", a, out, 1e3);
        c.capacitor("C1", out, Circuit::gnd(), 1e-9);
        c
    }

    #[test]
    fn batch_shares_one_compile_and_keeps_order() {
        let queue = JobQueue::new(QueueConfig::new().threads(4));
        let jobs: Vec<JobRequest> = (0..16)
            .map(|i| JobRequest::new(divider(1e3), JobSpec::Op).label(format!("j{i}")))
            .collect();
        let reports = queue.run(jobs);
        assert_eq!(reports.len(), 16);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(r.label(), format!("j{i}"));
            assert!(r.is_ok(), "{:?}", r.outcome);
        }
        assert_eq!(queue.cache_stats().compiles(), 1);
        assert!(reports.iter().filter(|r| r.cache_hit()).count() >= 15);
    }

    #[test]
    fn netlist_in_typed_results_out() {
        let good = "* divider\nV1 a 0 2.0\nR1 a b 1k\nR2 b 0 1k\n.end\n";
        let bad = "* broken\nR1 a b notanumber\n.end\n";
        let queue = JobQueue::new(QueueConfig::new().threads(1));
        let reports = queue.run(vec![
            JobRequest::new(good, JobSpec::Op).label("good"),
            JobRequest::new(bad, JobSpec::Op).label("bad"),
        ]);
        assert!(reports[0].is_ok());
        let failure = reports[1].outcome().as_ref().unwrap_err();
        assert_eq!(failure.index, 1);
        assert_eq!(failure.label, "bad");
    }

    #[test]
    fn mixed_specs_return_matching_outputs() {
        let queue = JobQueue::new(QueueConfig::new().threads(2));
        let reports = queue.run(vec![
            JobRequest::new(divider(1e3), JobSpec::Op),
            JobRequest::new(
                divider(1e3),
                JobSpec::Dc {
                    source: "V1".into(),
                    values: vec![1.0, 2.0, 3.0],
                },
            ),
            JobRequest::new(rc_tran_deck(), JobSpec::Tran(TranParams::new(2e-6, 10e-9))),
        ]);
        assert!(matches!(
            reports[0].outcome().as_ref().unwrap(),
            JobOutput::Op(_)
        ));
        match reports[1].outcome().as_ref().unwrap() {
            JobOutput::Dc(w) => assert_eq!(w.len(), 3),
            other => panic!("expected Dc, got {other:?}"),
        }
        let t = reports[2].outcome().as_ref().unwrap().as_tran().unwrap();
        assert!(t.is_complete());
    }

    #[test]
    fn cancelled_job_degrades_to_typed_partial() {
        let token = CancelToken::new();
        token.cancel();
        let queue = JobQueue::new(QueueConfig::new().threads(1));
        // `with_uic` skips the initial operating point, so the
        // pre-cancelled token is seen at the first timestep boundary
        // and the job degrades to a typed partial instead of an error.
        let reports = queue.run(vec![JobRequest::new(
            rc_tran_deck(),
            JobSpec::Tran(TranParams::new(2e-6, 10e-9).with_uic()),
        )
        .options(Options::new().cancel_token(&token))]);
        let t = reports[0].outcome().as_ref().unwrap().as_tran().unwrap();
        assert!(
            matches!(t.status(), TranStatus::Cancelled { .. }),
            "{:?}",
            t.status()
        );
    }

    #[test]
    fn pss_job_returns_converged_orbit() {
        let queue = JobQueue::new(QueueConfig::new().threads(1));
        let reports = queue.run(vec![JobRequest::new(
            rc_tran_deck(),
            JobSpec::Pss(PssParams::new(1e-6, 64)),
        )
        .label("pss")]);
        let p = reports[0].outcome().as_ref().unwrap().as_pss().unwrap();
        assert!(p.is_converged(), "{:?}", p.status());
        assert!(p.wave().len() >= 65);
    }

    #[test]
    fn cancelled_pss_job_degrades_to_typed_partial() {
        use ahfic_spice::analysis::PssStatus;
        let token = CancelToken::new();
        token.cancel();
        let queue = JobQueue::new(QueueConfig::new().threads(1));
        let reports = queue.run(vec![JobRequest::new(
            rc_tran_deck(),
            JobSpec::Pss(PssParams::new(1e-6, 64).warmup_periods(0)),
        )
        .options(Options::new().cancel_token(&token))]);
        // The pre-cancelled token is seen either at the initial
        // operating point (typed failure) or at the first shooting
        // boundary (typed partial); both are acceptable degradations,
        // a panic or a bogus "converged" is not.
        match reports[0].outcome() {
            Ok(out) => {
                let p = out.as_pss().unwrap();
                assert!(
                    matches!(p.status(), PssStatus::Cancelled { .. }),
                    "{:?}",
                    p.status()
                );
            }
            Err(f) => assert!(f.error.is_abort(), "{:?}", f.error),
        }
    }

    #[test]
    fn budget_exhaustion_is_a_typed_failure_for_op() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, Circuit::gnd(), 0.7);
        let dm = c.add_diode_model(ahfic_spice::model::DiodeModel::default());
        c.diode("D1", a, Circuit::gnd(), dm, 1.0);
        let queue = JobQueue::new(QueueConfig::new().threads(1));
        let reports = queue.run(vec![JobRequest::new(c, JobSpec::Op)
            .label("starved")
            .options(
                Options::new()
                    .max_newton(1)
                    .budget(Budget::unlimited().max_newton(1)),
            )]);
        let failure = reports[0].outcome().as_ref().unwrap_err();
        assert!(failure.error.is_abort(), "{:?}", failure.error);
    }

    #[test]
    fn queue_trace_counts_jobs() {
        let sink = Arc::new(InMemorySink::new());
        let queue = JobQueue::new(QueueConfig::new().threads(1).trace(TraceHandle::new(&sink)));
        queue.run(vec![
            JobRequest::new(divider(1e3), JobSpec::Op),
            JobRequest::new("R1 a b notanumber\n", JobSpec::Op),
        ]);
        let recs = sink.records();
        let total = |name: &str| {
            recs.iter()
                .filter(|r| r.name == name)
                .map(|r| r.value)
                .sum::<f64>()
        };
        assert_eq!(total("job.done"), 1.0);
        assert_eq!(total("job.failed"), 1.0);
        assert_eq!(total("serve.jobs"), 2.0);
        // The cache reports through the same handle.
        assert_eq!(total("cache.miss"), 1.0);
    }

    #[test]
    fn warm_start_hint_cuts_second_job_iterations() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, Circuit::gnd(), 0.75);
        let dm = c.add_diode_model(ahfic_spice::model::DiodeModel::default());
        c.diode("D1", a, Circuit::gnd(), dm, 1.0);
        c.resistor("R1", a, Circuit::gnd(), 10e3);
        let queue = JobQueue::new(QueueConfig::new().threads(1));
        let first = queue.run_one(0, &JobRequest::new(c.clone(), JobSpec::Op));
        let second = queue.run_one(1, &JobRequest::new(c, JobSpec::Op));
        let iters = |r: &JobReport| r.outcome().as_ref().unwrap().as_op().unwrap().iterations();
        assert!(
            iters(&second) <= iters(&first),
            "warm start must not cost iterations: {} vs {}",
            iters(&second),
            iters(&first)
        );
    }
}
