//! Simulation-as-a-service front end: netlists in, typed results out.
//!
//! [`JobQueue`] turns the AHFIC SPICE engine into a multi-tenant
//! service inside one process. A batch of [`JobRequest`]s — each a deck
//! (builder [`Circuit`] or raw netlist text), an analysis
//! [`JobSpec`], and per-job [`Options`] — fans out over the
//! work-stealing sample pool; every worker checks its deck out of one
//! shared [`PreparedCache`], so N jobs on the same circuit compile it
//! once and share the `Arc<Prepared>`.
//!
//! The serving contract:
//!
//! - **Typed outcomes, never panics.** Each job runs under
//!   [`std::panic::catch_unwind`] supervision: a device model blowing a
//!   debug assertion becomes a typed [`JobError::WorkerPanic`] report
//!   while the worker recycles its parked state and keeps draining the
//!   queue. Parse errors, lint rejections, and solver failures degrade
//!   the same way, as [`JobError::Sim`] carrying the typed
//!   [`SpiceError`].
//! - **Cooperative cancellation.** Install a
//!   [`CancelToken`] in a job's
//!   options; the engine polls it at Newton-iteration and
//!   timestep boundaries. A cancelled transient returns a typed
//!   *partial* result (status [`TranStatus::Cancelled`]), not an error.
//! - **Resource budgets and wall-clock deadlines.** A per-job
//!   [`Budget`] bounds Newton iterations, wall-steps, batch lanes, and
//!   (via [`Budget::max_wall`]) elapsed time; exhaustion degrades to a
//!   typed partial (transient, PSS) or a `BudgetExhausted` failure
//!   (op), and a deadline trip bumps the `serve.deadline_exceeded`
//!   counter.
//! - **Retry with escalation.** A deterministic [`RetryPolicy`] re-runs
//!   jobs that failed retryably (`NoConvergence`, `SingularMatrix`,
//!   `NonFinite`) with seeded-jitter backoff, escalating
//!   non-convergence onto the full continuation ladder with a doubled
//!   Newton allowance. Per-attempt history lands in
//!   [`JobReport::attempts`].
//! - **Bounded admission.** [`QueueConfig::capacity`] plus a
//!   [`ShedPolicy`] turn overload into typed [`JobError::Shed`]
//!   outcomes instead of unbounded queueing, and a running queue drains
//!   gracefully through [`RunningQueue::shutdown_and_drain`].
//! - **Incremental streaming.** With
//!   [`Options::stream_every`](ahfic_spice::analysis::Options::stream_every)
//!   set and a [`JsonLinesSink`](ahfic_trace::JsonLinesSink) installed,
//!   transient jobs emit `progress.tran.*` records chunk by chunk while
//!   they run.
//! - **Warm-start reuse.** Each cache entry remembers the last
//!   converged operating point; later jobs on the same deck start
//!   Newton from it instead of a cold continuation-ladder climb. This
//!   is where most of the shared-cache throughput multiple comes from.
//!   (A retry clears the hint first, so a poisoned warm start cannot
//!   re-kill the attempt it caused.)
//!
//! Fault-tolerance observability is fixed-name: trace counters
//! `serve.panic_recovered`, `serve.retries`, `serve.shed`,
//! `serve.deadline_exceeded`, and a [`QueueStats`] snapshot from
//! [`JobQueue::stats`].

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use ahfic::robust::SampleFailure;
use ahfic_spice::analysis::fault::splitmix64;
use ahfic_spice::analysis::{
    sample_pool_map, LadderConfig, Options, PssParams, PssResult, PssStatus, Session, TranParams,
    TranResult,
};
use ahfic_spice::cache::{CacheStats, CachedDeck, DeckKey, PreparedCache};
use ahfic_spice::circuit::Circuit;
use ahfic_spice::error::SpiceError;
use ahfic_spice::parse::parse_netlist;
use ahfic_spice::wave::{AcWaveform, Waveform};
use ahfic_trace::TraceHandle;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Upper bound on sessions a single worker parks for deck reuse; past
/// this a worker is clearly sweeping distinct decks and reuse buys
/// nothing.
const MAX_PARKED_SESSIONS: usize = 64;

pub use ahfic::robust::SampleFailure as SimFailure;
pub use ahfic_spice::analysis::noise::NoisePoint;
pub use ahfic_spice::analysis::OpResult;
pub use ahfic_spice::analysis::{Budget, CancelToken, Deadline, StreamPolicy, TranStatus};

/// The deck a job runs on: an already-built circuit or raw netlist
/// text parsed when the job executes (a parse failure becomes that
/// job's typed failure, never an abort of the batch).
// A request holds exactly one deck for its whole lifetime; boxing the
// circuit would add an indirection per job without shrinking anything
// that is ever stored in bulk.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum DeckSource {
    /// A circuit built through the [`Circuit`] API.
    Circuit(Circuit),
    /// SPICE netlist text, parsed on the worker.
    Netlist(String),
}

impl From<Circuit> for DeckSource {
    fn from(c: Circuit) -> Self {
        DeckSource::Circuit(c)
    }
}

impl From<String> for DeckSource {
    fn from(s: String) -> Self {
        DeckSource::Netlist(s)
    }
}

impl From<&str> for DeckSource {
    fn from(s: &str) -> Self {
        DeckSource::Netlist(s.to_string())
    }
}

/// Which analysis a job runs.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum JobSpec {
    /// DC operating point.
    Op,
    /// DC transfer sweep of the named source over the given values.
    Dc {
        /// Independent source to sweep.
        source: String,
        /// Swept values.
        values: Vec<f64>,
    },
    /// AC sweep (operating point computed implicitly).
    Ac {
        /// Sweep frequencies (Hz).
        freqs: Vec<f64>,
    },
    /// Noise analysis at the named output node (operating point
    /// computed implicitly).
    Noise {
        /// Output node name.
        output: String,
        /// Analysis frequencies (Hz).
        freqs: Vec<f64>,
    },
    /// Transient simulation.
    Tran(TranParams),
    /// Periodic steady state by shooting Newton. Cancellation and
    /// budget exhaustion are polled at shooting-iteration boundaries
    /// (and inside each period integration at timestep boundaries);
    /// both degrade to a typed partial result carrying the best orbit
    /// found so far.
    Pss(PssParams),
}

/// One unit of work for the queue.
#[derive(Clone, Debug)]
pub struct JobRequest {
    deck: DeckSource,
    spec: JobSpec,
    options: Options,
    label: String,
}

impl JobRequest {
    /// A job running `spec` on `deck` under default options.
    pub fn new(deck: impl Into<DeckSource>, spec: JobSpec) -> Self {
        JobRequest {
            deck: deck.into(),
            spec,
            options: Options::default(),
            label: String::new(),
        }
    }

    /// Replaces the job's analysis options — solver choice, lint
    /// policy, trace sink, cancel handle, budget, stream policy
    /// (chainable).
    pub fn options(mut self, options: Options) -> Self {
        self.options = options;
        self
    }

    /// Attaches a human-readable label carried into the report and any
    /// failure (chainable).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

/// A successful job's typed result.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum JobOutput {
    /// Operating-point solution.
    Op(OpResult),
    /// DC sweep waveform.
    Dc(Waveform),
    /// AC sweep waveform.
    Ac(AcWaveform),
    /// Noise spectrum.
    Noise(Vec<NoisePoint>),
    /// Transient result — inspect
    /// [`status()`](ahfic_spice::analysis::TranResult::status): a
    /// cancelled or budget-exhausted run still lands here, with the
    /// partial waveform.
    Tran(TranResult),
    /// Periodic-steady-state result — inspect
    /// [`status()`](ahfic_spice::analysis::PssResult::status); a
    /// cancelled or budget-exhausted run still lands here, with the
    /// best orbit found so far.
    Pss(PssResult),
}

impl JobOutput {
    /// The transient result, if this job ran a transient.
    pub fn as_tran(&self) -> Option<&TranResult> {
        match self {
            JobOutput::Tran(t) => Some(t),
            _ => None,
        }
    }

    /// The operating-point result, if this job ran an OP.
    pub fn as_op(&self) -> Option<&OpResult> {
        match self {
            JobOutput::Op(r) => Some(r),
            _ => None,
        }
    }

    /// The periodic-steady-state result, if this job ran a PSS.
    pub fn as_pss(&self) -> Option<&PssResult> {
        match self {
            JobOutput::Pss(r) => Some(r),
            _ => None,
        }
    }
}

/// Why the queue could not produce a result for a job.
#[derive(Debug)]
#[non_exhaustive]
pub enum JobError {
    /// The analysis failed with a typed engine error — parse, lint,
    /// netlist, solver, cancellation, or budget exhaustion — after all
    /// configured attempts.
    Sim(SampleFailure),
    /// The job panicked (e.g. a device model's debug assertion fired).
    /// The panic was caught at the supervision boundary, the worker's
    /// parked per-deck state was discarded, and the queue kept
    /// draining.
    WorkerPanic {
        /// The panic payload, stringified (`"non-string panic payload"`
        /// when the payload was neither `String` nor `&str`).
        payload: String,
        /// The job's submission index / id.
        job_id: usize,
    },
    /// The queue refused the job under overload per its
    /// [`ShedPolicy`].
    Shed {
        /// The configured [`QueueConfig::capacity`] that was full.
        capacity: usize,
    },
}

impl JobError {
    /// The underlying sample failure, when the job failed in the
    /// engine.
    pub fn sim(&self) -> Option<&SampleFailure> {
        match self {
            JobError::Sim(f) => Some(f),
            _ => None,
        }
    }

    /// The typed engine error, when the job failed in the engine.
    pub fn error(&self) -> Option<&SpiceError> {
        self.sim().map(|f| &f.error)
    }

    /// Whether this is a caught worker panic.
    pub fn is_panic(&self) -> bool {
        matches!(self, JobError::WorkerPanic { .. })
    }

    /// Whether the job was load-shed.
    pub fn is_shed(&self) -> bool {
        matches!(self, JobError::Shed { .. })
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Sim(s) => write!(f, "{s}"),
            JobError::WorkerPanic { payload, job_id } => {
                write!(f, "job {job_id} panicked: {payload}")
            }
            JobError::Shed { capacity } => {
                write!(f, "job shed: queue at capacity {capacity}")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// One entry of a job's retry history.
///
/// History is recorded from the first failed attempt onwards: a job
/// that succeeds on its first try keeps an empty
/// [`JobReport::attempts`], so the fault-free fast path allocates
/// nothing.
#[derive(Clone, Debug)]
pub struct AttemptRecord {
    /// 1-based attempt number.
    pub attempt: usize,
    /// Whether this attempt ran with escalated options (full
    /// continuation ladder, doubled Newton allowance).
    pub escalated: bool,
    /// Deterministic backoff slept before this attempt, in ms.
    pub backoff_ms: u64,
    /// What the attempt produced: `"ok"`, the error display, or
    /// `"panic: …"`.
    pub outcome: String,
}

/// Deterministic retry schedule for retryable engine failures.
///
/// Retryable: [`SpiceError::NoConvergence`], [`SpiceError::Singular`],
/// [`SpiceError::NonFinite`] — transient numerical trouble (often from
/// a poisoned warm start or an injected fault) that a fresh, possibly
/// escalated attempt can clear. Everything else — parse/lint/netlist
/// errors (deterministic), cancellation and budget exhaustion (the
/// caller asked to stop), panics (the job itself is the suspect) — is
/// never retried.
///
/// Backoff is seeded-jitter exponential: attempt `k` (2-based) sleeps
/// `base·2^(k-2) + splitmix64(seed, job, k) mod base` ms, so schedules
/// are reproducible run to run and decorrelated job to job. The default
/// base of 0 disables sleeping entirely, which is what tests want.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (clamped to ≥ 1).
    pub max_attempts: usize,
    /// Base backoff in ms; 0 = no sleep between attempts.
    pub backoff_base_ms: u64,
    /// Seed for the deterministic jitter.
    pub seed: u64,
    /// Whether a `NoConvergence` retry escalates onto the full
    /// continuation ladder with a doubled Newton allowance.
    /// `Singular`/`NonFinite` (and injected faults generally) are
    /// always retried verbatim.
    pub escalate: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base_ms: 0,
            seed: 0x5eed_c0de,
            escalate: true,
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `n` total attempts (clamped to ≥ 1), no
    /// backoff sleep, escalation on.
    pub fn attempts(n: usize) -> Self {
        RetryPolicy {
            max_attempts: n.max(1),
            ..RetryPolicy::default()
        }
    }

    /// Sets the base backoff in ms (chainable).
    pub fn backoff_base_ms(mut self, ms: u64) -> Self {
        self.backoff_base_ms = ms;
        self
    }

    /// Sets the jitter seed (chainable).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables ladder escalation on `NoConvergence`
    /// retries (chainable).
    pub fn escalate(mut self, on: bool) -> Self {
        self.escalate = on;
        self
    }

    /// Whether `e` is worth another attempt.
    pub fn retryable(&self, e: &SpiceError) -> bool {
        matches!(
            e,
            SpiceError::NoConvergence { .. }
                | SpiceError::Singular { .. }
                | SpiceError::NonFinite { .. }
        )
    }

    /// Deterministic backoff before attempt `attempt` (2-based in
    /// practice; attempt 1 never sleeps) of job `job`.
    pub fn backoff_ms(&self, job: u64, attempt: u64) -> u64 {
        if self.backoff_base_ms == 0 || attempt < 2 {
            return 0;
        }
        let exp = self
            .backoff_base_ms
            .saturating_mul(1u64 << (attempt - 2).min(16));
        let jitter = splitmix64(self.seed ^ (job << 32) ^ attempt) % self.backoff_base_ms;
        exp.saturating_add(jitter)
    }
}

/// What a full queue does with the overflow.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum ShedPolicy {
    /// Refuse the newly arriving job — the default.
    #[default]
    RejectNewest,
    /// Drop the oldest still-pending job to admit the new one.
    RejectOldest,
}

/// Everything the queue reports back for one job.
#[derive(Debug)]
#[non_exhaustive]
pub struct JobReport {
    /// Zero-based position of the job in the submitted batch (or its
    /// submission id on a running queue).
    pub index: usize,
    /// The label given at submission.
    pub label: String,
    /// The typed result, or the typed failure that killed the job.
    pub outcome: Result<JobOutput, JobError>,
    /// Whether the deck came out of the shared cache already compiled.
    pub cache_hit: bool,
    /// Per-attempt retry history; empty when the first attempt
    /// succeeded.
    pub attempts: Vec<AttemptRecord>,
}

impl JobReport {
    /// Zero-based position of the job in the submitted batch.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The label given at submission.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The typed result, or the typed failure that killed the job.
    pub fn outcome(&self) -> &Result<JobOutput, JobError> {
        &self.outcome
    }

    /// Whether the deck came out of the shared cache already compiled.
    pub fn cache_hit(&self) -> bool {
        self.cache_hit
    }

    /// Per-attempt retry history; empty when the first attempt
    /// succeeded.
    pub fn attempts(&self) -> &[AttemptRecord] {
        &self.attempts
    }

    /// Whether the job produced a result.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }
}

/// Monotonic fault-tolerance counters for one queue, snapshot via
/// [`JobQueue::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct QueueStats {
    /// Jobs accepted (batch or [`RunningQueue::submit`]). Shed jobs
    /// count in [`QueueStats::shed`], not here, on both paths.
    pub submitted: u64,
    /// Jobs that returned a [`JobOutput`].
    pub completed: u64,
    /// Jobs that returned [`JobError::Sim`] or
    /// [`JobError::WorkerPanic`].
    pub failed: u64,
    /// Jobs refused or dropped under the [`ShedPolicy`] (including
    /// drain-deadline sheds).
    pub shed: u64,
    /// Retry attempts scheduled by the [`RetryPolicy`].
    pub retries: u64,
    /// Panics caught at the supervision boundary.
    pub panics_recovered: u64,
    /// Jobs whose outcome hit a wall-clock deadline
    /// (`"wall_clock_ms"` budget exhaustion, full or partial).
    pub deadline_exceeded: u64,
}

/// Shared atomic cells behind [`QueueStats`].
#[derive(Debug, Default)]
struct StatsCells {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    retries: AtomicU64,
    panics_recovered: AtomicU64,
    deadline_exceeded: AtomicU64,
}

impl StatsCells {
    fn snapshot(&self) -> QueueStats {
        QueueStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            panics_recovered: self.panics_recovered.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
        }
    }

    fn bump(cell: &AtomicU64) {
        cell.fetch_add(1, Ordering::Relaxed);
    }
}

/// Queue tuning knobs.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct QueueConfig {
    /// Worker threads; 0 resolves to the machine's parallelism.
    pub threads: usize,
    /// Compiled-deck cache capacity (decks, not bytes).
    pub cache_capacity: usize,
    /// Trace handle for queue-level telemetry (`job.done`,
    /// `job.failed`, `serve.*` counters and the cache's
    /// hit/miss/evict stream).
    pub trace: TraceHandle,
    /// Admission bound: pending jobs beyond this are shed per
    /// [`QueueConfig::shed_policy`]. 0 = unbounded (the default).
    pub capacity: usize,
    /// What to do with overflow when [`QueueConfig::capacity`] is hit.
    pub shed_policy: ShedPolicy,
    /// Retry schedule for retryable engine failures. The default
    /// allows a single attempt (no retries).
    pub retry: RetryPolicy,
    /// Whether jobs run under `catch_unwind` supervision. Default
    /// `true`; turning it off restores panic = worker death and exists
    /// only so the supervision overhead can be benchmarked.
    pub supervise: bool,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            threads: 0,
            cache_capacity: 64,
            trace: TraceHandle::off(),
            capacity: 0,
            shed_policy: ShedPolicy::RejectNewest,
            retry: RetryPolicy::default(),
            supervise: true,
        }
    }
}

impl QueueConfig {
    /// Default configuration: auto thread count, 64-deck cache, no
    /// tracing, unbounded admission, no retries, supervision on.
    pub fn new() -> Self {
        QueueConfig::default()
    }

    /// Sets the worker thread count (0 = auto, 1 = inline).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the compiled-deck cache capacity (clamped to ≥ 1).
    pub fn cache_capacity(mut self, decks: usize) -> Self {
        self.cache_capacity = decks.max(1);
        self
    }

    /// Routes queue and cache telemetry to `trace`.
    pub fn trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// Bounds admission to `capacity` pending jobs (0 = unbounded).
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets the overflow policy used when the capacity bound is hit.
    pub fn shed_policy(mut self, policy: ShedPolicy) -> Self {
        self.shed_policy = policy;
        self
    }

    /// Installs a retry schedule.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Toggles `catch_unwind` supervision. Turning it off restores
    /// panic = worker death (and, in a batch run, an unwinding pool);
    /// it exists only so benchmarks can measure supervision overhead.
    pub fn supervise(mut self, on: bool) -> Self {
        self.supervise = on;
        self
    }
}

/// A concurrent simulation job queue over one shared compile cache.
///
/// ```
/// use ahfic_serve::{JobQueue, JobRequest, JobSpec, QueueConfig};
/// use ahfic_spice::circuit::Circuit;
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.vsource("V1", a, Circuit::gnd(), 2.0);
/// ckt.resistor("R1", a, Circuit::gnd(), 1e3);
///
/// let queue = JobQueue::new(QueueConfig::new().threads(2));
/// let jobs = (0..4)
///     .map(|i| JobRequest::new(ckt.clone(), JobSpec::Op).label(format!("job {i}")))
///     .collect();
/// let reports = queue.run(jobs);
/// assert!(reports.iter().all(|r| r.is_ok()));
/// // One compile served all four jobs.
/// assert_eq!(queue.cache_stats().compiles(), 1);
/// ```
#[derive(Debug)]
pub struct JobQueue {
    cache: Arc<PreparedCache>,
    config: QueueConfig,
    stats: Arc<StatsCells>,
}

/// What one supervised attempt produced, crossing the `catch_unwind`
/// boundary by value.
struct AttemptOutcome {
    outcome: Result<JobOutput, SpiceError>,
    cache_hit: bool,
    deck: Option<CachedDeck>,
}

/// Stringifies a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => match p.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// Whether an attempt's outcome records a tripped wall-clock deadline —
/// either a hard `BudgetExhausted` failure or a typed partial result.
fn deadline_tripped(outcome: &Result<JobOutput, SpiceError>) -> bool {
    match outcome {
        Err(SpiceError::BudgetExhausted { resource, .. }) => *resource == "wall_clock_ms",
        Ok(JobOutput::Tran(t)) => matches!(
            t.status(),
            TranStatus::BudgetExhausted { resource, .. } if *resource == "wall_clock_ms"
        ),
        Ok(JobOutput::Pss(p)) => matches!(
            p.status(),
            PssStatus::BudgetExhausted { resource, .. } if *resource == "wall_clock_ms"
        ),
        _ => false,
    }
}

impl JobQueue {
    /// A queue with its own cache sized by `config.cache_capacity`.
    pub fn new(config: QueueConfig) -> Self {
        let cache = Arc::new(PreparedCache::with_trace(
            config.cache_capacity,
            config.trace.clone(),
        ));
        JobQueue {
            cache,
            config,
            stats: Arc::new(StatsCells::default()),
        }
    }

    /// A queue sharing an existing cache (e.g. with other queues or
    /// with direct [`Session::compile_cached`] users).
    pub fn with_cache(cache: Arc<PreparedCache>, config: QueueConfig) -> Self {
        JobQueue {
            cache,
            config,
            stats: Arc::new(StatsCells::default()),
        }
    }

    /// The shared compile cache.
    pub fn cache(&self) -> &Arc<PreparedCache> {
        &self.cache
    }

    /// Compile-cache effectiveness counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Fault-tolerance counters accumulated over this queue's life.
    pub fn stats(&self) -> QueueStats {
        self.stats.snapshot()
    }

    /// Runs a batch of jobs across the worker pool, returning one
    /// report per job in submission order.
    ///
    /// Workers claim jobs through an atomic cursor (work stealing), so
    /// a slow transient does not serialize the queue behind it. This
    /// call never fails as a whole: per-job errors come back as typed
    /// failures inside the reports, a panicking job as a typed
    /// [`JobError::WorkerPanic`], and — when
    /// [`QueueConfig::capacity`] bounds the batch — overflow jobs as
    /// typed [`JobError::Shed`] reports, still in submission order.
    pub fn run(&self, jobs: Vec<JobRequest>) -> Vec<JobReport> {
        let n = jobs.len();
        let tr = self.config.trace.tracer();
        let span = tr.span("serve.batch");
        let capacity = self.config.capacity;
        let (run_idx, shed_idx): (Vec<usize>, Vec<usize>) = if capacity > 0 && n > capacity {
            match self.config.shed_policy {
                ShedPolicy::RejectNewest => ((0..capacity).collect(), (capacity..n).collect()),
                ShedPolicy::RejectOldest => {
                    (((n - capacity)..n).collect(), (0..n - capacity).collect())
                }
            }
        } else {
            ((0..n).collect(), Vec::new())
        };
        // Count only admitted jobs, matching `RunningQueue::submit`:
        // shed jobs land in `QueueStats::shed`, never in `submitted`.
        self.stats
            .submitted
            .fetch_add(run_idx.len() as u64, Ordering::Relaxed);
        let mut slots: Vec<Option<JobReport>> = (0..n).map(|_| None).collect();
        for &i in &shed_idx {
            tr.counter("serve.shed", 1.0);
            StatsCells::bump(&self.stats.shed);
            slots[i] = Some(JobReport {
                index: i,
                label: jobs[i].label.clone(),
                outcome: Err(JobError::Shed { capacity }),
                cache_hit: false,
                attempts: Vec::new(),
            });
        }
        let ran: Vec<JobReport> = sample_pool_map(
            self.config.threads,
            run_idx.len(),
            1,
            |_| HashMap::new(),
            |sessions, k| self.run_one_with(run_idx[k], &jobs[run_idx[k]], sessions),
        );
        for r in ran {
            let i = r.index;
            slots[i] = Some(r);
        }
        // Every slot was filled above (shed or ran); flatten keeps
        // submission order.
        let reports: Vec<JobReport> = slots.into_iter().flatten().collect();
        debug_assert_eq!(reports.len(), n, "exactly one report per job");
        tr.counter("serve.jobs", n as f64);
        tr.counter(
            "serve.failed",
            reports.iter().filter(|r| !r.is_ok()).count() as f64,
        );
        span.end();
        reports
    }

    /// Runs one job synchronously on the caller's thread (still
    /// through the shared cache, supervision, and retry policy).
    pub fn run_one(&self, index: usize, job: &JobRequest) -> JobReport {
        StatsCells::bump(&self.stats.submitted);
        self.run_one_with(index, job, &mut HashMap::new())
    }

    /// Starts persistent workers over this queue, returning a handle
    /// that accepts [`RunningQueue::submit`] until
    /// [`RunningQueue::shutdown_and_drain`].
    pub fn start(self) -> RunningQueue {
        RunningQueue::spawn(self)
    }

    /// One job, supervised and retried per the queue's [`RetryPolicy`],
    /// against a worker-local session pool keyed by deck content so
    /// consecutive jobs on one deck keep the session's warmed Newton
    /// workspace alongside the cache's operating-point hint.
    fn run_one_with(
        &self,
        index: usize,
        job: &JobRequest,
        sessions: &mut HashMap<DeckKey, Session>,
    ) -> JobReport {
        let max_attempts = self.config.retry.max_attempts.max(1);
        let mut attempts: Vec<AttemptRecord> = Vec::new();
        let mut escalations = 0u32;
        for attempt in 1..=max_attempts {
            let backoff_ms = self.config.retry.backoff_ms(index as u64, attempt as u64);
            if backoff_ms > 0 {
                std::thread::sleep(Duration::from_millis(backoff_ms));
            }
            // UnwindSafe audit for the supervision boundary. Mutable
            // state crossing it: (a) the worker's parked-session map —
            // the in-use session was already checked *out* of it, and
            // on a panic the whole map is discarded below, so no
            // half-updated workspace survives; (b) the shared
            // `PreparedCache` — its mutexes only guard short clone /
            // bookkeeping sections that run no model code, and a panic
            // inside `OnceLock::get_or_init` leaves the cell empty,
            // not poisoned; (c) trace sinks, which do their own
            // locking. Hence `AssertUnwindSafe` is sound here.
            let caught = if self.config.supervise {
                catch_unwind(AssertUnwindSafe(|| {
                    self.attempt_job(job, sessions, escalations)
                }))
            } else {
                Ok(self.attempt_job(job, sessions, escalations))
            };
            let tr = self.config.trace.tracer();
            let a = match caught {
                Err(payload) => {
                    // Worker recycle: parked sessions may have been
                    // mid-mutation when the panic unwound; drop them all
                    // and let later jobs check out fresh ones.
                    sessions.clear();
                    tr.counter("serve.panic_recovered", 1.0);
                    StatsCells::bump(&self.stats.panics_recovered);
                    let payload = panic_message(payload);
                    attempts.push(AttemptRecord {
                        attempt,
                        escalated: escalations > 0,
                        backoff_ms,
                        outcome: format!("panic: {payload}"),
                    });
                    tr.counter("job.failed", 1.0);
                    StatsCells::bump(&self.stats.failed);
                    return JobReport {
                        index,
                        label: job.label.clone(),
                        outcome: Err(JobError::WorkerPanic {
                            payload,
                            job_id: index,
                        }),
                        cache_hit: false,
                        attempts,
                    };
                }
                Ok(a) => a,
            };
            if deadline_tripped(&a.outcome) {
                tr.counter("serve.deadline_exceeded", 1.0);
                StatsCells::bump(&self.stats.deadline_exceeded);
            }
            match a.outcome {
                Ok(out) => {
                    if !attempts.is_empty() {
                        attempts.push(AttemptRecord {
                            attempt,
                            escalated: escalations > 0,
                            backoff_ms,
                            outcome: "ok".to_string(),
                        });
                    }
                    tr.counter("job.done", 1.0);
                    StatsCells::bump(&self.stats.completed);
                    return JobReport {
                        index,
                        label: job.label.clone(),
                        outcome: Ok(out),
                        cache_hit: a.cache_hit,
                        attempts,
                    };
                }
                Err(e) => {
                    // Cancellation observed between attempts wins over
                    // the retry schedule: a cancelled job must not keep
                    // burning attempts (and must still yield exactly
                    // one report).
                    let will_retry = attempt < max_attempts
                        && self.config.retry.retryable(&e)
                        && !job.options.cancel.cancelled();
                    attempts.push(AttemptRecord {
                        attempt,
                        escalated: escalations > 0,
                        backoff_ms,
                        outcome: e.to_string(),
                    });
                    if will_retry {
                        if self.config.retry.escalate
                            && matches!(e, SpiceError::NoConvergence { .. })
                        {
                            escalations += 1;
                        }
                        // Heal a possibly poisoned warm start: the next
                        // attempt cold-starts rather than re-reading
                        // the hint that may have killed this one.
                        if let Some(deck) = &a.deck {
                            deck.clear_op_hint();
                        }
                        tr.counter("serve.retries", 1.0);
                        StatsCells::bump(&self.stats.retries);
                        continue;
                    }
                    tr.counter("job.failed", 1.0);
                    StatsCells::bump(&self.stats.failed);
                    return JobReport {
                        index,
                        label: job.label.clone(),
                        outcome: Err(JobError::Sim(SampleFailure::new(
                            index,
                            job.label.clone(),
                            e,
                        ))),
                        cache_hit: a.cache_hit,
                        attempts,
                    };
                }
            }
        }
        unreachable!("retry loop returns on every attempt outcome")
    }

    /// One unsupervised attempt: parse, compile through the shared
    /// cache, run the analysis on a checked-out session.
    fn attempt_job(
        &self,
        job: &JobRequest,
        sessions: &mut HashMap<DeckKey, Session>,
        escalations: u32,
    ) -> AttemptOutcome {
        let fail = |e: SpiceError| AttemptOutcome {
            outcome: Err(e),
            cache_hit: false,
            deck: None,
        };
        let parsed;
        let circuit: &Circuit = match &job.deck {
            DeckSource::Circuit(c) => c,
            DeckSource::Netlist(text) => match parse_netlist(text) {
                Ok(c) => {
                    parsed = c;
                    &parsed
                }
                Err(e) => return fail(e),
            },
        };
        let options = if escalations > 0 {
            // Escalated retry: the full continuation ladder plus a
            // doubled (per level) Newton allowance.
            job.options
                .clone()
                .ladder(LadderConfig::default())
                .max_newton(
                    job.options
                        .max_newton
                        .saturating_mul(1 << escalations.min(4)),
                )
        } else {
            job.options.clone()
        };
        let deck = match self.cache.get_or_compile(circuit, options.lint) {
            Ok(d) => d,
            Err(e) => return fail(e),
        };
        let cache_hit = deck.was_hit();
        // Check out this worker's parked session for the deck (fresh if
        // none); the job's own options always replace whatever the
        // previous job left installed.
        let key = deck.key();
        let mut sess = match sessions.remove(&key) {
            Some(s) => s.with_options(options.clone()),
            None => Session::from_arc(deck.prepared_arc()).with_options(options.clone()),
        };
        let warm = deck.op_hint();
        // Solve the implicit operating point once for the specs that
        // need one, warm-started from the deck's last converged
        // solution; park the fresh solution back on the cache entry.
        let op_for = |sess: &Session| {
            let r = sess.op_from(warm.as_deref())?;
            deck.store_op_hint(r.x());
            Ok::<_, SpiceError>(r)
        };
        let outcome = match &job.spec {
            JobSpec::Op => op_for(&sess).map(JobOutput::Op),
            JobSpec::Dc { source, values } => sess.dc(source, values).map(JobOutput::Dc),
            JobSpec::Ac { freqs } => op_for(&sess)
                .and_then(|r| sess.ac(r.x(), freqs))
                .map(JobOutput::Ac),
            JobSpec::Noise { output, freqs } => match sess.prepared().circuit.find_node(output) {
                None => Err(SpiceError::Netlist(format!("no node named {output}"))),
                Some(node) => op_for(&sess)
                    .and_then(|r| sess.noise(r.x(), node, freqs))
                    .map(JobOutput::Noise),
            },
            JobSpec::Tran(params) => sess.tran(params).map(JobOutput::Tran),
            JobSpec::Pss(params) => sess.pss(params).map(JobOutput::Pss),
        };
        // Park the session for the worker's next job on this deck. A DC
        // sweep copies the shared deck on write, so its session is
        // dropped rather than parked with a diverged copy; the pool is
        // bounded so a worker churning through many decks cannot hoard
        // memory.
        if !matches!(job.spec, JobSpec::Dc { .. }) && sessions.len() < MAX_PARKED_SESSIONS {
            sessions.insert(key, sess);
        }
        AttemptOutcome {
            outcome,
            cache_hit,
            deck: Some(deck),
        }
    }
}

/// Mutable queue state shared between submitters and workers.
struct QueueState {
    pending: VecDeque<(usize, JobRequest)>,
    accepting: bool,
    /// Cancellation handles of jobs currently executing, so a drain
    /// deadline can stop them cooperatively.
    in_flight: Vec<(usize, ahfic_spice::analysis::CancelHandle)>,
    reports: Vec<JobReport>,
    next_id: usize,
}

struct QueueShared {
    queue: JobQueue,
    state: Mutex<QueueState>,
    cv: Condvar,
}

/// A [`JobQueue`] with persistent workers: submit jobs one at a time,
/// then drain.
///
/// Admission control applies at [`RunningQueue::submit`]: a full queue
/// sheds per the [`ShedPolicy`] — `RejectNewest` returns the typed
/// [`JobError::Shed`] to the submitter (no report is queued),
/// `RejectOldest` drops the oldest pending job, whose shed *report*
/// surfaces in the drain output. Every job accepted into the queue
/// yields exactly one report.
///
/// ```
/// use ahfic_serve::{JobQueue, JobRequest, JobSpec, QueueConfig};
/// use ahfic_spice::circuit::Circuit;
/// use std::time::Duration;
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.vsource("V1", a, Circuit::gnd(), 2.0);
/// ckt.resistor("R1", a, Circuit::gnd(), 1e3);
///
/// let running = JobQueue::new(QueueConfig::new().threads(2)).start();
/// for i in 0..4 {
///     running
///         .submit(JobRequest::new(ckt.clone(), JobSpec::Op).label(format!("job {i}")))
///         .unwrap();
/// }
/// let reports = running.shutdown_and_drain(Duration::from_secs(30));
/// assert_eq!(reports.len(), 4);
/// assert!(reports.iter().all(|r| r.is_ok()));
/// ```
pub struct RunningQueue {
    shared: Arc<QueueShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl RunningQueue {
    fn spawn(queue: JobQueue) -> Self {
        let threads = match queue.config.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            t => t,
        };
        let shared = Arc::new(QueueShared {
            queue,
            state: Mutex::new(QueueState {
                pending: VecDeque::new(),
                accepting: true,
                in_flight: Vec::new(),
                reports: Vec::new(),
                next_id: 0,
            }),
            cv: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker_loop(&shared))
            })
            .collect();
        RunningQueue { shared, workers }
    }

    // A poisoned state mutex means a worker panicked *outside* the
    // supervised job body (a queue bug, not a job fault); propagating
    // that panic is the correct fail-fast.
    #[allow(clippy::expect_used)]
    fn lock(shared: &QueueShared) -> std::sync::MutexGuard<'_, QueueState> {
        shared.state.lock().expect("queue state poisoned")
    }

    fn worker_loop(shared: &QueueShared) {
        let mut sessions: HashMap<DeckKey, Session> = HashMap::new();
        loop {
            let (id, job) = {
                let mut st = Self::lock(shared);
                loop {
                    if let Some((id, mut job)) = st.pending.pop_front() {
                        // Every in-flight job must be cancellable so a
                        // drain deadline can reach it; install a token
                        // when the submitter didn't. The in-flight
                        // registration happens in the same critical
                        // section as the pop: a gap between them would
                        // let `shutdown_and_drain` observe pending and
                        // in_flight both empty, take the reports, and
                        // lose this job's (or let its cancel sweep miss
                        // the job entirely).
                        if !job.options.cancel.enabled() {
                            let token = CancelToken::new();
                            job.options = job.options.clone().cancel_token(&token);
                        }
                        st.in_flight.push((id, job.options.cancel.clone()));
                        break (id, job);
                    }
                    if !st.accepting {
                        return;
                    }
                    // Lost wakeups are the classic drain hang; wait on
                    // the shared condvar that submit/shutdown notify.
                    #[allow(clippy::expect_used)]
                    {
                        st = shared.cv.wait(st).expect("queue state poisoned");
                    }
                }
            };
            let report = shared.queue.run_one_with(id, &job, &mut sessions);
            {
                let mut st = Self::lock(shared);
                st.in_flight.retain(|(i, _)| *i != id);
                st.reports.push(report);
            }
            shared.cv.notify_all();
        }
    }

    /// The underlying queue (cache, stats).
    pub fn queue(&self) -> &JobQueue {
        &self.shared.queue
    }

    /// Fault-tolerance counters accumulated so far.
    pub fn stats(&self) -> QueueStats {
        self.shared.queue.stats()
    }

    /// Submits one job, returning its id (the `index` of its eventual
    /// report).
    ///
    /// # Errors
    ///
    /// [`JobError::Shed`] when the queue is full under
    /// [`ShedPolicy::RejectNewest`] or has stopped accepting.
    pub fn submit(&self, job: JobRequest) -> Result<usize, JobError> {
        let shared = &self.shared;
        let capacity = shared.queue.config.capacity;
        let tr = shared.queue.config.trace.tracer();
        let mut st = Self::lock(shared);
        if !st.accepting {
            tr.counter("serve.shed", 1.0);
            StatsCells::bump(&shared.queue.stats.shed);
            return Err(JobError::Shed { capacity });
        }
        if capacity > 0 && st.pending.len() >= capacity {
            match shared.queue.config.shed_policy {
                ShedPolicy::RejectNewest => {
                    tr.counter("serve.shed", 1.0);
                    StatsCells::bump(&shared.queue.stats.shed);
                    return Err(JobError::Shed { capacity });
                }
                ShedPolicy::RejectOldest => {
                    if let Some((old_id, old_job)) = st.pending.pop_front() {
                        tr.counter("serve.shed", 1.0);
                        StatsCells::bump(&shared.queue.stats.shed);
                        st.reports.push(JobReport {
                            index: old_id,
                            label: old_job.label,
                            outcome: Err(JobError::Shed { capacity }),
                            cache_hit: false,
                            attempts: Vec::new(),
                        });
                    }
                }
            }
        }
        let id = st.next_id;
        st.next_id += 1;
        StatsCells::bump(&shared.queue.stats.submitted);
        st.pending.push_back((id, job));
        drop(st);
        shared.cv.notify_one();
        Ok(id)
    }

    /// Stops admissions, waits up to `deadline` for pending and
    /// in-flight jobs to finish, then sheds what is still pending and
    /// cancels what is still running (each in-flight job stops at its
    /// next solver boundary and still reports). Returns every accepted
    /// job's report in submission order — exactly one per job.
    pub fn shutdown_and_drain(mut self, deadline: Duration) -> Vec<JobReport> {
        let shared = Arc::clone(&self.shared);
        let tr = shared.queue.config.trace.tracer();
        let deadline_at = Instant::now() + deadline;
        {
            let mut st = Self::lock(&shared);
            st.accepting = false;
        }
        shared.cv.notify_all();
        let mut st = Self::lock(&shared);
        loop {
            if st.pending.is_empty() && st.in_flight.is_empty() {
                break;
            }
            let now = Instant::now();
            if now >= deadline_at {
                // Past the drain deadline: shed everything still
                // pending (typed report each), cancel everything
                // in-flight, and wait for the cancellations to land —
                // cooperative cancellation stops within one solver
                // boundary, so this tail is short.
                let capacity = shared.queue.config.capacity;
                while let Some((id, job)) = st.pending.pop_front() {
                    tr.counter("serve.shed", 1.0);
                    StatsCells::bump(&shared.queue.stats.shed);
                    st.reports.push(JobReport {
                        index: id,
                        label: job.label,
                        outcome: Err(JobError::Shed { capacity }),
                        cache_hit: false,
                        attempts: Vec::new(),
                    });
                }
                for (_, handle) in &st.in_flight {
                    handle.cancel();
                }
                shared.cv.notify_all();
                while !st.in_flight.is_empty() {
                    #[allow(clippy::expect_used)]
                    {
                        st = shared.cv.wait(st).expect("queue state poisoned");
                    }
                }
                break;
            }
            #[allow(clippy::expect_used)]
            {
                let (guard, _) = shared
                    .cv
                    .wait_timeout(st, deadline_at - now)
                    .expect("queue state poisoned");
                st = guard;
            }
        }
        let mut reports = std::mem::take(&mut st.reports);
        drop(st);
        shared.cv.notify_all();
        for w in self.workers.drain(..) {
            // A worker that panicked outside the supervised job body is
            // a queue bug; surface it instead of returning silently
            // truncated results.
            #[allow(clippy::expect_used)]
            w.join().expect("queue worker panicked outside supervision");
        }
        reports.sort_by_key(|r| r.index);
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahfic_spice::analysis::{Budget, CancelToken, FaultInjector, FaultKind};
    use ahfic_trace::InMemorySink;

    fn divider(r2: f64) -> Circuit {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), 2.0);
        c.resistor("R1", a, b, 1e3);
        c.resistor("R2", b, Circuit::gnd(), r2);
        c
    }

    fn rc_tran_deck() -> Circuit {
        let mut c = Circuit::new();
        let a = c.node("a");
        let out = c.node("out");
        c.vsource_wave(
            "V1",
            a,
            Circuit::gnd(),
            ahfic_spice::wave::SourceWave::Sin {
                offset: 0.0,
                ampl: 1.0,
                freq: 1e6,
                delay: 0.0,
                damping: 0.0,
                phase_deg: 0.0,
            },
        );
        c.resistor("R1", a, out, 1e3);
        c.capacitor("C1", out, Circuit::gnd(), 1e-9);
        c
    }

    #[test]
    fn batch_shares_one_compile_and_keeps_order() {
        let queue = JobQueue::new(QueueConfig::new().threads(4));
        let jobs: Vec<JobRequest> = (0..16)
            .map(|i| JobRequest::new(divider(1e3), JobSpec::Op).label(format!("j{i}")))
            .collect();
        let reports = queue.run(jobs);
        assert_eq!(reports.len(), 16);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(r.label(), format!("j{i}"));
            assert!(r.is_ok(), "{:?}", r.outcome);
            assert!(r.attempts().is_empty(), "clean first attempt, no history");
        }
        assert_eq!(queue.cache_stats().compiles(), 1);
        assert!(reports.iter().filter(|r| r.cache_hit()).count() >= 15);
        let stats = queue.stats();
        assert_eq!(stats.submitted, 16);
        assert_eq!(stats.completed, 16);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn netlist_in_typed_results_out() {
        let good = "* divider\nV1 a 0 2.0\nR1 a b 1k\nR2 b 0 1k\n.end\n";
        let bad = "* broken\nR1 a b notanumber\n.end\n";
        let queue = JobQueue::new(QueueConfig::new().threads(1));
        let reports = queue.run(vec![
            JobRequest::new(good, JobSpec::Op).label("good"),
            JobRequest::new(bad, JobSpec::Op).label("bad"),
        ]);
        assert!(reports[0].is_ok());
        let failure = reports[1].outcome().as_ref().unwrap_err().sim().unwrap();
        assert_eq!(failure.index, 1);
        assert_eq!(failure.label, "bad");
    }

    #[test]
    fn mixed_specs_return_matching_outputs() {
        let queue = JobQueue::new(QueueConfig::new().threads(2));
        let reports = queue.run(vec![
            JobRequest::new(divider(1e3), JobSpec::Op),
            JobRequest::new(
                divider(1e3),
                JobSpec::Dc {
                    source: "V1".into(),
                    values: vec![1.0, 2.0, 3.0],
                },
            ),
            JobRequest::new(rc_tran_deck(), JobSpec::Tran(TranParams::new(2e-6, 10e-9))),
        ]);
        assert!(matches!(
            reports[0].outcome().as_ref().unwrap(),
            JobOutput::Op(_)
        ));
        match reports[1].outcome().as_ref().unwrap() {
            JobOutput::Dc(w) => assert_eq!(w.len(), 3),
            other => panic!("expected Dc, got {other:?}"),
        }
        let t = reports[2].outcome().as_ref().unwrap().as_tran().unwrap();
        assert!(t.is_complete());
    }

    #[test]
    fn cancelled_job_degrades_to_typed_partial() {
        let token = CancelToken::new();
        token.cancel();
        let queue = JobQueue::new(QueueConfig::new().threads(1));
        // `with_uic` skips the initial operating point, so the
        // pre-cancelled token is seen at the first timestep boundary
        // and the job degrades to a typed partial instead of an error.
        let reports = queue.run(vec![JobRequest::new(
            rc_tran_deck(),
            JobSpec::Tran(TranParams::new(2e-6, 10e-9).with_uic()),
        )
        .options(Options::new().cancel_token(&token))]);
        let t = reports[0].outcome().as_ref().unwrap().as_tran().unwrap();
        assert!(
            matches!(t.status(), TranStatus::Cancelled { .. }),
            "{:?}",
            t.status()
        );
    }

    #[test]
    fn pss_job_returns_converged_orbit() {
        let queue = JobQueue::new(QueueConfig::new().threads(1));
        let reports = queue.run(vec![JobRequest::new(
            rc_tran_deck(),
            JobSpec::Pss(PssParams::new(1e-6, 64)),
        )
        .label("pss")]);
        let p = reports[0].outcome().as_ref().unwrap().as_pss().unwrap();
        assert!(p.is_converged(), "{:?}", p.status());
        assert!(p.wave().len() >= 65);
    }

    #[test]
    fn cancelled_pss_job_degrades_to_typed_partial() {
        use ahfic_spice::analysis::PssStatus;
        let token = CancelToken::new();
        token.cancel();
        let queue = JobQueue::new(QueueConfig::new().threads(1));
        let reports = queue.run(vec![JobRequest::new(
            rc_tran_deck(),
            JobSpec::Pss(PssParams::new(1e-6, 64).warmup_periods(0)),
        )
        .options(Options::new().cancel_token(&token))]);
        // The pre-cancelled token is seen either at the initial
        // operating point (typed failure) or at the first shooting
        // boundary (typed partial); both are acceptable degradations,
        // a panic or a bogus "converged" is not.
        match reports[0].outcome() {
            Ok(out) => {
                let p = out.as_pss().unwrap();
                assert!(
                    matches!(p.status(), PssStatus::Cancelled { .. }),
                    "{:?}",
                    p.status()
                );
            }
            Err(f) => assert!(f.error().unwrap().is_abort(), "{f:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_is_a_typed_failure_for_op() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, Circuit::gnd(), 0.7);
        let dm = c.add_diode_model(ahfic_spice::model::DiodeModel::default());
        c.diode("D1", a, Circuit::gnd(), dm, 1.0);
        let queue = JobQueue::new(QueueConfig::new().threads(1));
        let reports = queue.run(vec![JobRequest::new(c, JobSpec::Op)
            .label("starved")
            .options(
                Options::new()
                    .max_newton(1)
                    .budget(Budget::unlimited().max_newton(1)),
            )]);
        let failure = reports[0].outcome().as_ref().unwrap_err();
        assert!(failure.error().unwrap().is_abort(), "{failure:?}");
    }

    #[test]
    fn queue_trace_counts_jobs() {
        let sink = Arc::new(InMemorySink::new());
        let queue = JobQueue::new(QueueConfig::new().threads(1).trace(TraceHandle::new(&sink)));
        queue.run(vec![
            JobRequest::new(divider(1e3), JobSpec::Op),
            JobRequest::new("R1 a b notanumber\n", JobSpec::Op),
        ]);
        let recs = sink.records();
        let total = |name: &str| {
            recs.iter()
                .filter(|r| r.name == name)
                .map(|r| r.value)
                .sum::<f64>()
        };
        assert_eq!(total("job.done"), 1.0);
        assert_eq!(total("job.failed"), 1.0);
        assert_eq!(total("serve.jobs"), 2.0);
        // The cache reports through the same handle.
        assert_eq!(total("cache.miss"), 1.0);
    }

    #[test]
    fn warm_start_hint_cuts_second_job_iterations() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, Circuit::gnd(), 0.75);
        let dm = c.add_diode_model(ahfic_spice::model::DiodeModel::default());
        c.diode("D1", a, Circuit::gnd(), dm, 1.0);
        c.resistor("R1", a, Circuit::gnd(), 10e3);
        let queue = JobQueue::new(QueueConfig::new().threads(1));
        let first = queue.run_one(0, &JobRequest::new(c.clone(), JobSpec::Op));
        let second = queue.run_one(1, &JobRequest::new(c, JobSpec::Op));
        let iters = |r: &JobReport| r.outcome().as_ref().unwrap().as_op().unwrap().iterations();
        assert!(
            iters(&second) <= iters(&first),
            "warm start must not cost iterations: {} vs {}",
            iters(&second),
            iters(&first)
        );
    }

    #[test]
    fn worker_panic_becomes_typed_report_and_queue_drains() {
        let sink = Arc::new(InMemorySink::new());
        let queue = JobQueue::new(QueueConfig::new().threads(2).trace(TraceHandle::new(&sink)));
        let inj = FaultInjector::once(FaultKind::Panic, 0, 1);
        let mut jobs: Vec<JobRequest> = (0..8)
            .map(|i| JobRequest::new(divider(1e3), JobSpec::Op).label(format!("j{i}")))
            .collect();
        jobs[3] = JobRequest::new(divider(1e3), JobSpec::Op)
            .label("boom")
            .options(Options::new().fault_injector(&inj));
        let reports = queue.run(jobs);
        assert_eq!(reports.len(), 8, "queue drains past the panic");
        for (i, r) in reports.iter().enumerate() {
            if i == 3 {
                match r.outcome().as_ref().unwrap_err() {
                    JobError::WorkerPanic { payload, job_id } => {
                        assert_eq!(*job_id, 3);
                        assert!(payload.contains("injected fault"), "{payload}");
                    }
                    other => panic!("expected WorkerPanic, got {other:?}"),
                }
            } else {
                assert!(r.is_ok(), "job {i}: {:?}", r.outcome);
            }
        }
        let stats = queue.stats();
        assert_eq!(stats.panics_recovered, 1);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 7);
        let total: f64 = sink
            .records()
            .iter()
            .filter(|r| r.name == "serve.panic_recovered")
            .map(|r| r.value)
            .sum();
        assert_eq!(total, 1.0);
    }

    #[test]
    fn retry_escalates_injected_nonconvergence() {
        let sink = Arc::new(InMemorySink::new());
        let queue = JobQueue::new(
            QueueConfig::new()
                .threads(1)
                .retry(RetryPolicy::attempts(2))
                .trace(TraceHandle::new(&sink)),
        );
        // With the continuation ladder disabled, a single injected
        // non-convergence fails the whole first attempt; the fault has
        // spent its one fire by the retry, which runs escalated (full
        // ladder restored) and succeeds.
        let inj = FaultInjector::once(FaultKind::NoConvergence, 0, 1);
        let reports = queue.run(vec![JobRequest::new(divider(1e3), JobSpec::Op)
            .label("flaky")
            .options(Options::new().fault_injector(&inj).ladder(LadderConfig {
                damping: false,
                gmin_stepping: false,
                source_stepping: false,
                ptran: false,
            }))]);
        assert!(reports[0].is_ok(), "{:?}", reports[0].outcome);
        let attempts = reports[0].attempts();
        assert_eq!(attempts.len(), 2, "{attempts:?}");
        assert!(!attempts[0].escalated);
        assert!(attempts[1].escalated, "retry must run escalated");
        assert_eq!(attempts[1].outcome, "ok");
        assert_eq!(queue.stats().retries, 1);
        let total: f64 = sink
            .records()
            .iter()
            .filter(|r| r.name == "serve.retries")
            .map(|r| r.value)
            .sum();
        assert_eq!(total, 1.0);
    }

    #[test]
    fn retry_policy_backoff_is_deterministic_and_seeded() {
        let p = RetryPolicy::attempts(4).backoff_base_ms(8).seed(42);
        assert_eq!(p.backoff_ms(0, 1), 0, "first attempt never sleeps");
        let a = p.backoff_ms(3, 2);
        assert_eq!(a, p.backoff_ms(3, 2), "same job+attempt, same backoff");
        assert!((8..16).contains(&a), "base + jitter window: {a}");
        let b = p.backoff_ms(3, 3);
        assert!((16..24).contains(&b), "exponential growth: {b}");
        let other_seed = RetryPolicy::attempts(4).backoff_base_ms(8).seed(43);
        assert!(
            (2..=16).any(|j| p.backoff_ms(j, 2) != other_seed.backoff_ms(j, 2)),
            "different seeds must eventually jitter differently"
        );
        assert_eq!(
            RetryPolicy::default().backoff_ms(0, 2),
            0,
            "zero base disables sleeping"
        );
    }

    #[test]
    fn batch_sheds_beyond_capacity_in_submission_order() {
        let queue = JobQueue::new(QueueConfig::new().threads(1).capacity(2));
        let jobs: Vec<JobRequest> = (0..5)
            .map(|i| JobRequest::new(divider(1e3), JobSpec::Op).label(format!("j{i}")))
            .collect();
        let reports = queue.run(jobs);
        assert_eq!(reports.len(), 5, "one report per job, shed included");
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.index(), i);
            if i < 2 {
                assert!(r.is_ok(), "{:?}", r.outcome);
            } else {
                assert!(
                    matches!(
                        r.outcome().as_ref().unwrap_err(),
                        JobError::Shed { capacity: 2 }
                    ),
                    "{:?}",
                    r.outcome
                );
            }
        }
        assert_eq!(queue.stats().shed, 3);

        // RejectOldest keeps the tail instead.
        let queue = JobQueue::new(
            QueueConfig::new()
                .threads(1)
                .capacity(2)
                .shed_policy(ShedPolicy::RejectOldest),
        );
        let jobs: Vec<JobRequest> = (0..5)
            .map(|i| JobRequest::new(divider(1e3), JobSpec::Op).label(format!("j{i}")))
            .collect();
        let reports = queue.run(jobs);
        assert!(reports[0].outcome().as_ref().unwrap_err().is_shed());
        assert!(reports[4].is_ok());
    }

    #[test]
    fn running_queue_submits_and_drains_in_order() {
        let queue = JobQueue::new(QueueConfig::new().threads(2));
        let running = queue.start();
        for i in 0..12 {
            let id = running
                .submit(JobRequest::new(divider(1e3), JobSpec::Op).label(format!("j{i}")))
                .unwrap();
            assert_eq!(id, i);
        }
        let reports = running.shutdown_and_drain(Duration::from_secs(60));
        assert_eq!(reports.len(), 12);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.index(), i, "drain returns submission order");
            assert!(r.is_ok(), "{:?}", r.outcome);
        }
    }

    #[test]
    fn running_queue_sheds_when_full_and_after_shutdown() {
        // threads(1) and a slow-ish first job would be racy; instead
        // rely on capacity vs a burst of submissions before workers can
        // drain: use capacity 1 and check the policy is enforced at
        // submit time by filling the queue while workers are busy.
        let queue = JobQueue::new(QueueConfig::new().threads(1).capacity(1));
        let running = queue.start();
        let mut accepted = 0usize;
        let mut shed = 0usize;
        for i in 0..64 {
            match running.submit(JobRequest::new(divider(1e3), JobSpec::Op).label(format!("j{i}")))
            {
                Ok(_) => accepted += 1,
                Err(e) => {
                    assert!(e.is_shed(), "{e:?}");
                    shed += 1;
                }
            }
        }
        assert_eq!(accepted + shed, 64);
        let reports = running.shutdown_and_drain(Duration::from_secs(60));
        assert_eq!(
            reports.len(),
            accepted,
            "exactly one report per accepted job"
        );

        let running = JobQueue::new(QueueConfig::new().threads(1)).start();
        let drained = running.shutdown_and_drain(Duration::from_secs(5));
        assert!(drained.is_empty());
    }

    #[test]
    fn wall_deadline_degrades_op_to_typed_failure() {
        let sink = Arc::new(InMemorySink::new());
        let queue = JobQueue::new(QueueConfig::new().threads(1).trace(TraceHandle::new(&sink)));
        let inj = FaultInjector::recurring(FaultKind::Stall { millis: 20 }, 0, 1);
        let reports =
            queue.run(vec![JobRequest::new(divider(1e3), JobSpec::Op)
                .label("stalled")
                .options(Options::new().fault_injector(&inj).budget(
                    Budget::unlimited().max_wall(Duration::from_millis(1)),
                ))]);
        let failure = reports[0].outcome().as_ref().unwrap_err();
        match failure.error().unwrap() {
            SpiceError::BudgetExhausted { resource, .. } => {
                assert_eq!(*resource, "wall_clock_ms");
            }
            other => panic!("expected wall-clock BudgetExhausted, got {other:?}"),
        }
        assert_eq!(queue.stats().deadline_exceeded, 1);
        let total: f64 = sink
            .records()
            .iter()
            .filter(|r| r.name == "serve.deadline_exceeded")
            .map(|r| r.value)
            .sum();
        assert_eq!(total, 1.0);
    }
}
