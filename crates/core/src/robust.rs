//! Shared failure-recording types for batch studies that degrade
//! gracefully.
//!
//! Monte-Carlo yield runs, characterization batches and mixed-level
//! sweeps all share the same robustness contract: a solver failure on
//! one sample is recorded and the run continues, instead of the first
//! hard-start aborting hundreds of healthy samples. These types carry
//! what failed and why, so reports can show failure counts next to the
//! statistics computed over the samples that did converge.

use ahfic_spice::error::SpiceError;
use std::fmt;

/// One failed sample (or sweep point) of a batch study.
#[derive(Clone, Debug, PartialEq)]
pub struct SampleFailure {
    /// Zero-based index of the sample in draw/sweep order.
    pub index: usize,
    /// What the sample was (mismatch value, sweep point, bench name).
    pub label: String,
    /// The typed solver error that killed it.
    pub error: SpiceError,
}

impl SampleFailure {
    /// Builds a failure record.
    pub fn new(index: usize, label: impl Into<String>, error: SpiceError) -> Self {
        SampleFailure {
            index,
            label: label.into(),
            error,
        }
    }
}

impl fmt::Display for SampleFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sample {} ({}): {}", self.index, self.label, self.error)
    }
}

/// Summarizes a failure list for error messages: total count plus the
/// first failure's detail.
pub(crate) fn all_failed_error(what: &str, failures: &[SampleFailure]) -> SpiceError {
    let first = failures
        .first()
        .map(|f| f.to_string())
        .unwrap_or_else(|| "no samples attempted".into());
    SpiceError::Measure(format!(
        "all {} {what} failed; first failure: {first}",
        failures.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_index_label_and_error() {
        let f = SampleFailure::new(
            7,
            "mismatch +0.12",
            SpiceError::NoConvergence {
                analysis: "op",
                iterations: 400,
                time: None,
                report: None,
            },
        );
        let s = f.to_string();
        assert!(s.contains("sample 7"), "{s}");
        assert!(s.contains("mismatch +0.12"), "{s}");
        assert!(s.contains("failed to converge"), "{s}");
    }

    #[test]
    fn all_failed_summary_counts_and_quotes_first() {
        let failures = vec![
            SampleFailure::new(0, "a", SpiceError::Netlist("x".into())),
            SampleFailure::new(1, "b", SpiceError::Netlist("y".into())),
        ];
        let e = all_failed_error("samples", &failures);
        let s = e.to_string();
        assert!(s.contains("all 2 samples failed"), "{s}");
        assert!(s.contains("sample 0"), "{s}");
    }
}
