//! Transistor-level block characterization: run the SPICE view of a
//! block, extract its small-signal behaviour, and build a calibrated
//! behavioral model — the downward link of the top-down flow.

use ahfic_ahdl::block::Block;
use ahfic_ahdl::blocks::filter::FirstOrderLp;
use ahfic_num::interp::logspace;
use ahfic_spice::analysis::{Options, Session};
use ahfic_spice::error::{Result, SpiceError};
use ahfic_spice::measure::characterize as ac_characterize;
use ahfic_spice::parse::parse_netlist;

/// Description of the characterization test bench.
#[derive(Clone, Debug, PartialEq)]
pub struct CharacterizationBench {
    /// Complete SPICE netlist of the block plus bias/drive sources.
    pub netlist: String,
    /// Name of the independent source to excite (its AC spec is set to
    /// 1∠0°).
    pub input_source: String,
    /// Node whose voltage is the block output.
    pub output_node: String,
    /// Reference frequency for gain/phase (Hz).
    pub f_ref: f64,
    /// Upper edge of the AC sweep (Hz).
    pub f_max: f64,
    /// Points in the logarithmic sweep.
    pub points: usize,
}

impl CharacterizationBench {
    /// Standard bench: sweep `f_ref/100 … f_max` with 60 points.
    pub fn new(
        netlist: &str,
        input_source: &str,
        output_node: &str,
        f_ref: f64,
        f_max: f64,
    ) -> Self {
        CharacterizationBench {
            netlist: netlist.to_string(),
            input_source: input_source.to_string(),
            output_node: output_node.to_string(),
            f_ref,
            f_max,
            points: 60,
        }
    }
}

/// Extracted small-signal behaviour of a block.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockCharacterization {
    /// Gain magnitude at `f_ref`.
    pub gain: f64,
    /// Gain in dB.
    pub gain_db: f64,
    /// Phase at `f_ref` (degrees).
    pub phase_deg: f64,
    /// -3 dB bandwidth (Hz), when inside the sweep.
    pub bw_3db: Option<f64>,
    /// Reference frequency (Hz).
    pub f_ref: f64,
}

/// Runs OP + AC on the bench and extracts gain/phase/bandwidth.
///
/// # Errors
///
/// Propagates netlist/OP/AC errors; [`ahfic_spice::SpiceError::Measure`] when the
/// output node does not exist.
pub fn characterize(bench: &CharacterizationBench) -> Result<BlockCharacterization> {
    characterize_with(bench, &Options::default())
}

/// [`characterize`] with explicit analysis options — notably a
/// [`TraceHandle`](ahfic_trace::TraceHandle) — wrapping the whole
/// extraction in a `charac` span.
///
/// # Errors
///
/// As [`characterize`].
pub fn characterize_with(
    bench: &CharacterizationBench,
    opts: &Options,
) -> Result<BlockCharacterization> {
    let t = opts.trace.tracer();
    let span = t.span("charac");
    let mut ckt = parse_netlist(&bench.netlist)?;
    ckt.set_ac(&bench.input_source, 1.0, 0.0)?;
    if ckt.find_node(&bench.output_node).is_none() {
        return Err(SpiceError::Measure(format!(
            "no node named {} in bench netlist",
            bench.output_node
        )));
    }
    let sess = Session::compile(&ckt)?.with_options(opts.clone());
    let dc = sess.op()?;
    let freqs = logspace(bench.f_ref / 100.0, bench.f_max, bench.points.max(8));
    let acw = sess.ac(dc.x(), &freqs)?;
    let c = ac_characterize(&acw, &format!("v({})", bench.output_node), bench.f_ref)?;
    span.end();
    Ok(BlockCharacterization {
        gain: c.gain,
        gain_db: c.gain_db,
        phase_deg: c.phase_deg,
        bw_3db: c.bw_3db,
        f_ref: bench.f_ref,
    })
}

/// Outcome of [`characterize_batch`]: per-bench results in input order,
/// with solver failures recorded instead of aborting the batch.
#[derive(Clone, Debug)]
pub struct BatchCharacterization {
    /// Successful characterizations, keyed by bench index.
    pub results: Vec<(usize, BlockCharacterization)>,
    /// Benches whose OP or AC analysis failed; the batch continued
    /// without them.
    pub failures: Vec<crate::robust::SampleFailure>,
}

impl BatchCharacterization {
    /// Benches attempted, converged or not.
    pub fn attempted(&self) -> usize {
        self.results.len() + self.failures.len()
    }
}

/// Characterizes every bench in `benches`, continuing past per-bench
/// solver failures: a hard-start bias network in one corner must not
/// abort the other corners. Failure counts are emitted as
/// `charac.batch_failures` when tracing is on.
///
/// # Errors
///
/// [`ahfic_spice::SpiceError::Measure`] only if **every** bench failed; otherwise
/// failures land in [`BatchCharacterization::failures`].
pub fn characterize_batch(
    benches: &[CharacterizationBench],
    opts: &Options,
) -> Result<BatchCharacterization> {
    let t = opts.trace.tracer();
    let span = t.span("charac_batch");
    let mut results = Vec::new();
    let mut failures = Vec::new();
    let threads = opts.resolved_threads();
    let outcomes: Vec<Result<BlockCharacterization>> =
        if opts.batch.lanes().is_some() && threads > 1 {
            // Benches are independent netlists with distinct patterns,
            // so batching happens across threads rather than lanes: the
            // work-stealing pool keeps every core busy even when bench
            // costs are wildly uneven (lint-rejected decks return
            // immediately).
            ahfic_spice::analysis::sample_pool_map(
                threads,
                benches.len(),
                1,
                |_| (),
                |(), i| characterize_with(&benches[i], opts),
            )
        } else {
            benches
                .iter()
                .map(|bench| characterize_with(bench, opts))
                .collect()
        };
    for (i, (bench, outcome)) in benches.iter().zip(outcomes).enumerate() {
        match outcome {
            Ok(c) => results.push((i, c)),
            Err(e) => failures.push(crate::robust::SampleFailure::new(
                i,
                format!("bench output {}", bench.output_node),
                e,
            )),
        }
    }
    t.counter("charac.batch_failures", failures.len() as f64);
    span.end();
    if results.is_empty() && !benches.is_empty() {
        return Err(crate::robust::all_failed_error("benches", &failures));
    }
    Ok(BatchCharacterization { results, failures })
}

/// Distortion characterization of the same bench: drives the input
/// source with a sine of amplitude `drive` at `f0` (riding on its DC
/// bias) and returns the output THD ratio (5 harmonics).
///
/// # Errors
///
/// Propagates parse/simulation/measurement failures.
pub fn characterize_distortion(bench: &CharacterizationBench, drive: f64, f0: f64) -> Result<f64> {
    use ahfic_spice::analysis::TranParams;
    use ahfic_spice::wave::SourceWave;

    let mut ckt = parse_netlist(&bench.netlist)?;
    if ckt.find_element(&bench.input_source).is_none() {
        return Err(SpiceError::Measure(format!(
            "no source {}",
            bench.input_source
        )));
    }
    let dc = ckt
        .source_wave(&bench.input_source)
        .map(|w| w.dc_value())
        .ok_or_else(|| {
            SpiceError::Measure(format!(
                "{} is not an independent source",
                bench.input_source
            ))
        })?;
    ckt.set_source_wave(
        &bench.input_source,
        SourceWave::Sin {
            offset: dc,
            ampl: drive,
            freq: f0,
            delay: 0.0,
            damping: 0.0,
            phase_deg: 0.0,
        },
    )?;
    let sess = Session::compile(&ckt)?;
    // 12 periods, resolved to ~200 points per period.
    let period = 1.0 / f0;
    let wave = sess
        .tran(&TranParams::new(12.0 * period, period / 200.0))?
        .into_wave();
    ahfic_spice::measure::thd(&wave, &format!("v({})", bench.output_node), f0, 0.4)
}

/// A behavioral amplifier calibrated to a characterization: flat gain
/// cascaded with a first-order roll-off at the measured bandwidth (or
/// pure gain when the sweep never found the -3 dB point).
#[derive(Clone, Debug)]
pub struct CalibratedAmp {
    gain: f64,
    lp: Option<FirstOrderLp>,
    label: String,
}

impl CalibratedAmp {
    /// Builds the calibrated model for a behavioral simulation running at
    /// sample rate `fs`.
    ///
    /// # Panics
    ///
    /// Panics if the measured bandwidth is above `fs/2` is fine (the
    /// roll-off is then omitted); panics only on non-positive `fs`.
    pub fn new(charac: &BlockCharacterization, fs: f64) -> Self {
        assert!(fs > 0.0, "fs must be positive");
        let lp = charac
            .bw_3db
            .filter(|&bw| bw < fs / 2.0)
            .map(|bw| FirstOrderLp::new(bw, fs));
        CalibratedAmp {
            gain: charac.gain,
            lp,
            label: format!("amp({:.2} dB)", charac.gain_db),
        }
    }

    /// The flat gain applied.
    pub fn gain(&self) -> f64 {
        self.gain
    }
}

impl Block for CalibratedAmp {
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn tick(&mut self, t: f64, dt: f64, inputs: &[f64], outputs: &mut [f64]) {
        let x = self.gain * inputs[0];
        match &mut self.lp {
            Some(lp) => lp.tick(t, dt, &[x], outputs),
            None => outputs[0] = x,
        }
    }
    fn reset(&mut self) {
        if let Some(lp) = &mut self.lp {
            lp.reset();
        }
    }
    fn kind(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Common-emitter amplifier bench used across tests.
    fn ce_bench() -> CharacterizationBench {
        CharacterizationBench::new(
            "* common-emitter stage\n\
             .model n NPN (IS=2e-16 BF=120 RB=100 RE=2 RC=30 CJE=80f CJC=45f TF=16p)\n\
             VCC vcc 0 5\n\
             VIN b 0 0.78\n\
             RC vcc c 500\n\
             Q1 c b 0 n\n",
            "VIN",
            "c",
            1e6,
            50e9,
        )
    }

    #[test]
    fn ce_stage_characterizes_sensibly() {
        let c = characterize(&ce_bench()).unwrap();
        assert!(c.gain > 5.0, "gain {}", c.gain);
        // Inverting stage.
        assert!((c.phase_deg.abs() - 180.0).abs() < 5.0, "{}", c.phase_deg);
        let bw = c.bw_3db.expect("bandwidth inside sweep");
        assert!(bw > 50e6 && bw < 20e9, "bw {bw:.3e}");
    }

    /// Pooled batch characterization (batch mode + explicit thread
    /// budget) reproduces the sequential batch bit for bit, including
    /// the failure bookkeeping for a lint-rejected corner.
    #[test]
    fn pooled_batch_matches_sequential() {
        use ahfic_spice::analysis::BatchMode;
        let mut broken = ce_bench();
        broken.netlist = "VIN in 0 1\nR1 in mid 1k\nR2 mid 0 1k\nC1 mid out 1p\n".into();
        broken.output_node = "out".into();
        let benches = [ce_bench(), broken, ce_bench()];
        let seq = characterize_batch(&benches, &Options::default()).unwrap();
        let pooled_opts = Options::new().batch(BatchMode::Auto).threads(2);
        let pooled = characterize_batch(&benches, &pooled_opts).unwrap();
        assert_eq!(seq.results.len(), pooled.results.len());
        assert_eq!(seq.failures.len(), pooled.failures.len());
        for ((si, sc), (pi, pc)) in seq.results.iter().zip(&pooled.results) {
            assert_eq!(si, pi);
            assert_eq!(sc, pc);
        }
        assert_eq!(seq.failures[0].index, pooled.failures[0].index);
    }

    #[test]
    fn rc_divider_characterizes_exactly() {
        let bench = CharacterizationBench::new(
            "VIN in 0 1\nR1 in out 1k\nR2 out 0 1k\nC1 out 0 1p\n",
            "VIN",
            "out",
            1e3,
            1e12,
        );
        let c = characterize(&bench).unwrap();
        assert!((c.gain - 0.5).abs() < 1e-6);
        // Pole at 1/(2 pi * 500 * 1p) = 318 MHz.
        let bw = c.bw_3db.unwrap();
        assert!((bw - 318.3e6).abs() / 318.3e6 < 0.02, "bw {bw:.4e}");
    }

    #[test]
    fn distortion_grows_with_drive() {
        let bench = ce_bench();
        let thd_small = characterize_distortion(&bench, 2e-3, 10e6).unwrap();
        let thd_large = characterize_distortion(&bench, 20e-3, 10e6).unwrap();
        // Exponential transfer: THD scales roughly with drive.
        assert!(thd_small < 0.05, "small-signal THD {thd_small}");
        assert!(thd_large > 4.0 * thd_small, "{thd_large} vs {thd_small}");
    }

    #[test]
    fn batch_continues_past_injected_failure() {
        use ahfic_spice::analysis::{FaultInjector, FaultKind, LadderConfig};
        use std::sync::Arc;
        let benches = vec![ce_bench(), ce_bench(), ce_bench()];
        // Kill the very first OP solve; with the recovery ladder off the
        // first bench fails while the other two characterize normally.
        let inj = Arc::new(FaultInjector::once(FaultKind::NoConvergence, 0, 1));
        let no_ladder = LadderConfig {
            damping: false,
            gmin_stepping: false,
            source_stepping: false,
            ptran: false,
        };
        let opts = Options::new().fault_injector(&inj).ladder(no_ladder);
        let b = characterize_batch(&benches, &opts).unwrap();
        assert_eq!(b.attempted(), 3);
        assert_eq!(b.failures.len(), 1, "{:?}", b.failures);
        assert_eq!(b.failures[0].index, 0);
        assert_eq!(b.results.len(), 2);
        assert!(b.results.iter().all(|(_, c)| c.gain > 5.0));
    }

    #[test]
    fn batch_skips_lint_rejected_bench_and_records_it() {
        // The middle bench's output node hangs behind a capacitor: the
        // pre-flight verification rejects the deck at compile time, and
        // the batch must record that as a per-bench failure instead of
        // aborting the healthy corners.
        let mut broken = ce_bench();
        broken.netlist = "VIN in 0 1\nR1 in mid 1k\nR2 mid 0 1k\nC1 mid out 1p\n".into();
        broken.output_node = "out".into();
        let benches = vec![ce_bench(), broken, ce_bench()];
        let b = characterize_batch(&benches, &Options::default()).unwrap();
        assert_eq!(b.attempted(), 3);
        assert_eq!(b.failures.len(), 1, "{:?}", b.failures);
        assert_eq!(b.failures[0].index, 1);
        assert!(
            matches!(
                b.failures[0].error,
                ahfic_spice::error::SpiceError::LintFailed(_)
            ),
            "{:?}",
            b.failures[0].error
        );
        assert!(
            b.failures[0].error.to_string().contains("floating"),
            "{}",
            b.failures[0].error
        );
        assert_eq!(b.results.len(), 2);
    }

    #[test]
    fn empty_batch_is_ok_and_empty() {
        let b = characterize_batch(&[], &Options::default()).unwrap();
        assert_eq!(b.attempted(), 0);
    }

    #[test]
    fn missing_output_node_is_error() {
        let mut bench = ce_bench();
        bench.output_node = "nonexistent".into();
        assert!(matches!(characterize(&bench), Err(SpiceError::Measure(_))));
    }

    #[test]
    fn calibrated_amp_matches_characterization() {
        let charac = BlockCharacterization {
            gain: 2.0,
            gain_db: 6.02,
            phase_deg: 0.0,
            bw_3db: Some(10e6),
            f_ref: 1e3,
        };
        let fs = 1e9;
        let mut amp = CalibratedAmp::new(&charac, fs);
        assert_eq!(amp.gain(), 2.0);
        // Low-frequency gain is 2.
        let mut out = [0.0];
        for k in 0..200000 {
            amp.tick(k as f64 / fs, 1.0 / fs, &[1.0], &mut out);
        }
        assert!((out[0] - 2.0).abs() < 1e-3, "dc gain {}", out[0]);
    }

    #[test]
    fn calibrated_amp_without_bandwidth_is_flat() {
        let charac = BlockCharacterization {
            gain: -3.0,
            gain_db: 9.54,
            phase_deg: 180.0,
            bw_3db: None,
            f_ref: 1e3,
        };
        let mut amp = CalibratedAmp::new(&charac, 1e6);
        let mut out = [0.0];
        amp.tick(0.0, 1e-6, &[2.0], &mut out);
        assert_eq!(out[0], -6.0);
    }
}
