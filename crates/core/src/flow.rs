//! The end-to-end top-down design flow of the paper, as an executable
//! pipeline over the tuner case study:
//!
//! 1. system specification (required image rejection);
//! 2. behavioral (AHDL) exploration of the whole system;
//! 3. block spec budgeting via the Fig. 5 inversion;
//! 4. re-use: pull candidate cells from the analog cell database;
//! 5. component-level reality check (mixed-level simulation);
//! 6. final system verification against the spec.

use crate::budget::{balance_requirements, derive_balance_budget, BalanceSpec};
use crate::hierarchy::{Design, DesignBlock};
use crate::mixed::{mixed_level_study_traced, MixedLevelReport};
use crate::spec::{Quantity, Requirement};
use ahfic_celldb::search::{search, SearchQuery};
use ahfic_celldb::CellDb;
use ahfic_rf::plan::FrequencyPlan;
use ahfic_rf::tuner::TunerConfig;
use ahfic_trace::{TraceHandle, TraceSink};
use std::fmt;
use std::sync::Arc;

/// Flow failure.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowError(pub String);

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow error: {}", self.0)
    }
}

impl std::error::Error for FlowError {}

/// Top-down flow configuration.
#[derive(Clone, Debug)]
pub struct TopDownFlow {
    /// Frequency plan of the tuner under design.
    pub plan: FrequencyPlan,
    /// Behavioral simulation configuration.
    pub cfg: TunerConfig,
    /// System requirement: minimum image rejection (dB).
    pub required_irr_db: f64,
    /// Gain-balance candidates offered to the budgeting step.
    pub gain_candidates: Vec<f64>,
    /// Component mismatch assumed for the shifter reality check
    /// (fractional resistor error).
    pub shifter_mismatch: f64,
    /// Telemetry handle; every stage of [`Self::run`] emits a
    /// `flow.<stage>` span through it.
    pub trace: TraceHandle,
}

impl TopDownFlow {
    /// Flow preset matching the paper's worked example (30 dB IRR).
    pub fn paper_example() -> Self {
        let plan = FrequencyPlan::catv(500e6);
        let cfg = TunerConfig::for_plan(&plan);
        TopDownFlow {
            plan,
            cfg,
            required_irr_db: 30.0,
            gain_candidates: vec![0.01, 0.03, 0.05, 0.07, 0.09],
            shifter_mismatch: 0.02,
            trace: TraceHandle::off(),
        }
    }

    /// Installs a trace sink (chainable).
    pub fn with_trace<S: TraceSink + 'static>(mut self, sink: &Arc<S>) -> Self {
        self.trace = TraceHandle::new(sink);
        self
    }
}

/// Record of one flow stage.
#[derive(Clone, Debug, PartialEq)]
pub struct StageRecord {
    /// Stage name.
    pub name: &'static str,
    /// Human-readable outcome.
    pub summary: String,
    /// Whether the stage met its gate.
    pub passed: bool,
}

/// Complete flow outcome.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// Ordered stage records.
    pub stages: Vec<StageRecord>,
    /// The budget selected at stage 3.
    pub chosen_budget: Option<BalanceSpec>,
    /// Cells pulled from the library at stage 4.
    pub reused_cells: Vec<String>,
    /// The design skeleton assembled from reused cells.
    pub design: Design,
    /// The mixed-level study of stage 5.
    pub mixed: Option<MixedLevelReport>,
    /// Final verdict: the real system meets the system spec.
    pub final_pass: bool,
}

impl TopDownFlow {
    /// Executes the flow against a cell library.
    ///
    /// # Errors
    ///
    /// [`FlowError`] when a simulation stage fails outright (spec
    /// *misses* are reported in the `FlowReport`, not as errors).
    pub fn run(&self, db: &CellDb) -> Result<FlowReport, FlowError> {
        let mut stages = Vec::new();
        let fail = |m: String| FlowError(m);
        let t = self.trace.tracer();

        // Stage 1: system specification.
        let span = t.span("flow.system-spec");
        let system_req = Requirement::at_least(Quantity::ImageRejectionDb, self.required_irr_db);
        stages.push(StageRecord {
            name: "system-spec",
            summary: format!("system designer requests {system_req}"),
            passed: true,
        });
        span.end();

        // Stage 2: behavioral exploration — the ideal AHDL system must
        // have headroom, otherwise the architecture itself is wrong.
        let span = t.span("flow.behavioral-exploration");
        let ideal_irr = ahfic_rf::image_rejection::measure_irr_db_traced(
            &self.plan,
            &self.cfg,
            &Default::default(),
            Some(2e-6),
            &self.trace,
        )
        .map_err(|e| fail(format!("behavioral exploration failed: {e}")))?;
        let headroom_ok = ideal_irr >= self.required_irr_db + 10.0;
        stages.push(StageRecord {
            name: "behavioral-exploration",
            summary: format!(
                "ideal image-rejection architecture achieves {ideal_irr:.1} dB \
                 (requirement {:.1} dB)",
                self.required_irr_db
            ),
            passed: headroom_ok,
        });
        span.end();

        // Stage 3: block spec budgeting (Fig. 5 inversion).
        let span = t.span("flow.spec-budgeting");
        let budgets = derive_balance_budget(self.required_irr_db, &self.gain_candidates);
        // Pick the loosest-gain candidate that still allows >= 1 deg of
        // phase budget (manufacturable).
        let chosen = budgets
            .iter()
            .rev()
            .find(|b| b.max_phase_err_deg >= 1.0)
            .or(budgets.first())
            .copied();
        stages.push(StageRecord {
            name: "spec-budgeting",
            summary: match &chosen {
                Some(b) => format!(
                    "{} feasible balance pairs; chose gain {:.0}% / phase {:.2} deg",
                    budgets.len(),
                    b.gain_err * 100.0,
                    b.max_phase_err_deg
                ),
                None => "no feasible gain/phase balance pair".to_string(),
            },
            passed: chosen.is_some(),
        });
        span.end();
        let chosen = chosen.ok_or_else(|| fail("budgeting found no feasible point".into()))?;

        // Stage 4: re-use from the cell database.
        let span = t.span("flow.cell-reuse");
        let mut design = Design::new("double-super tuner");
        design.system_requirements.push(system_req);
        let mut reused_cells = Vec::new();
        for (block_name, query) in [
            ("IRMIX", "image rejection mixer"),
            ("QVCO", "quadrature oscillator 90"),
            ("PS90", "phase shifter IF"),
        ] {
            let hits = search(db, &SearchQuery::keywords(query));
            if let Some(hit) = hits.first() {
                let mut block = DesignBlock::from_cell(block_name, hit.cell)
                    .map_err(|e| fail(format!("re-use of {}: {e}", hit.cell.name)))?;
                for req in balance_requirements(&chosen) {
                    block.require(req);
                }
                reused_cells.push(hit.cell.name.clone());
                design.add_block(block).map_err(|e| fail(e.to_string()))?;
            }
        }
        stages.push(StageRecord {
            name: "cell-reuse",
            summary: format!(
                "reused {} of 3 blocks from the library: {}",
                reused_cells.len(),
                reused_cells.join(", ")
            ),
            passed: reused_cells.len() >= 2,
        });
        span.end();

        // Stage 5: component-level reality (mixed-level simulation).
        let span = t.span("flow.mixed-level");
        let mixed =
            mixed_level_study_traced(&self.plan, &self.cfg, self.shifter_mismatch, &self.trace)
                .map_err(|e| fail(format!("mixed-level study failed: {e}")))?;
        let balance_ok = mixed.real_balance.phase_err_deg.abs() <= chosen.max_phase_err_deg
            && mixed.real_balance.gain_err.abs() <= chosen.gain_err;
        stages.push(StageRecord {
            name: "mixed-level",
            summary: format!(
                "real shifter: phase err {:.2} deg, gain err {:.2}% -> budget {}",
                mixed.real_balance.phase_err_deg,
                mixed.real_balance.gain_err * 100.0,
                if balance_ok { "met" } else { "exceeded" }
            ),
            passed: balance_ok,
        });
        span.end();

        // Stage 6: final system verification.
        let span = t.span("flow.system-verification");
        let final_pass = mixed.real_irr_db >= self.required_irr_db;
        stages.push(StageRecord {
            name: "system-verification",
            summary: format!(
                "system with real shifter: {:.1} dB IRR vs required {:.1} dB",
                mixed.real_irr_db, self.required_irr_db
            ),
            passed: final_pass,
        });
        span.end();

        Ok(FlowReport {
            stages,
            chosen_budget: Some(chosen),
            reused_cells,
            design,
            mixed: Some(mixed),
            final_pass,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahfic_celldb::seed::seed_library;

    #[test]
    fn paper_example_flow_passes_end_to_end() {
        let db = seed_library().unwrap();
        let flow = TopDownFlow::paper_example();
        let report = flow.run(&db).unwrap();
        assert_eq!(report.stages.len(), 6);
        for s in &report.stages {
            assert!(s.passed, "stage {} failed: {}", s.name, s.summary);
        }
        assert!(report.final_pass);
        assert!(report.reused_cells.contains(&"IRMIX1".to_string()));
        assert!(report.design.blocks().len() >= 2);
        let mixed = report.mixed.unwrap();
        assert!(mixed.real_irr_db >= 30.0);
    }

    #[test]
    fn sloppy_process_fails_verification_but_flow_completes() {
        let db = seed_library().unwrap();
        let mut flow = TopDownFlow::paper_example();
        flow.shifter_mismatch = 0.35; // terrible matching
        let report = flow.run(&db).unwrap();
        assert!(!report.final_pass, "35% mismatch cannot meet 30 dB");
        let verify = report.stages.last().unwrap();
        assert!(!verify.passed);
    }

    #[test]
    fn impossible_spec_errors_out_at_budgeting() {
        let db = seed_library().unwrap();
        let mut flow = TopDownFlow::paper_example();
        flow.required_irr_db = 80.0;
        flow.gain_candidates = vec![0.05, 0.09];
        assert!(flow.run(&db).is_err());
    }
}
