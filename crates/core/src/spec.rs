//! Specification quantities and requirements.
//!
//! In the paper's flow, the system designer fixes whole-IC specs and the
//! circuit designer derives per-block specs from behavioral simulation;
//! this module is the shared vocabulary for both.

use std::fmt;

/// Physical quantity a requirement constrains.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Quantity {
    /// Voltage gain in dB.
    GainDb,
    /// Image-rejection ratio in dB.
    ImageRejectionDb,
    /// Phase in degrees.
    PhaseDeg,
    /// Gain balance (fractional error).
    GainBalance,
    /// Phase balance in degrees.
    PhaseBalanceDeg,
    /// -3 dB bandwidth in Hz.
    BandwidthHz,
    /// A frequency (oscillation, center…) in Hz.
    FrequencyHz,
    /// Total harmonic distortion in dB (negative numbers are better).
    ThdDb,
    /// Supply current in A.
    SupplyCurrentA,
}

impl Quantity {
    /// Unit suffix for display.
    pub fn unit(self) -> &'static str {
        match self {
            Quantity::GainDb | Quantity::ImageRejectionDb | Quantity::ThdDb => "dB",
            Quantity::PhaseDeg | Quantity::PhaseBalanceDeg => "deg",
            Quantity::GainBalance => "",
            Quantity::BandwidthHz | Quantity::FrequencyHz => "Hz",
            Quantity::SupplyCurrentA => "A",
        }
    }
}

impl fmt::Display for Quantity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Quantity::GainDb => "gain",
            Quantity::ImageRejectionDb => "image rejection",
            Quantity::PhaseDeg => "phase",
            Quantity::GainBalance => "gain balance",
            Quantity::PhaseBalanceDeg => "phase balance",
            Quantity::BandwidthHz => "bandwidth",
            Quantity::FrequencyHz => "frequency",
            Quantity::ThdDb => "THD",
            Quantity::SupplyCurrentA => "supply current",
        };
        write!(f, "{name}")
    }
}

/// A bounded requirement on a quantity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Requirement {
    /// Constrained quantity.
    pub quantity: Quantity,
    /// Lower bound (inclusive), if any.
    pub min: Option<f64>,
    /// Upper bound (inclusive), if any.
    pub max: Option<f64>,
}

impl Requirement {
    /// `quantity >= value`.
    pub fn at_least(quantity: Quantity, value: f64) -> Self {
        Requirement {
            quantity,
            min: Some(value),
            max: None,
        }
    }

    /// `quantity <= value`.
    pub fn at_most(quantity: Quantity, value: f64) -> Self {
        Requirement {
            quantity,
            min: None,
            max: Some(value),
        }
    }

    /// `min <= quantity <= max`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn between(quantity: Quantity, min: f64, max: f64) -> Self {
        assert!(min <= max, "empty requirement interval");
        Requirement {
            quantity,
            min: Some(min),
            max: Some(max),
        }
    }

    /// Checks a measured value.
    pub fn check(&self, value: f64) -> SpecStatus {
        if let Some(lo) = self.min {
            if value < lo {
                return SpecStatus::Fail {
                    value,
                    violated_bound: lo,
                };
            }
        }
        if let Some(hi) = self.max {
            if value > hi {
                return SpecStatus::Fail {
                    value,
                    violated_bound: hi,
                };
            }
        }
        SpecStatus::Pass { value }
    }

    /// Margin to the nearest bound (positive = passing with room).
    pub fn margin(&self, value: f64) -> f64 {
        let m_lo = self.min.map(|lo| value - lo).unwrap_or(f64::INFINITY);
        let m_hi = self.max.map(|hi| hi - value).unwrap_or(f64::INFINITY);
        m_lo.min(m_hi)
    }
}

impl fmt::Display for Requirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.min, self.max) {
            (Some(lo), Some(hi)) => {
                write!(
                    f,
                    "{} in [{lo}, {hi}] {}",
                    self.quantity,
                    self.quantity.unit()
                )
            }
            (Some(lo), None) => write!(f, "{} >= {lo} {}", self.quantity, self.quantity.unit()),
            (None, Some(hi)) => write!(f, "{} <= {hi} {}", self.quantity, self.quantity.unit()),
            (None, None) => write!(f, "{} unconstrained", self.quantity),
        }
    }
}

/// Outcome of checking a requirement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SpecStatus {
    /// Value met the requirement.
    Pass {
        /// Measured value.
        value: f64,
    },
    /// Value violated a bound.
    Fail {
        /// Measured value.
        value: f64,
        /// The bound it crossed.
        violated_bound: f64,
    },
}

impl SpecStatus {
    /// True on pass.
    pub fn is_pass(&self) -> bool {
        matches!(self, SpecStatus::Pass { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_checked() {
        let r = Requirement::at_least(Quantity::ImageRejectionDb, 30.0);
        assert!(r.check(35.0).is_pass());
        assert!(!r.check(25.0).is_pass());
        let r = Requirement::at_most(Quantity::PhaseBalanceDeg, 3.0);
        assert!(r.check(1.0).is_pass());
        assert!(!r.check(5.0).is_pass());
        let r = Requirement::between(Quantity::FrequencyHz, 0.9e9, 1.1e9);
        assert!(r.check(1.0e9).is_pass());
        assert!(!r.check(1.3e9).is_pass());
    }

    #[test]
    fn margin_sign() {
        let r = Requirement::at_least(Quantity::GainDb, 20.0);
        assert_eq!(r.margin(25.0), 5.0);
        assert_eq!(r.margin(15.0), -5.0);
        let r = Requirement::between(Quantity::GainDb, 10.0, 30.0);
        assert_eq!(r.margin(12.0), 2.0);
    }

    #[test]
    fn display_readable() {
        let r = Requirement::at_least(Quantity::ImageRejectionDb, 30.0);
        assert_eq!(r.to_string(), "image rejection >= 30 dB");
        let r = Requirement::between(Quantity::FrequencyHz, 1.0, 2.0);
        assert!(r.to_string().contains("[1, 2] Hz"));
    }

    #[test]
    #[should_panic(expected = "empty requirement")]
    fn inverted_interval_panics() {
        let _ = Requirement::between(Quantity::GainDb, 2.0, 1.0);
    }
}
