//! The top-down design hierarchy: function blocks with swappable views.
//!
//! Fig. 1 of the paper: every function block exists first as an AHDL
//! behavioral description, later as a transistor-level circuit; the
//! designer flips a block between views to "examine the difference
//! between an ideal circuit and a real circuit".

use crate::spec::{Requirement, SpecStatus};
use ahfic_celldb::cell::Cell;
use std::collections::HashMap;
use std::fmt;

/// Error raised by hierarchy operations.
#[derive(Clone, Debug, PartialEq)]
pub enum DesignError {
    /// Duplicate or missing block.
    Block(String),
    /// A view failed validation.
    View(String),
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::Block(m) => write!(f, "block error: {m}"),
            DesignError::View(m) => write!(f, "view error: {m}"),
        }
    }
}

impl std::error::Error for DesignError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, DesignError>;

/// Abstraction level of a view.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ViewLevel {
    /// AHDL behavioral description.
    Behavioral,
    /// Primitive-element (transistor) netlist.
    Transistor,
}

/// One implementation view of a block.
#[derive(Clone, Debug, PartialEq)]
pub enum BlockView {
    /// AHDL source with parameter overrides.
    Behavioral {
        /// Module source.
        ahdl: String,
        /// Parameter overrides applied on instantiation.
        params: Vec<(String, f64)>,
    },
    /// SPICE netlist text.
    Transistor {
        /// Netlist source.
        netlist: String,
    },
}

impl BlockView {
    /// Level of this view.
    pub fn level(&self) -> ViewLevel {
        match self {
            BlockView::Behavioral { .. } => ViewLevel::Behavioral,
            BlockView::Transistor { .. } => ViewLevel::Transistor,
        }
    }

    /// Validates that the view's source compiles/parses.
    ///
    /// # Errors
    ///
    /// [`DesignError::View`] with the underlying compiler message.
    pub fn validate(&self) -> Result<()> {
        match self {
            BlockView::Behavioral { ahdl, params } => {
                let m = ahfic_ahdl::eval::CompiledModule::compile(ahdl)
                    .map_err(|e| DesignError::View(e.to_string()))?;
                let refs: Vec<(&str, f64)> = params.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                m.instantiate(&refs)
                    .map_err(|e| DesignError::View(e.to_string()))?;
                Ok(())
            }
            BlockView::Transistor { netlist } => {
                ahfic_spice::parse::parse_netlist(netlist)
                    .map_err(|e| DesignError::View(e.to_string()))?;
                Ok(())
            }
        }
    }
}

/// A function block in the hierarchy.
#[derive(Clone, Debug)]
pub struct DesignBlock {
    /// Block instance name.
    pub name: String,
    /// Views by level.
    views: HashMap<ViewLevel, BlockView>,
    /// Level currently used for simulation.
    active: ViewLevel,
    /// Derived block-level requirements.
    pub requirements: Vec<Requirement>,
    /// Measured values per requirement (filled by verification).
    pub measured: Vec<Option<f64>>,
}

impl DesignBlock {
    /// Creates a block with an initial (behavioral) view.
    ///
    /// # Errors
    ///
    /// Propagates view validation failures.
    pub fn new(name: &str, view: BlockView) -> Result<Self> {
        view.validate()?;
        let level = view.level();
        let mut views = HashMap::new();
        views.insert(level, view);
        Ok(DesignBlock {
            name: name.to_string(),
            views,
            active: level,
            requirements: Vec::new(),
            measured: Vec::new(),
        })
    }

    /// Builds a block from a library cell, preferring its behavioral view
    /// — the re-use entry point.
    ///
    /// # Errors
    ///
    /// [`DesignError::View`] if the cell has no implementation view or it
    /// fails validation.
    pub fn from_cell(name: &str, cell: &Cell) -> Result<Self> {
        let mut block: Option<DesignBlock> = None;
        if let Some(ahdl) = &cell.views.behavioral {
            block = Some(DesignBlock::new(
                name,
                BlockView::Behavioral {
                    ahdl: ahdl.clone(),
                    params: Vec::new(),
                },
            )?);
        }
        if let Some(netlist) = &cell.views.schematic {
            let view = BlockView::Transistor {
                netlist: netlist.clone(),
            };
            match &mut block {
                Some(b) => {
                    b.add_view(view)?;
                }
                None => block = Some(DesignBlock::new(name, view)?),
            }
        }
        block.ok_or_else(|| {
            DesignError::View(format!(
                "cell {} has neither behavioral nor schematic view",
                cell.name
            ))
        })
    }

    /// Adds (or replaces) a view at its level.
    ///
    /// # Errors
    ///
    /// Propagates validation failures.
    pub fn add_view(&mut self, view: BlockView) -> Result<&mut Self> {
        view.validate()?;
        self.views.insert(view.level(), view);
        Ok(self)
    }

    /// Switches the active level — the paper's behavioral ↔ transistor
    /// swap.
    ///
    /// # Errors
    ///
    /// [`DesignError::View`] when no view exists at that level.
    pub fn activate(&mut self, level: ViewLevel) -> Result<()> {
        if !self.views.contains_key(&level) {
            return Err(DesignError::View(format!(
                "block {} has no {level:?} view",
                self.name
            )));
        }
        self.active = level;
        Ok(())
    }

    /// Currently active level.
    pub fn active_level(&self) -> ViewLevel {
        self.active
    }

    /// The active view.
    pub fn active_view(&self) -> &BlockView {
        &self.views[&self.active]
    }

    /// View at a specific level, if present.
    pub fn view(&self, level: ViewLevel) -> Option<&BlockView> {
        self.views.get(&level)
    }

    /// Attaches a derived requirement.
    pub fn require(&mut self, req: Requirement) {
        self.requirements.push(req);
        self.measured.push(None);
    }

    /// Records a measured value for requirement `idx` and returns its
    /// status.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn record_measurement(&mut self, idx: usize, value: f64) -> SpecStatus {
        self.measured[idx] = Some(value);
        self.requirements[idx].check(value)
    }

    /// True when every requirement has a passing measurement.
    pub fn meets_spec(&self) -> bool {
        self.requirements
            .iter()
            .zip(self.measured.iter())
            .all(|(r, m)| m.map(|v| r.check(v).is_pass()).unwrap_or(false))
    }
}

/// The whole-IC design: an ordered set of blocks plus system-level
/// requirements.
#[derive(Clone, Debug, Default)]
pub struct Design {
    /// Design name.
    pub name: String,
    blocks: Vec<DesignBlock>,
    /// System (whole-IC) requirements.
    pub system_requirements: Vec<Requirement>,
}

impl Design {
    /// Creates an empty design.
    pub fn new(name: &str) -> Self {
        Design {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Adds a block.
    ///
    /// # Errors
    ///
    /// [`DesignError::Block`] on duplicate names.
    pub fn add_block(&mut self, block: DesignBlock) -> Result<()> {
        if self.blocks.iter().any(|b| b.name == block.name) {
            return Err(DesignError::Block(format!(
                "duplicate block {}",
                block.name
            )));
        }
        self.blocks.push(block);
        Ok(())
    }

    /// Blocks in insertion order.
    pub fn blocks(&self) -> &[DesignBlock] {
        &self.blocks
    }

    /// Mutable access to a block by name.
    ///
    /// # Errors
    ///
    /// [`DesignError::Block`] when missing.
    pub fn block_mut(&mut self, name: &str) -> Result<&mut DesignBlock> {
        self.blocks
            .iter_mut()
            .find(|b| b.name == name)
            .ok_or_else(|| DesignError::Block(format!("no block named {name}")))
    }

    /// How many blocks are still at the behavioral level — the designer's
    /// progress indicator during top-down refinement.
    pub fn behavioral_count(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| b.active_level() == ViewLevel::Behavioral)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Quantity;

    fn amp_view() -> BlockView {
        BlockView::Behavioral {
            ahdl: "module amp(in, out) { input in; output out;
                   parameter real gain = 2.0;
                   analog { V(out) <- gain * V(in); } }"
                .into(),
            params: vec![("gain".into(), 4.0)],
        }
    }

    fn netlist_view() -> BlockView {
        BlockView::Transistor {
            netlist: "R1 in out 1k\nR2 out 0 1k\n".into(),
        }
    }

    #[test]
    fn block_view_swap() {
        let mut b = DesignBlock::new("IFAMP", amp_view()).unwrap();
        assert_eq!(b.active_level(), ViewLevel::Behavioral);
        assert!(b.activate(ViewLevel::Transistor).is_err());
        b.add_view(netlist_view()).unwrap();
        b.activate(ViewLevel::Transistor).unwrap();
        assert_eq!(b.active_level(), ViewLevel::Transistor);
        assert!(matches!(b.active_view(), BlockView::Transistor { .. }));
        // And back.
        b.activate(ViewLevel::Behavioral).unwrap();
        assert_eq!(b.active_level(), ViewLevel::Behavioral);
    }

    #[test]
    fn invalid_views_rejected() {
        let bad = BlockView::Behavioral {
            ahdl: "module broken(".into(),
            params: vec![],
        };
        assert!(DesignBlock::new("X", bad).is_err());
        let bad_param = BlockView::Behavioral {
            ahdl: "module a(x, y) { input x; output y; analog { V(y) <- V(x); } }".into(),
            params: vec![("nope".into(), 1.0)],
        };
        assert!(DesignBlock::new("X", bad_param).is_err());
        let bad_net = BlockView::Transistor {
            netlist: "R1 a 0 banana\n".into(),
        };
        assert!(DesignBlock::new("X", bad_net).is_err());
    }

    #[test]
    fn requirements_and_measurements() {
        let mut b = DesignBlock::new("PS90", amp_view()).unwrap();
        b.require(Requirement::at_most(Quantity::PhaseBalanceDeg, 3.0));
        b.require(Requirement::at_most(Quantity::GainBalance, 0.05));
        assert!(!b.meets_spec(), "nothing measured yet");
        assert!(b.record_measurement(0, 2.0).is_pass());
        assert!(b.record_measurement(1, 0.01).is_pass());
        assert!(b.meets_spec());
        assert!(!b.record_measurement(1, 0.2).is_pass());
        assert!(!b.meets_spec());
    }

    #[test]
    fn design_block_management() {
        let mut d = Design::new("tuner");
        d.add_block(DesignBlock::new("A", amp_view()).unwrap())
            .unwrap();
        d.add_block(DesignBlock::new("B", amp_view()).unwrap())
            .unwrap();
        assert!(d
            .add_block(DesignBlock::new("A", amp_view()).unwrap())
            .is_err());
        assert_eq!(d.blocks().len(), 2);
        assert_eq!(d.behavioral_count(), 2);
        d.block_mut("A").unwrap().add_view(netlist_view()).unwrap();
        d.block_mut("A")
            .unwrap()
            .activate(ViewLevel::Transistor)
            .unwrap();
        assert_eq!(d.behavioral_count(), 1);
        assert!(d.block_mut("Z").is_err());
    }

    #[test]
    fn from_cell_prefers_behavioral_and_keeps_schematic() {
        let db = ahfic_celldb::seed::seed_library().unwrap();
        let cell = db.get("GCA1").unwrap();
        let b = DesignBlock::from_cell("VIDEO_GCA", cell).unwrap();
        assert_eq!(b.active_level(), ViewLevel::Behavioral);
        assert!(b.view(ViewLevel::Transistor).is_some());
    }
}
