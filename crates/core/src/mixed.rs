//! Mixed-level simulation: the paper's key move of replacing an ideal
//! AHDL block by its real (transistor/component-level) implementation
//! and re-running the system.
//!
//! Case study: the 90° phase shifter of the image-rejection tuner. At
//! component level it is an RC-CR network; resistor mismatch shifts its
//! phase/gain balance away from the ideal, and the system-level IRR
//! degrades exactly along the paper's Fig. 5 surface.

use ahfic_rf::image_rejection::{irr_analytic_db, measure_irr_db_traced};
use ahfic_rf::plan::FrequencyPlan;
use ahfic_rf::tuner::{ImageRejectionErrors, TunerConfig};
use ahfic_spice::analysis::{sample_pool_map, BatchedAcEngine, BatchedOpEngine, Options, Session};
use ahfic_spice::circuit::{Circuit, Prepared};
use ahfic_spice::error::{Result, SpiceError};
use ahfic_trace::TraceHandle;

/// Balance errors extracted from a component-level 90° shifter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShifterBalance {
    /// Deviation of the path phase difference from 90° (degrees).
    pub phase_err_deg: f64,
    /// Fractional gain imbalance between the paths.
    pub gain_err: f64,
}

/// A reusable RC-CR characterization bench: the quadrature network is
/// compiled **once** and re-characterized at many mismatch values by
/// retuning `R1` in place ([`Circuit::set_resistance`]) — no clone, no
/// recompile per point. This is the hot path of the Monte-Carlo yield
/// study.
#[derive(Clone, Debug)]
pub struct RcCrBench {
    sess: Session,
    r_nom: f64,
    f0: f64,
}

impl RcCrBench {
    /// Builds and compiles the bench for design frequency `f0` and arm
    /// capacitance `c`.
    ///
    /// The network: low-pass arm `R1/C1` (output `a`) and high-pass arm
    /// `C2/R2` (output `b`). With `R1 C1 = R2 C2 = 1/(2*pi*f0)` the
    /// outputs are exactly 90° apart with equal magnitude; component
    /// mismatch breaks both balances.
    ///
    /// # Errors
    ///
    /// Propagates netlist/compile errors.
    pub fn new(f0: f64, c: f64) -> Result<Self> {
        let r_nom = 1.0 / (2.0 * std::f64::consts::PI * f0 * c);
        let mut ckt = Circuit::new();
        let input = ckt.node("in");
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("VIN", input, Circuit::gnd(), 0.0);
        ckt.set_ac("VIN", 1.0, 0.0)?;
        ckt.resistor("R1", input, a, r_nom);
        ckt.capacitor("C1", a, Circuit::gnd(), c);
        ckt.capacitor("C2", input, b, c);
        ckt.resistor("R2", b, Circuit::gnd(), r_nom);
        Ok(RcCrBench {
            sess: Session::compile(&ckt)?,
            r_nom,
            f0,
        })
    }

    /// Replaces the analysis options (chainable) — e.g. to install a
    /// trace sink so every characterization's op/AC spans are recorded.
    pub fn with_options(mut self, opts: Options) -> Self {
        self.sess = self.sess.with_options(opts);
        self
    }

    /// Characterizes the bench with `R1` catastrophically open — a
    /// manufacturing open defect. Without `R1` the low-pass output `a`
    /// is reachable only through `C1`, so the variant deck never gets
    /// near the solver: the pre-flight lint rejects it at compile time
    /// with [`ahfic_spice::error::SpiceError::LintFailed`] naming the
    /// floating node. Always returns that typed error; batch drivers
    /// use it to model defective Monte-Carlo samples, which they record
    /// as per-sample failures instead of aborting the study.
    ///
    /// # Errors
    ///
    /// Always [`ahfic_spice::error::SpiceError::LintFailed`].
    pub fn characterize_open_r1(&self) -> Result<ShifterBalance> {
        let mut ckt = Circuit::new();
        let input = ckt.node("in");
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("VIN", input, Circuit::gnd(), 0.0);
        ckt.set_ac("VIN", 1.0, 0.0)?;
        // R1 open: the low-pass arm loses its series element.
        ckt.capacitor("C1", a, Circuit::gnd(), 1e-12);
        ckt.capacitor("C2", input, b, 1e-12);
        ckt.resistor("R2", b, Circuit::gnd(), self.r_nom);
        match Prepared::compile(&ckt) {
            Err(e) => Err(e),
            Ok(_) => Err(ahfic_spice::error::SpiceError::Measure(
                "open-R1 defect deck unexpectedly passed pre-flight verification".into(),
            )),
        }
    }

    /// Characterizes the network with a fractional `R1` error of
    /// `r1_mismatch`, retuning the compiled circuit in place.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors; mismatch at or below -100% is a
    /// netlist error (non-positive resistance).
    pub fn characterize(&mut self, r1_mismatch: f64) -> Result<ShifterBalance> {
        let r1 = self.r_nom * (1.0 + r1_mismatch);
        self.sess.prepared_mut().circuit.set_resistance("R1", r1)?;
        let dc = self.sess.op()?;
        let acw = self.sess.ac(dc.x(), &[self.f0])?;
        let va = acw.signal("v(a)")?[0];
        let vb = acw.signal("v(b)")?[0];
        Ok(balance_from(va, vb))
    }

    /// Characterizes many mismatch values at once through the batched
    /// variant engine: one [`BatchedOpEngine`] and one
    /// [`BatchedAcEngine`] amortize pattern compilation and symbolic
    /// factorization over lanes of up to `lanes` variants, and chunks
    /// are spread over a work-stealing sample pool sized by
    /// [`Options::threads`]. Results come back in input order and agree
    /// with per-point [`RcCrBench::characterize`] calls; per-point
    /// failures are per-slot `Err`s, never aborts.
    pub fn characterize_many(
        &self,
        mismatches: &[f64],
        lanes: usize,
    ) -> Vec<Result<ShifterBalance>> {
        let lanes = lanes.max(1);
        let prep = self.sess.prepared();
        let (slot_a, slot_b) = match (prep.circuit.find_node("a"), prep.circuit.find_node("b")) {
            (Some(a), Some(b)) => (prep.slot_of(a), prep.slot_of(b)),
            _ => {
                return mismatches
                    .iter()
                    .map(|_| Err(SpiceError::Measure("RC-CR bench nodes missing".into())))
                    .collect()
            }
        };
        let nchunks = mismatches.len().div_ceil(lanes);
        let threads = self.sess.options().resolved_threads();
        let chunks: Vec<Vec<Result<ShifterBalance>>> = sample_pool_map(
            threads,
            nchunks,
            1,
            |_| {
                (
                    self.clone(),
                    BatchedOpEngine::new(lanes),
                    BatchedAcEngine::new(lanes),
                )
            },
            |(bench, ope, ace), ci| {
                let lo = ci * lanes;
                let hi = mismatches.len().min(lo + lanes);
                bench.characterize_chunk(ope, ace, &mismatches[lo..hi], slot_a, slot_b)
            },
        );
        chunks.into_iter().flatten().collect()
    }

    /// One lane-batch of characterizations: batched operating points,
    /// then the batched single-frequency AC solve for the lanes whose
    /// operating point converged.
    fn characterize_chunk(
        &mut self,
        ope: &mut BatchedOpEngine,
        ace: &mut BatchedAcEngine,
        mismatches: &[f64],
        slot_a: usize,
        slot_b: usize,
    ) -> Vec<Result<ShifterBalance>> {
        let r_nom = self.r_nom;
        let f0 = self.f0;
        let opts = self.sess.options().clone();
        let ops = ope.run(self.sess.prepared_mut(), &opts, mismatches.len(), |p, i| {
            p.circuit
                .set_resistance("R1", r_nom * (1.0 + mismatches[i]))
        });
        let acs = {
            let items: Vec<(usize, &[f64])> = ops
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.as_ref().ok().map(|o| (i, o.x.as_slice())))
                .collect();
            ace.run(self.sess.prepared_mut(), &opts, f0, &items, |p, i| {
                p.circuit
                    .set_resistance("R1", r_nom * (1.0 + mismatches[i]))
            })
        };
        let mut ac_iter = acs.into_iter();
        ops.into_iter()
            .map(|r| match r {
                Err(e) => Err(e),
                Ok(_) => match ac_iter.next() {
                    Some(Ok(sol)) => Ok(balance_from(sol[slot_a], sol[slot_b])),
                    Some(Err(e)) => Err(e),
                    None => Err(SpiceError::Measure("batched AC result missing".into())),
                },
            })
            .collect()
    }
}

/// Phase/gain balance of the two quadrature outputs, relative to the
/// ideal 90° split with equal magnitude.
fn balance_from(va: ahfic_num::Complex, vb: ahfic_num::Complex) -> ShifterBalance {
    let mut dphi = (vb.arg() - va.arg()).to_degrees();
    while dphi > 180.0 {
        dphi -= 360.0;
    }
    while dphi < -180.0 {
        dphi += 360.0;
    }
    ShifterBalance {
        phase_err_deg: dphi - 90.0,
        gain_err: vb.abs() / va.abs() - 1.0,
    }
}

/// Characterizes an RC-CR quadrature network at `f0` via AC analysis.
///
/// One-shot convenience over [`RcCrBench`]; sweeping many mismatch
/// values should construct the bench once instead.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn characterize_rc_cr(f0: f64, c: f64, r1_mismatch: f64) -> Result<ShifterBalance> {
    RcCrBench::new(f0, c)?.characterize(r1_mismatch)
}

/// Result of the mixed-level study.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MixedLevelReport {
    /// Balance of the real (component-level) shifter.
    pub real_balance: ShifterBalance,
    /// System IRR with the ideal behavioral shifter (dB).
    pub ideal_irr_db: f64,
    /// System IRR after substituting the real shifter's balance (dB),
    /// from the behavioral simulation.
    pub real_irr_db: f64,
    /// The closed-form prediction for the real balance (dB).
    pub predicted_irr_db: f64,
}

impl MixedLevelReport {
    /// IRR penalty paid for the real circuit (dB).
    pub fn degradation_db(&self) -> f64 {
        self.ideal_irr_db - self.real_irr_db
    }
}

/// Runs the mixed-level study: characterize the RC-CR shifter with the
/// given resistor mismatch at the second IF, back-annotate its balance
/// into the behavioral tuner and re-measure the image rejection.
///
/// # Errors
///
/// Propagates SPICE errors (characterization) and converts behavioral
/// simulation failures into [`ahfic_spice::SpiceError::Measure`].
pub fn mixed_level_study(
    plan: &FrequencyPlan,
    cfg: &TunerConfig,
    r1_mismatch: f64,
) -> Result<MixedLevelReport> {
    mixed_level_study_traced(plan, cfg, r1_mismatch, &TraceHandle::off())
}

/// [`mixed_level_study`] with telemetry: the whole study runs inside a
/// `mixed` span, the RC-CR characterization emits op/AC spans and the
/// behavioral re-runs emit `ahdl.run` spans.
///
/// # Errors
///
/// As [`mixed_level_study`].
pub fn mixed_level_study_traced(
    plan: &FrequencyPlan,
    cfg: &TunerConfig,
    r1_mismatch: f64,
    trace: &TraceHandle,
) -> Result<MixedLevelReport> {
    use ahfic_spice::error::SpiceError;
    let t = trace.tracer();
    let span = t.span("mixed");
    let real_balance = RcCrBench::new(plan.f2_if, 1e-12)?
        .with_options(Options::new().trace_handle(trace.clone()))
        .characterize(r1_mismatch)?;
    let sim = |errors: ImageRejectionErrors| -> Result<f64> {
        measure_irr_db_traced(plan, cfg, &errors, Some(2e-6), trace)
            .map_err(|e| SpiceError::Measure(format!("behavioral simulation failed: {e}")))
    };
    let ideal_irr_db = sim(ImageRejectionErrors::default())?;
    let real_errors = ImageRejectionErrors {
        lo_phase_err_deg: 0.0,
        gain_err: real_balance.gain_err,
        shifter_phase_err_deg: real_balance.phase_err_deg,
    };
    let real_irr_db = sim(real_errors)?;
    span.end();
    Ok(MixedLevelReport {
        real_balance,
        ideal_irr_db,
        real_irr_db,
        predicted_irr_db: irr_analytic_db(real_balance.phase_err_deg, real_balance.gain_err),
    })
}

/// Outcome of [`mixed_level_sweep`]: per-point shifter balances with
/// solver failures recorded instead of aborting the sweep.
#[derive(Clone, Debug)]
pub struct MixedSweepResult {
    /// `(mismatch, balance)` for every point that converged, in sweep
    /// order.
    pub points: Vec<(f64, ShifterBalance)>,
    /// Sweep points whose characterization failed; the sweep continued
    /// without them.
    pub failures: Vec<crate::robust::SampleFailure>,
}

/// Characterizes the RC-CR shifter at every mismatch in `mismatches`
/// on one compiled bench, continuing past per-point solver failures
/// (recorded in [`MixedSweepResult::failures`] and counted as
/// `mixed.sweep_failures` when tracing is on).
///
/// # Errors
///
/// Netlist/compile errors, or [`ahfic_spice::SpiceError::Measure`]
/// (via [`crate::robust`]) if **every** point failed.
pub fn mixed_level_sweep(
    f0: f64,
    c: f64,
    mismatches: &[f64],
    opts: &Options,
) -> Result<MixedSweepResult> {
    let t = opts.trace.tracer();
    let span = t.span("mixed_sweep");
    let mut bench = RcCrBench::new(f0, c)?.with_options(opts.clone());
    let mut points = Vec::with_capacity(mismatches.len());
    let mut failures = Vec::new();
    if let Some(lanes) = opts.batch.lanes() {
        for (i, (&m, r)) in mismatches
            .iter()
            .zip(bench.characterize_many(mismatches, lanes))
            .enumerate()
        {
            match r {
                Ok(b) => points.push((m, b)),
                Err(e) => failures.push(crate::robust::SampleFailure::new(
                    i,
                    format!("mismatch {m:+.4}"),
                    e,
                )),
            }
        }
    } else {
        for (i, &m) in mismatches.iter().enumerate() {
            match bench.characterize(m) {
                Ok(b) => points.push((m, b)),
                Err(e) => failures.push(crate::robust::SampleFailure::new(
                    i,
                    format!("mismatch {m:+.4}"),
                    e,
                )),
            }
        }
    }
    t.counter("mixed.sweep_failures", failures.len() as f64);
    span.end();
    if points.is_empty() && !mismatches.is_empty() {
        return Err(crate::robust::all_failed_error("sweep points", &failures));
    }
    Ok(MixedSweepResult { points, failures })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matched_rc_cr_is_perfect_quadrature() {
        let b = characterize_rc_cr(45e6, 1e-12, 0.0).unwrap();
        assert!(b.phase_err_deg.abs() < 1e-6, "{:?}", b);
        assert!(b.gain_err.abs() < 1e-9, "{:?}", b);
    }

    #[test]
    fn mismatch_shifts_phase_and_gain() {
        let b = characterize_rc_cr(45e6, 1e-12, 0.05).unwrap();
        // 5% R error: phase error = atan(1.05)-45deg = 1.40 deg; the LP
        // arm loses amplitude, so the HP/LP ratio gains +2.5 %.
        assert!((b.phase_err_deg - 1.397).abs() < 0.05, "{:?}", b);
        assert!((b.gain_err - 0.0253).abs() < 0.003, "{:?}", b);
    }

    #[test]
    fn mismatch_sign_flips_phase_direction() {
        let plus = characterize_rc_cr(45e6, 1e-12, 0.05).unwrap();
        let minus = characterize_rc_cr(45e6, 1e-12, -0.05).unwrap();
        assert!(plus.phase_err_deg * minus.phase_err_deg < 0.0);
    }

    #[test]
    fn sweep_records_failures_and_continues() {
        use ahfic_spice::analysis::{FaultInjector, FaultKind, LadderConfig};
        use std::sync::Arc;
        let mismatches = [-0.05, 0.0, 0.05, 0.10];
        // Fail the second point's OP deterministically.
        let inj = Arc::new(FaultInjector::once(FaultKind::NoConvergence, 1, 1));
        let no_ladder = LadderConfig {
            damping: false,
            gmin_stepping: false,
            source_stepping: false,
            ptran: false,
        };
        let opts = Options::new().fault_injector(&inj).ladder(no_ladder);
        let r = mixed_level_sweep(45e6, 1e-12, &mismatches, &opts).unwrap();
        assert_eq!(r.failures.len(), 1, "{:?}", r.failures);
        assert_eq!(r.failures[0].index, 1);
        assert_eq!(r.points.len(), 3);
        // Clean sweep sees every point and matches the one-shot helper.
        let clean = mixed_level_sweep(45e6, 1e-12, &mismatches, &Options::default()).unwrap();
        assert_eq!(clean.points.len(), 4);
        assert!(clean.failures.is_empty());
    }

    /// The batched sweep path agrees with the sequential path point
    /// for point, across batch widths and with failures present.
    #[test]
    fn batched_sweep_matches_sequential() {
        use ahfic_spice::analysis::BatchMode;
        let mismatches = [-0.08, -0.02, 0.0, 0.03, 0.07, 0.12, 0.20];
        let seq = mixed_level_sweep(45e6, 1e-12, &mismatches, &Options::default()).unwrap();
        for lanes in [1usize, 3, 8] {
            let opts = Options::new().batch(BatchMode::Lanes(lanes));
            let bat = mixed_level_sweep(45e6, 1e-12, &mismatches, &opts).unwrap();
            assert_eq!(bat.points.len(), seq.points.len(), "lanes={lanes}");
            assert!(bat.failures.is_empty());
            for (k, ((ms, s), (mb, b))) in seq.points.iter().zip(&bat.points).enumerate() {
                assert_eq!(ms, mb);
                assert!(
                    (s.phase_err_deg - b.phase_err_deg).abs()
                        <= 1e-9 * s.phase_err_deg.abs().max(1e-9),
                    "lanes={lanes} point {k}: {} vs {}",
                    s.phase_err_deg,
                    b.phase_err_deg
                );
                assert!(
                    (s.gain_err - b.gain_err).abs() <= 1e-9 * s.gain_err.abs().max(1e-9),
                    "lanes={lanes} point {k}: {} vs {}",
                    s.gain_err,
                    b.gain_err
                );
            }
        }
    }

    #[test]
    fn study_shows_fig5_consistent_degradation() {
        let plan = FrequencyPlan::catv(500e6);
        let cfg = TunerConfig::for_plan(&plan);
        let report = mixed_level_study(&plan, &cfg, 0.10).unwrap();
        // Ideal rejection is essentially unbounded; the real one is
        // finite and matches the Fig. 5 closed form.
        assert!(report.ideal_irr_db > 45.0, "{report:?}");
        assert!(
            report.real_irr_db < 40.0 && report.real_irr_db > 15.0,
            "{report:?}"
        );
        assert!(
            (report.real_irr_db - report.predicted_irr_db).abs() < 1.0,
            "sim {} vs predicted {}",
            report.real_irr_db,
            report.predicted_irr_db
        );
        assert!(report.degradation_db() > 5.0);
    }
}
