//! Spec budgeting: turning a system requirement into block-level specs,
//! the designer's move in §2.2 of the paper ("by using Fig. 5, an IC
//! circuit designer can determine an optimum set of specifications for
//! the combination of the gain balance and the phase balance").

use crate::spec::{Quantity, Requirement};
use ahfic_rf::image_rejection::{irr_analytic_db, max_phase_error_for_irr};

/// One feasible `(gain balance, max phase error)` pair for a required
/// IRR.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BalanceSpec {
    /// Fractional gain imbalance budgeted to the block.
    pub gain_err: f64,
    /// Maximum tolerable quadrature phase error (degrees).
    pub max_phase_err_deg: f64,
    /// IRR actually achieved at that corner (dB).
    pub irr_at_corner_db: f64,
}

/// Derives the feasible gain/phase balance frontier for a required
/// image-rejection ratio — the Fig. 5 inverse lookup. Infeasible gain
/// candidates are dropped.
pub fn derive_balance_budget(required_irr_db: f64, gain_candidates: &[f64]) -> Vec<BalanceSpec> {
    gain_candidates
        .iter()
        .filter_map(|&g| {
            max_phase_error_for_irr(required_irr_db, g).map(|e| BalanceSpec {
                gain_err: g,
                max_phase_err_deg: e,
                irr_at_corner_db: irr_analytic_db(e, g),
            })
        })
        .collect()
}

/// Converts a balance spec into block-level [`Requirement`]s for the 90°
/// phase-shifter block.
pub fn balance_requirements(spec: &BalanceSpec) -> Vec<Requirement> {
    vec![
        Requirement::at_most(Quantity::PhaseBalanceDeg, spec.max_phase_err_deg),
        Requirement::at_most(Quantity::GainBalance, spec.gain_err),
    ]
}

/// Generic two-parameter feasibility frontier: for each `x`, the largest
/// `y` (scanning `ys` in order) at which `metric(x, y) >= threshold`.
/// Returns `(x, best_y)` pairs, omitting x-values with no feasible y.
///
/// This is the general form of the Fig. 5 inversion for arbitrary metric
/// surfaces (measured or analytic).
pub fn feasible_frontier(
    metric: impl Fn(f64, f64) -> f64,
    xs: &[f64],
    ys: &[f64],
    threshold: f64,
) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for &x in xs {
        let mut best: Option<f64> = None;
        for &y in ys {
            if metric(x, y) >= threshold {
                best = Some(match best {
                    Some(b) if b >= y => b,
                    _ => y,
                });
            }
        }
        if let Some(y) = best {
            out.push((x, y));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_matches_closed_form() {
        let specs = derive_balance_budget(30.0, &[0.01, 0.03, 0.05]);
        assert_eq!(specs.len(), 3);
        for s in &specs {
            assert!(
                (s.irr_at_corner_db - 30.0).abs() < 1e-6,
                "corner IRR {}",
                s.irr_at_corner_db
            );
            // Tighter gain budget buys looser phase budget.
        }
        assert!(specs[0].max_phase_err_deg > specs[2].max_phase_err_deg);
    }

    #[test]
    fn infeasible_gains_dropped() {
        let specs = derive_balance_budget(30.0, &[0.01, 0.07, 0.09]);
        assert_eq!(specs.len(), 1, "7% and 9% cannot reach 30 dB");
        assert_eq!(specs[0].gain_err, 0.01);
    }

    #[test]
    fn requirements_generated() {
        let spec = BalanceSpec {
            gain_err: 0.03,
            max_phase_err_deg: 3.2,
            irr_at_corner_db: 30.0,
        };
        let reqs = balance_requirements(&spec);
        assert_eq!(reqs.len(), 2);
        assert!(reqs[0].check(2.0).is_pass());
        assert!(!reqs[0].check(4.0).is_pass());
        assert!(reqs[1].check(0.01).is_pass());
    }

    #[test]
    fn generic_frontier_on_analytic_surface() {
        let gains = [0.01, 0.05];
        let phases: Vec<f64> = (1..=100).map(|k| k as f64 * 0.1).collect();
        let frontier = feasible_frontier(|g, p| irr_analytic_db(p, g), &gains, &phases, 30.0);
        assert_eq!(frontier.len(), 2);
        // Grid frontier should approximate the closed-form inversion.
        for (g, p) in frontier {
            let exact = max_phase_error_for_irr(30.0, g).unwrap();
            assert!((p - exact).abs() <= 0.1 + 1e-9, "g={g}: {p} vs {exact}");
        }
    }

    #[test]
    fn frontier_empty_when_unreachable() {
        let frontier = feasible_frontier(|_, _| 10.0, &[1.0], &[1.0], 30.0);
        assert!(frontier.is_empty());
    }
}
