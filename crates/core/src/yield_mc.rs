//! Monte-Carlo yield analysis: the paper's §2.2 requires designers to
//! "examine the performance of this system taking IC process variations
//! into account" — this module quantifies it for the image-rejection
//! spec.
//!
//! Each sample draws a component mismatch for the 90° shifter, runs the
//! SPICE characterization of the RC-CR network, maps the resulting
//! balance through the system-level IRR relation, and scores it against
//! the requirement.

use crate::mixed::RcCrBench;
use ahfic_rf::image_rejection::irr_analytic_db;
use ahfic_spice::analysis::Options;
use ahfic_spice::error::Result;
use ahfic_trace::TraceHandle;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Yield study configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct YieldStudy {
    /// System requirement (dB).
    pub required_irr_db: f64,
    /// 1-sigma fractional resistor mismatch of the shifter.
    pub sigma_mismatch: f64,
    /// Second IF (shifter design frequency), Hz.
    pub f2_if: f64,
    /// Number of Monte-Carlo samples.
    pub samples: usize,
    /// RNG seed (reproducible).
    pub seed: u64,
}

impl YieldStudy {
    /// The paper's example: 30 dB at 45 MHz.
    pub fn paper_example(sigma_mismatch: f64) -> Self {
        YieldStudy {
            required_irr_db: 30.0,
            sigma_mismatch,
            f2_if: 45e6,
            samples: 200,
            seed: 1996,
        }
    }
}

/// Outcome of a yield study.
#[derive(Clone, Debug, PartialEq)]
pub struct YieldResult {
    /// Per-sample IRR (dB), in draw order.
    pub irr_db: Vec<f64>,
    /// Fraction of samples meeting the requirement.
    pub yield_frac: f64,
    /// Mean IRR (dB).
    pub mean_db: f64,
    /// 5th-percentile IRR (dB) — the "slow corner" number.
    pub p5_db: f64,
}

impl YieldStudy {
    /// Runs the study.
    ///
    /// # Errors
    ///
    /// Propagates SPICE characterization failures.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn run(&self) -> Result<YieldResult> {
        self.run_traced(&TraceHandle::off())
    }

    /// [`Self::run`] with telemetry: the whole study runs inside a
    /// `yield_mc` span with a `yield_mc.samples` counter, and every
    /// sample's op/AC spans land in the same sink.
    ///
    /// # Errors
    ///
    /// As [`Self::run`].
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn run_traced(&self, trace: &TraceHandle) -> Result<YieldResult> {
        assert!(self.samples > 0, "need at least one sample");
        let t = trace.tracer();
        let span = t.span("yield_mc");
        // One compiled bench for the whole study; each sample only
        // retunes R1 in place.
        let mut bench = RcCrBench::new(self.f2_if, 1e-12)?
            .with_options(Options::new().trace_handle(trace.clone()));
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut irr_db = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mismatch = self.sigma_mismatch * standard_normal(&mut rng);
            let balance = bench.characterize(mismatch)?;
            irr_db.push(irr_analytic_db(balance.phase_err_deg, balance.gain_err));
        }
        t.counter("yield_mc.samples", self.samples as f64);
        span.end();
        let pass = irr_db
            .iter()
            .filter(|&&v| v >= self.required_irr_db)
            .count();
        let mean_db = irr_db.iter().sum::<f64>() / irr_db.len() as f64;
        let mut sorted = irr_db.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite IRR"));
        let p5_db = sorted[(sorted.len() as f64 * 0.05) as usize];
        Ok(YieldResult {
            yield_frac: pass as f64 / irr_db.len() as f64,
            mean_db,
            p5_db,
            irr_db,
        })
    }
}

fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-15);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tight_process_yields_everything() {
        let r = YieldStudy {
            samples: 60,
            ..YieldStudy::paper_example(0.005)
        }
        .run()
        .unwrap();
        assert!(r.yield_frac > 0.95, "yield {}", r.yield_frac);
        assert!(r.mean_db > 40.0);
    }

    #[test]
    fn loose_process_loses_yield() {
        let tight = YieldStudy {
            samples: 80,
            ..YieldStudy::paper_example(0.01)
        }
        .run()
        .unwrap();
        let loose = YieldStudy {
            samples: 80,
            ..YieldStudy::paper_example(0.15)
        }
        .run()
        .unwrap();
        assert!(loose.yield_frac < tight.yield_frac);
        assert!(loose.p5_db < tight.p5_db);
        assert!(loose.yield_frac < 0.95, "15% sigma must hurt");
    }

    #[test]
    fn reproducible_with_seed() {
        let a = YieldStudy::paper_example(0.05).run().unwrap();
        let b = YieldStudy::paper_example(0.05).run().unwrap();
        assert_eq!(a.irr_db, b.irr_db);
    }

    #[test]
    fn statistics_are_consistent() {
        let r = YieldStudy {
            samples: 50,
            ..YieldStudy::paper_example(0.05)
        }
        .run()
        .unwrap();
        assert_eq!(r.irr_db.len(), 50);
        assert!(r.p5_db <= r.mean_db);
        assert!((0.0..=1.0).contains(&r.yield_frac));
    }
}
