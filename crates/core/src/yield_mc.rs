//! Monte-Carlo yield analysis: the paper's §2.2 requires designers to
//! "examine the performance of this system taking IC process variations
//! into account" — this module quantifies it for the image-rejection
//! spec.
//!
//! Each sample draws a component mismatch for the 90° shifter, runs the
//! SPICE characterization of the RC-CR network, maps the resulting
//! balance through the system-level IRR relation, and scores it against
//! the requirement.

use crate::mixed::{RcCrBench, ShifterBalance};
use crate::robust::{all_failed_error, SampleFailure};
use ahfic_rf::image_rejection::irr_analytic_db;
use ahfic_spice::analysis::Options;
use ahfic_spice::error::Result;
use ahfic_trace::TraceHandle;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Yield study configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct YieldStudy {
    /// System requirement (dB).
    pub required_irr_db: f64,
    /// 1-sigma fractional resistor mismatch of the shifter.
    pub sigma_mismatch: f64,
    /// Second IF (shifter design frequency), Hz.
    pub f2_if: f64,
    /// Number of Monte-Carlo samples.
    pub samples: usize,
    /// RNG seed (reproducible). Every sample derives its own child
    /// stream from `(seed, sample index)` via a splitmix64 hash, so
    /// sample `i`'s draws are identical whatever the total sample
    /// count, the defect setting, or the execution order (sequential or
    /// batched).
    pub seed: u64,
    /// Probability that a sample is a catastrophic open-`R1` defect
    /// (manufacturing open) instead of a parametric mismatch draw. A
    /// defective sample's deck fails pre-flight verification
    /// ([`ahfic_spice::error::SpiceError::LintFailed`]) and is recorded
    /// as a per-sample failure; the study continues. Because every
    /// sample draws from its own child stream, enabling defects never
    /// perturbs another sample's mismatch draw.
    pub open_defect_prob: f64,
}

impl YieldStudy {
    /// The paper's example: 30 dB at 45 MHz.
    pub fn paper_example(sigma_mismatch: f64) -> Self {
        YieldStudy {
            required_irr_db: 30.0,
            sigma_mismatch,
            f2_if: 45e6,
            samples: 200,
            seed: 1996,
            open_defect_prob: 0.0,
        }
    }
}

/// Outcome of a yield study.
///
/// Statistics are computed over the samples whose characterization
/// converged to a finite IRR; solver failures and non-finite values are
/// recorded instead of aborting the run.
#[derive(Clone, Debug, PartialEq)]
pub struct YieldResult {
    /// Per-sample IRR (dB) of the successful samples, in draw order.
    pub irr_db: Vec<f64>,
    /// Fraction of successful samples meeting the requirement.
    pub yield_frac: f64,
    /// Mean IRR (dB).
    pub mean_db: f64,
    /// 5th-percentile IRR (dB) — the "slow corner" number.
    pub p5_db: f64,
    /// Samples whose SPICE characterization failed (solver error); the
    /// run continued without them.
    pub failures: Vec<SampleFailure>,
    /// Samples that converged but produced a non-finite IRR, excluded
    /// from the statistics.
    pub non_finite: usize,
}

impl YieldResult {
    /// Total samples attempted, converged or not.
    pub fn attempted(&self) -> usize {
        self.irr_db.len() + self.failures.len() + self.non_finite
    }
}

impl YieldStudy {
    /// Runs the study.
    ///
    /// # Errors
    ///
    /// Propagates SPICE characterization failures.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn run(&self) -> Result<YieldResult> {
        self.run_traced(&TraceHandle::off())
    }

    /// [`Self::run`] with telemetry: the whole study runs inside a
    /// `yield_mc` span with `yield_mc.samples` / `.failed_samples` /
    /// `.non_finite_samples` counters, and every sample's op/AC spans
    /// land in the same sink.
    ///
    /// # Errors
    ///
    /// As [`Self::run`].
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn run_traced(&self, trace: &TraceHandle) -> Result<YieldResult> {
        self.run_with_options(Options::new().trace_handle(trace.clone()))
    }

    /// [`Self::run_traced`] with full control over the analysis options
    /// (solver choice, convergence-ladder configuration, fault
    /// injection). Per-sample solver failures do not abort the study:
    /// they are recorded in [`YieldResult::failures`] and the
    /// statistics are computed over the samples that converged.
    ///
    /// # Errors
    ///
    /// Netlist/compile errors, or [`ahfic_spice::SpiceError::Measure`] if **every**
    /// sample failed.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn run_with_options(&self, opts: Options) -> Result<YieldResult> {
        assert!(self.samples > 0, "need at least one sample");
        let t = opts.trace.tracer();
        let span = t.span("yield_mc");
        // One compiled bench for the whole study; each sample only
        // retunes R1 in place.
        let mut bench = RcCrBench::new(self.f2_if, 1e-12)?.with_options(opts.clone());
        // Pre-draw every sample's parameters from its own child stream:
        // sample i's draws depend only on (seed, i), never on the
        // defect setting, the total sample count, or execution order.
        let draws: Vec<(f64, bool)> = (0..self.samples)
            .map(|i| {
                let mut rng = sample_rng(self.seed, i as u64);
                let mismatch = self.sigma_mismatch * standard_normal(&mut rng);
                let defective =
                    self.open_defect_prob > 0.0 && rng.random::<f64>() < self.open_defect_prob;
                (mismatch, defective)
            })
            .collect();
        let mut irr_db = Vec::with_capacity(self.samples);
        let mut failures: Vec<SampleFailure> = Vec::new();
        let mut non_finite = 0usize;
        let mut record = |i: usize,
                          mismatch: f64,
                          defective: bool,
                          outcome: Result<ShifterBalance>| match outcome {
            Ok(balance) => {
                let irr = irr_analytic_db(balance.phase_err_deg, balance.gain_err);
                if irr.is_finite() {
                    irr_db.push(irr);
                } else {
                    non_finite += 1;
                }
            }
            Err(e) => {
                let label = if defective {
                    "open-R1 defect".to_string()
                } else {
                    format!("mismatch {mismatch:+.4}")
                };
                failures.push(SampleFailure::new(i, label, e));
            }
        };
        if let Some(lanes) = opts.batch.lanes() {
            // Batched path: the healthy samples run through the batched
            // variant engine (and its sample pool) in draw order, while
            // defective decks are lint-rejected one by one exactly as
            // in the sequential path.
            let params: Vec<f64> = draws.iter().filter(|d| !d.1).map(|d| d.0).collect();
            let mut healthy = bench.characterize_many(&params, lanes).into_iter();
            for (i, &(mismatch, defective)) in draws.iter().enumerate() {
                let outcome = if defective {
                    bench.characterize_open_r1()
                } else {
                    healthy.next().unwrap_or_else(|| {
                        Err(ahfic_spice::error::SpiceError::Measure(
                            "batched yield sample result missing".into(),
                        ))
                    })
                };
                record(i, mismatch, defective, outcome);
            }
        } else {
            for (i, &(mismatch, defective)) in draws.iter().enumerate() {
                let outcome = if defective {
                    bench.characterize_open_r1()
                } else {
                    bench.characterize(mismatch)
                };
                record(i, mismatch, defective, outcome);
            }
        }
        t.counter("yield_mc.samples", self.samples as f64);
        t.counter("yield_mc.failed_samples", failures.len() as f64);
        t.counter("yield_mc.non_finite_samples", non_finite as f64);
        span.end();
        if irr_db.is_empty() {
            if failures.is_empty() {
                return Err(ahfic_spice::error::SpiceError::Measure(format!(
                    "all {non_finite} yield samples produced a non-finite IRR"
                )));
            }
            return Err(all_failed_error("yield samples", &failures));
        }
        let pass = irr_db
            .iter()
            .filter(|&&v| v >= self.required_irr_db)
            .count();
        let mean_db = irr_db.iter().sum::<f64>() / irr_db.len() as f64;
        let mut sorted = irr_db.clone();
        sorted.sort_by(f64::total_cmp);
        let p5_db = sorted[(sorted.len() as f64 * 0.05) as usize];
        Ok(YieldResult {
            yield_frac: pass as f64 / irr_db.len() as f64,
            mean_db,
            p5_db,
            irr_db,
            failures,
            non_finite,
        })
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash used to derive
/// statistically independent child seeds from `(study seed, sample
/// index)`.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Child RNG for one Monte-Carlo sample: depends only on the study seed
/// and the sample index, making per-sample draws order-independent.
fn sample_rng(seed: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix64(seed ^ splitmix64(index)))
}

fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-15);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tight_process_yields_everything() {
        let r = YieldStudy {
            samples: 60,
            ..YieldStudy::paper_example(0.005)
        }
        .run()
        .unwrap();
        assert!(r.yield_frac > 0.95, "yield {}", r.yield_frac);
        assert!(r.mean_db > 40.0);
    }

    #[test]
    fn loose_process_loses_yield() {
        let tight = YieldStudy {
            samples: 80,
            ..YieldStudy::paper_example(0.01)
        }
        .run()
        .unwrap();
        let loose = YieldStudy {
            samples: 80,
            ..YieldStudy::paper_example(0.15)
        }
        .run()
        .unwrap();
        assert!(loose.yield_frac < tight.yield_frac);
        assert!(loose.p5_db < tight.p5_db);
        assert!(loose.yield_frac < 0.95, "15% sigma must hurt");
    }

    #[test]
    fn reproducible_with_seed() {
        let a = YieldStudy::paper_example(0.05).run().unwrap();
        let b = YieldStudy::paper_example(0.05).run().unwrap();
        assert_eq!(a.irr_db, b.irr_db);
    }

    #[test]
    fn injected_failures_degrade_gracefully() {
        use ahfic_spice::analysis::{FaultInjector, FaultKind, LadderConfig};
        use std::sync::Arc;
        // Force every 7th OP solve to report non-convergence, with the
        // recovery ladder disabled so the failure reaches the sample
        // level: those samples must be recorded as failures, everything
        // else must still produce statistics.
        let inj = Arc::new(FaultInjector::recurring(FaultKind::NoConvergence, 3, 7));
        let no_ladder = LadderConfig {
            damping: false,
            gmin_stepping: false,
            source_stepping: false,
            ptran: false,
        };
        let study = YieldStudy {
            samples: 40,
            ..YieldStudy::paper_example(0.05)
        };
        let r = study
            .run_with_options(Options::new().fault_injector(&inj).ladder(no_ladder))
            .unwrap();
        assert!(!r.failures.is_empty(), "injector never fired");
        assert_eq!(r.attempted(), 40);
        assert_eq!(r.irr_db.len() + r.failures.len() + r.non_finite, 40);
        assert!((0.0..=1.0).contains(&r.yield_frac));
        // The clean run sees strictly more samples.
        let clean = study.run().unwrap();
        assert!(clean.failures.is_empty());
        assert!(clean.irr_db.len() > r.irr_db.len());
    }

    #[test]
    fn open_defects_are_lint_rejected_and_recorded_not_fatal() {
        let study = YieldStudy {
            samples: 40,
            open_defect_prob: 0.3,
            ..YieldStudy::paper_example(0.05)
        };
        let r = study.run().unwrap();
        // Defective samples show up as recorded failures carrying the
        // pre-flight LintFailed error; the healthy samples still
        // produce statistics.
        assert!(!r.failures.is_empty(), "30% defect rate over 40 samples");
        assert!(!r.irr_db.is_empty());
        assert_eq!(r.attempted(), 40);
        for f in &r.failures {
            assert_eq!(f.label, "open-R1 defect");
            assert!(
                matches!(f.error, ahfic_spice::error::SpiceError::LintFailed(_)),
                "{:?}",
                f.error
            );
            assert!(f.error.to_string().contains("floating"), "{}", f.error);
        }
        // Defect draws are part of the seeded stream: reproducible.
        let again = study.run().unwrap();
        assert_eq!(r.irr_db, again.irr_db);
        assert_eq!(r.failures.len(), again.failures.len());
    }

    #[test]
    fn zero_defect_prob_reproduces_the_defect_free_stream() {
        let base = YieldStudy {
            samples: 30,
            ..YieldStudy::paper_example(0.05)
        };
        let with_field = YieldStudy {
            open_defect_prob: 0.0,
            ..base
        };
        assert_eq!(base.run().unwrap().irr_db, with_field.run().unwrap().irr_db);
    }

    /// Per-sample child streams make draws order-independent: a short
    /// study is a strict prefix of a longer one, and enabling defects
    /// leaves the surviving samples' IRRs untouched.
    #[test]
    fn per_sample_streams_are_order_independent() {
        let short = YieldStudy {
            samples: 10,
            ..YieldStudy::paper_example(0.05)
        }
        .run()
        .unwrap();
        let long = YieldStudy {
            samples: 30,
            ..YieldStudy::paper_example(0.05)
        }
        .run()
        .unwrap();
        assert_eq!(short.irr_db[..], long.irr_db[..10]);
        // With defects enabled, the non-defective samples draw exactly
        // the same mismatches: their IRRs match the defect-free run at
        // the surviving indices.
        let defects = YieldStudy {
            samples: 30,
            open_defect_prob: 0.25,
            ..YieldStudy::paper_example(0.05)
        }
        .run()
        .unwrap();
        assert!(!defects.failures.is_empty(), "25% defects over 30 samples");
        let failed: std::collections::HashSet<usize> =
            defects.failures.iter().map(|f| f.index).collect();
        let surviving: Vec<f64> = long
            .irr_db
            .iter()
            .enumerate()
            .filter(|(i, _)| !failed.contains(i))
            .map(|(_, &v)| v)
            .collect();
        assert_eq!(defects.irr_db, surviving);
    }

    /// The batched engine reproduces the sequential study: same draw
    /// order, same failure indices, statistics equal to far below the
    /// Newton tolerance.
    #[test]
    fn batched_study_matches_sequential_statistics() {
        use ahfic_spice::analysis::BatchMode;
        let study = YieldStudy {
            samples: 64,
            open_defect_prob: 0.15,
            ..YieldStudy::paper_example(0.1)
        };
        let seq = study.run().unwrap();
        let bat = study
            .run_with_options(Options::new().batch(BatchMode::Lanes(8)))
            .unwrap();
        assert_eq!(seq.irr_db.len(), bat.irr_db.len());
        let seq_failed: Vec<usize> = seq.failures.iter().map(|f| f.index).collect();
        let bat_failed: Vec<usize> = bat.failures.iter().map(|f| f.index).collect();
        assert_eq!(seq_failed, bat_failed);
        for (s, b) in seq.irr_db.iter().zip(&bat.irr_db) {
            assert!((s - b).abs() <= 1e-5 * s.abs().max(1.0), "{s} vs {b}");
        }
        assert!((seq.mean_db - bat.mean_db).abs() <= 1e-5 * seq.mean_db.abs().max(1.0));
        assert!((seq.p5_db - bat.p5_db).abs() <= 1e-5 * seq.p5_db.abs().max(1.0));
        assert_eq!(seq.yield_frac, bat.yield_frac);
    }

    #[test]
    fn statistics_are_consistent() {
        let r = YieldStudy {
            samples: 50,
            ..YieldStudy::paper_example(0.05)
        }
        .run()
        .unwrap();
        assert_eq!(r.irr_db.len(), 50);
        assert!(r.p5_db <= r.mean_db);
        assert!((0.0..=1.0).contains(&r.yield_frac));
    }
}
