//! The top-down design methodology for analog high-frequency ICs —
//! the primary contribution of the DAC'96 paper, as an executable
//! library.
//!
//! The methodology rests on three legs, each provided by a substrate
//! crate and tied together here:
//!
//! 1. **Top-down behavioral design** (`ahfic-ahdl` + `ahfic-rf`): whole
//!    systems are simulated at the AHDL level; [`budget`] turns system
//!    specs into block specs (the Fig. 5 inversion), and [`hierarchy`]
//!    tracks every function block with swappable behavioral/transistor
//!    views.
//! 2. **Circuit re-use** (`ahfic-celldb`): [`hierarchy::DesignBlock::from_cell`]
//!    pulls validated cells straight into a design.
//! 3. **Accurate devices** (`ahfic-spice` + `ahfic-geom`): [`charac`]
//!    characterizes transistor-level blocks back into calibrated
//!    behavioral models, and [`mixed`] re-runs the system with real
//!    circuit behaviour substituted — the paper's ideal-vs-real
//!    comparison.
//!
//! [`flow::TopDownFlow`] chains all six stages over the paper's worked
//! example (a CATV double-super tuner with a 30 dB image-rejection
//! requirement) and produces a [`flow::FlowReport`].
//!
//! Every stage is observable: install a [`trace`] sink (for example
//! [`trace::InMemorySink`]) via [`flow::TopDownFlow::with_trace`] and
//! render the result with [`report::render_trace_summary`].
//!
//! # Example
//!
//! ```no_run
//! use ahfic::flow::TopDownFlow;
//! use ahfic_celldb::seed::seed_library;
//! let db = seed_library()?;
//! let report = TopDownFlow::paper_example().run(&db)?;
//! assert!(report.final_pass);
//! println!("{}", ahfic::report::render_text(&report));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// Batch studies must degrade gracefully, never panic: `unwrap`/`expect`
// in non-test code warns (CI promotes warnings to errors), with local
// `#[allow]`s where an invariant genuinely guarantees success.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod budget;
pub mod charac;
pub mod cosim;
pub mod flow;
pub mod hierarchy;
pub mod mixed;
pub mod report;
pub mod robust;
pub mod spec;
pub mod yield_mc;

pub use ahfic_trace as trace;

pub use flow::{FlowReport, TopDownFlow};
pub use hierarchy::{BlockView, Design, DesignBlock, ViewLevel};
pub use report::{render_text, render_trace_summary};
pub use spec::{Quantity, Requirement, SpecStatus};
