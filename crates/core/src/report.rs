//! Text rendering of flow reports and trace summaries.

use crate::flow::FlowReport;
use ahfic_trace::{summarize_top_level, TraceRecord};
use std::fmt::Write as _;

/// Renders a flow report as a plain-text summary table.
pub fn render_text(report: &FlowReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Top-down design flow report ==");
    for (k, stage) in report.stages.iter().enumerate() {
        let _ = writeln!(
            out,
            "{} [{}] {:<24} {}",
            k + 1,
            if stage.passed { "PASS" } else { "FAIL" },
            stage.name,
            stage.summary
        );
    }
    if let Some(budget) = &report.chosen_budget {
        let _ = writeln!(
            out,
            "block budget: gain balance <= {:.1}%, phase balance <= {:.2} deg",
            budget.gain_err * 100.0,
            budget.max_phase_err_deg
        );
    }
    if let Some(mixed) = &report.mixed {
        let _ = writeln!(
            out,
            "mixed-level: ideal {:.1} dB -> real {:.1} dB (predicted {:.1} dB)",
            mixed.ideal_irr_db, mixed.real_irr_db, mixed.predicted_irr_db
        );
    }
    let _ = writeln!(
        out,
        "verdict: {}",
        if report.final_pass {
            "DESIGN MEETS SYSTEM SPEC"
        } else {
            "DESIGN DOES NOT MEET SYSTEM SPEC"
        }
    );
    out
}

/// Renders the top-level spans of a trace as a plain-text table: wall
/// time plus the summed Newton-iteration, factorization and solve
/// counters attributed to each span (nested spans roll up into their
/// enclosing top-level span).
pub fn render_trace_summary(records: &[TraceRecord]) -> String {
    let spans = summarize_top_level(records);
    let mut out = String::new();
    let _ = writeln!(out, "== Trace summary ==");
    if spans.is_empty() {
        let _ = writeln!(out, "(no spans recorded)");
        return out;
    }
    let _ = writeln!(
        out,
        "{:<28} {:>10} {:>8} {:>8} {:>8}",
        "span", "wall ms", "newton", "factor", "solve"
    );
    for s in &spans {
        let sum_suffix = |suffix: &str| -> i64 {
            s.counters
                .iter()
                .filter(|(n, _)| n.ends_with(suffix))
                .map(|(_, v)| v)
                .sum::<f64>()
                .round() as i64
        };
        let _ = writeln!(
            out,
            "{:<28} {:>10.2} {:>8} {:>8} {:>8}",
            s.name,
            s.wall_seconds * 1e3,
            sum_suffix(".newton_iterations"),
            sum_suffix(".factorizations"),
            sum_suffix(".solves"),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::TopDownFlow;
    use ahfic_celldb::seed::seed_library;
    use ahfic_trace::InMemorySink;
    use std::sync::Arc;

    #[test]
    fn report_renders_all_stages() {
        let db = seed_library().unwrap();
        let report = TopDownFlow::paper_example().run(&db).unwrap();
        let text = render_text(&report);
        assert!(text.contains("system-spec"));
        assert!(text.contains("system-verification"));
        assert!(text.contains("DESIGN MEETS SYSTEM SPEC"));
        assert!(text.contains("block budget"));
        assert_eq!(text.matches("PASS").count(), 6, "{text}");
    }

    #[test]
    fn trace_summary_tabulates_flow_stages() {
        let db = seed_library().unwrap();
        let sink = Arc::new(InMemorySink::new());
        TopDownFlow::paper_example()
            .with_trace(&sink)
            .run(&db)
            .unwrap();
        let text = render_trace_summary(&sink.records());
        for stage in [
            "flow.system-spec",
            "flow.behavioral-exploration",
            "flow.spec-budgeting",
            "flow.cell-reuse",
            "flow.mixed-level",
            "flow.system-verification",
        ] {
            assert!(text.contains(stage), "{text}");
        }
        assert!(text.contains("newton"), "{text}");
    }

    #[test]
    fn trace_summary_of_nothing_is_graceful() {
        let text = render_trace_summary(&[]);
        assert!(text.contains("no spans recorded"));
    }
}
