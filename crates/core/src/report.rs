//! Text rendering of flow reports.

use crate::flow::FlowReport;
use std::fmt::Write as _;

/// Renders a flow report as a plain-text summary table.
pub fn render_text(report: &FlowReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Top-down design flow report ==");
    for (k, stage) in report.stages.iter().enumerate() {
        let _ = writeln!(
            out,
            "{} [{}] {:<24} {}",
            k + 1,
            if stage.passed { "PASS" } else { "FAIL" },
            stage.name,
            stage.summary
        );
    }
    if let Some(budget) = &report.chosen_budget {
        let _ = writeln!(
            out,
            "block budget: gain balance <= {:.1}%, phase balance <= {:.2} deg",
            budget.gain_err * 100.0,
            budget.max_phase_err_deg
        );
    }
    if let Some(mixed) = &report.mixed {
        let _ = writeln!(
            out,
            "mixed-level: ideal {:.1} dB -> real {:.1} dB (predicted {:.1} dB)",
            mixed.ideal_irr_db, mixed.real_irr_db, mixed.predicted_irr_db
        );
    }
    let _ = writeln!(
        out,
        "verdict: {}",
        if report.final_pass {
            "DESIGN MEETS SYSTEM SPEC"
        } else {
            "DESIGN DOES NOT MEET SYSTEM SPEC"
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::TopDownFlow;
    use ahfic_celldb::seed::seed_library;

    #[test]
    fn report_renders_all_stages() {
        let db = seed_library().unwrap();
        let report = TopDownFlow::paper_example().run(&db).unwrap();
        let text = render_text(&report);
        assert!(text.contains("system-spec"));
        assert!(text.contains("system-verification"));
        assert!(text.contains("DESIGN MEETS SYSTEM SPEC"));
        assert!(text.contains("block budget"));
        assert_eq!(text.matches("PASS").count(), 6, "{text}");
    }
}
