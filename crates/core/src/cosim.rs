//! AHDL-in-SPICE co-simulation: wrap a *memoryless* AHDL module as a
//! behavioral voltage source inside the circuit simulator.
//!
//! This is the downward-facing twin of [`crate::mixed`]: instead of
//! back-annotating circuit reality into the behavioral system, an AHDL
//! block description is dropped straight into a transistor-level netlist
//! — the designer can keep most of the IC behavioral while detailing one
//! block at the transistor level, exactly the Fig. 1 workflow.

use ahfic_ahdl::block::Block;
use ahfic_ahdl::eval::CompiledModule;
use ahfic_spice::circuit::BehavioralFn;
use ahfic_trace::TraceHandle;
use std::fmt;
use std::sync::Mutex;

/// Error converting an AHDL module into a behavioral source.
#[derive(Clone, Debug, PartialEq)]
pub enum CosimError {
    /// The module keeps state (`idt`/`ddt`/`delay`), which a per-Newton
    /// re-evaluated source cannot support.
    Stateful {
        /// Module name.
        module: String,
        /// State slots found.
        states: usize,
    },
    /// The module must have exactly one output.
    Arity {
        /// Module name.
        module: String,
        /// Outputs found.
        outputs: usize,
    },
    /// Instantiation failed (bad parameter override).
    Instantiate(String),
}

impl fmt::Display for CosimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CosimError::Stateful { module, states } => write!(
                f,
                "module {module} uses {states} stateful operator(s); behavioral sources must be memoryless"
            ),
            CosimError::Arity { module, outputs } => {
                write!(f, "module {module} has {outputs} outputs, need exactly 1")
            }
            CosimError::Instantiate(m) => write!(f, "instantiation failed: {m}"),
        }
    }
}

impl std::error::Error for CosimError {}

/// Wraps a compiled AHDL module as a [`BehavioralFn`] for
/// [`ahfic_spice::circuit::Circuit::behavioral_vsource`].
///
/// The module's inputs become the source's controlling nodes (in input
/// declaration order); its single output is the source voltage.
///
/// # Errors
///
/// [`CosimError::Stateful`] for modules using `idt`/`ddt`/`delay`,
/// [`CosimError::Arity`] unless there is exactly one output,
/// [`CosimError::Instantiate`] for unknown parameter overrides.
pub fn ahdl_behavioral_fn(
    module: &CompiledModule,
    params: &[(&str, f64)],
) -> Result<BehavioralFn, CosimError> {
    ahdl_behavioral_fn_traced(module, params, &TraceHandle::off())
}

/// [`ahdl_behavioral_fn`] with telemetry: emits a `cosim.wrap` event and
/// a `cosim.controls` counter (number of controlling nodes) when the
/// module is accepted.
///
/// # Errors
///
/// As [`ahdl_behavioral_fn`].
pub fn ahdl_behavioral_fn_traced(
    module: &CompiledModule,
    params: &[(&str, f64)],
    trace: &TraceHandle,
) -> Result<BehavioralFn, CosimError> {
    if module.num_states() != 0 {
        return Err(CosimError::Stateful {
            module: module.name().to_string(),
            states: module.num_states(),
        });
    }
    if module.outputs().len() != 1 {
        return Err(CosimError::Arity {
            module: module.name().to_string(),
            outputs: module.outputs().len(),
        });
    }
    let inst = module
        .instantiate(params)
        .map_err(|e| CosimError::Instantiate(e.to_string()))?;
    let t = trace.tracer();
    t.event("cosim.wrap");
    t.counter("cosim.controls", module.inputs().len() as f64);
    let cell = Mutex::new(inst);
    Ok(BehavioralFn::new(move |controls: &[f64]| {
        let mut out = [0.0];
        // Memoryless: time and dt are irrelevant.
        // A poisoned mutex means a previous tick panicked; propagating
        // the panic is the only sound option for an opaque closure.
        #[allow(clippy::expect_used)]
        cell.lock()
            .expect("behavioral eval panicked")
            .tick(0.0, 1.0, controls, &mut out);
        out[0]
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahfic_spice::analysis::Session;
    use ahfic_spice::circuit::Circuit;

    #[test]
    fn ahdl_limiter_inside_spice_netlist() {
        let module = CompiledModule::compile(
            "module lim(x, y) { input x; output y;
             parameter real c = 1.0;
             analog { V(y) <- c * tanh(V(x) / c); } }",
        )
        .unwrap();
        let f = ahdl_behavioral_fn(&module, &[("c", 0.5)]).unwrap();
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::gnd(), 3.0);
        ckt.behavioral_vsource("B1", b, Circuit::gnd(), &[a], f);
        ckt.resistor("RL", b, Circuit::gnd(), 1e3);
        let sess = Session::compile(&ckt).unwrap();
        let r = sess.op().unwrap();
        let expect = 0.5 * (3.0f64 / 0.5).tanh();
        assert!((sess.prepared().voltage(r.x(), b) - expect).abs() < 1e-9);
    }

    #[test]
    fn two_input_ahdl_mixer_inside_spice() {
        let module = CompiledModule::compile(
            "module mul(a, b, y) { input a, b; output y;
             analog { V(y) <- V(a) * V(b); } }",
        )
        .unwrap();
        let f = ahdl_behavioral_fn(&module, &[]).unwrap();
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let y = ckt.node("y");
        ckt.vsource("VA", a, Circuit::gnd(), 2.0);
        ckt.vsource("VB", b, Circuit::gnd(), -1.5);
        ckt.behavioral_vsource("B1", y, Circuit::gnd(), &[a, b], f);
        ckt.resistor("RL", y, Circuit::gnd(), 1e3);
        let sess = Session::compile(&ckt).unwrap();
        let r = sess.op().unwrap();
        assert!((sess.prepared().voltage(r.x(), y) + 3.0).abs() < 1e-9);
    }

    #[test]
    fn stateful_module_rejected() {
        let module = CompiledModule::compile(
            "module i(x, y) { input x; output y;
             analog { V(y) <- idt(V(x)); } }",
        )
        .unwrap();
        assert!(matches!(
            ahdl_behavioral_fn(&module, &[]),
            Err(CosimError::Stateful { .. })
        ));
    }

    #[test]
    fn multi_output_module_rejected() {
        let module = CompiledModule::compile(
            "module s(x, a, b) { input x; output a, b;
             analog { V(a) <- V(x); V(b) <- -V(x); } }",
        )
        .unwrap();
        assert!(matches!(
            ahdl_behavioral_fn(&module, &[]),
            Err(CosimError::Arity { .. })
        ));
    }

    #[test]
    fn bad_param_rejected() {
        let module = CompiledModule::compile(
            "module g(x, y) { input x; output y;
             analog { V(y) <- V(x); } }",
        )
        .unwrap();
        assert!(matches!(
            ahdl_behavioral_fn(&module, &[("nope", 1.0)]),
            Err(CosimError::Instantiate(_))
        ));
    }
}
