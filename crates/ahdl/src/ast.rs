//! Abstract syntax tree of the AHDL subset.

/// A parsed AHDL module.
///
/// ```text
/// module mixer(rf, lo, if_out) {
///     input rf, lo;
///     output if_out;
///     parameter real gain = 1.0;
///     analog {
///         V(if_out) <- gain * V(rf) * V(lo);
///     }
/// }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Ports in declaration order.
    pub ports: Vec<String>,
    /// Subset of ports declared `input`.
    pub inputs: Vec<String>,
    /// Subset of ports declared `output`.
    pub outputs: Vec<String>,
    /// Parameters with default values.
    pub params: Vec<Param>,
    /// Statements of the `analog` block.
    pub body: Vec<Stmt>,
}

/// A module parameter (`parameter real g = 2.0;`).
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Default value.
    pub default: f64,
}

/// Statements allowed inside `analog { ... }`.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `real x = expr;` local binding (per-tick, not persistent).
    Local {
        /// Variable name.
        name: String,
        /// Initializer.
        value: Expr,
    },
    /// `V(port) <- expr;`
    Assign {
        /// Output port name.
        port: String,
        /// Value expression.
        value: Expr,
    },
    /// `if (cond) { ... } else { ... }`
    If {
        /// Condition (non-zero = true).
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Optional else branch.
        else_body: Vec<Stmt>,
    },
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Number(f64),
    /// Parameter or local variable reference.
    Var(String),
    /// Port voltage read `V(port)`.
    PortV(String),
    /// `$time` — current simulation time (s).
    Time,
    /// `$dt` — current timestep (s).
    Dt,
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Ternary `cond ? a : b`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Pure math function call (`sin`, `exp`, …).
    Call(MathFn, Vec<Expr>),
    /// `idt(expr)` or `idt(expr, initial)` — running integral; `state`
    /// indexes the instance state slot (assigned by the checker).
    Idt {
        /// Integrand.
        arg: Box<Expr>,
        /// Initial value (defaults to 0).
        initial: Option<Box<Expr>>,
        /// State slot.
        state: usize,
    },
    /// `ddt(expr)` — time derivative (backward difference).
    Ddt {
        /// Differentiand.
        arg: Box<Expr>,
        /// State slot (stores previous value).
        state: usize,
    },
    /// `delay(expr, tdelay)` — transport delay; `tdelay` must be a
    /// constant expression.
    Delay {
        /// Delayed expression.
        arg: Box<Expr>,
        /// Delay in seconds (resolved constant).
        seconds: f64,
        /// State slot (ring buffer id).
        state: usize,
    },
}

/// Pure math functions available in expressions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MathFn {
    /// `sin(x)`
    Sin,
    /// `cos(x)`
    Cos,
    /// `tan(x)`
    Tan,
    /// `atan(x)`
    Atan,
    /// `atan2(y, x)`
    Atan2,
    /// `tanh(x)`
    Tanh,
    /// `exp(x)`
    Exp,
    /// `limexp(x)` (linearized above 80)
    Limexp,
    /// `ln(x)`
    Ln,
    /// `log(x)` — base 10
    Log,
    /// `sqrt(x)`
    Sqrt,
    /// `abs(x)`
    Abs,
    /// `pow(x, y)`
    Pow,
    /// `min(x, y)`
    Min,
    /// `max(x, y)`
    Max,
    /// `floor(x)`
    Floor,
    /// `ceil(x)`
    Ceil,
}

impl MathFn {
    /// Looks up a function by name.
    pub fn by_name(name: &str) -> Option<MathFn> {
        Some(match name {
            "sin" => MathFn::Sin,
            "cos" => MathFn::Cos,
            "tan" => MathFn::Tan,
            "atan" => MathFn::Atan,
            "atan2" => MathFn::Atan2,
            "tanh" => MathFn::Tanh,
            "exp" => MathFn::Exp,
            "limexp" => MathFn::Limexp,
            "ln" => MathFn::Ln,
            "log" => MathFn::Log,
            "sqrt" => MathFn::Sqrt,
            "abs" => MathFn::Abs,
            "pow" => MathFn::Pow,
            "min" => MathFn::Min,
            "max" => MathFn::Max,
            "floor" => MathFn::Floor,
            "ceil" => MathFn::Ceil,
            _ => return None,
        })
    }

    /// Number of arguments the function takes.
    pub fn arity(self) -> usize {
        match self {
            MathFn::Atan2 | MathFn::Pow | MathFn::Min | MathFn::Max => 2,
            _ => 1,
        }
    }

    /// Evaluates the function.
    pub fn eval(self, args: &[f64]) -> f64 {
        match self {
            MathFn::Sin => args[0].sin(),
            MathFn::Cos => args[0].cos(),
            MathFn::Tan => args[0].tan(),
            MathFn::Atan => args[0].atan(),
            MathFn::Atan2 => args[0].atan2(args[1]),
            MathFn::Tanh => args[0].tanh(),
            MathFn::Exp => args[0].exp(),
            MathFn::Limexp => {
                if args[0] < 80.0 {
                    args[0].exp()
                } else {
                    80f64.exp() * (1.0 + args[0] - 80.0)
                }
            }
            MathFn::Ln => args[0].ln(),
            MathFn::Log => args[0].log10(),
            MathFn::Sqrt => args[0].sqrt(),
            MathFn::Abs => args[0].abs(),
            MathFn::Pow => args[0].powf(args[1]),
            MathFn::Min => args[0].min(args[1]),
            MathFn::Max => args[0].max(args[1]),
            MathFn::Floor => args[0].floor(),
            MathFn::Ceil => args[0].ceil(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_lookup_and_arity() {
        assert_eq!(MathFn::by_name("sin"), Some(MathFn::Sin));
        assert_eq!(MathFn::by_name("pow").unwrap().arity(), 2);
        assert_eq!(MathFn::by_name("cos").unwrap().arity(), 1);
        assert_eq!(MathFn::by_name("nope"), None);
    }

    #[test]
    fn fn_eval_spot_checks() {
        assert!((MathFn::Pow.eval(&[2.0, 10.0]) - 1024.0).abs() < 1e-9);
        assert!((MathFn::Atan2.eval(&[1.0, 1.0]) - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
        assert_eq!(MathFn::Max.eval(&[1.0, 3.0]), 3.0);
        assert_eq!(MathFn::Floor.eval(&[1.7]), 1.0);
        assert!(MathFn::Limexp.eval(&[1000.0]).is_finite());
        assert!((MathFn::Limexp.eval(&[1.0]) - 1f64.exp()).abs() < 1e-12);
    }
}
