//! Recursive-descent parser for the AHDL subset.

use crate::ast::{BinOp, Expr, MathFn, Module, Param, Stmt, UnOp};
use crate::error::{AhdlError, Result};
use crate::lex::{lex, Token, TokenKind};

/// Parses AHDL source containing one or more modules.
///
/// # Errors
///
/// Returns [`AhdlError::Lex`] or [`AhdlError::Parse`] with line
/// information.
///
/// # Example
///
/// ```
/// let src = "module amp(in, out) { input in; output out;
///            parameter real gain = 2.0;
///            analog { V(out) <- gain * V(in); } }";
/// let modules = ahfic_ahdl::parse::parse(src)?;
/// assert_eq!(modules[0].name, "amp");
/// # Ok::<(), ahfic_ahdl::error::AhdlError>(())
/// ```
pub fn parse(src: &str) -> Result<Vec<Module>> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        state_counter: 0,
    };
    let mut modules = Vec::new();
    while !p.at_eof() {
        modules.push(p.module()?);
    }
    Ok(modules)
}

/// Parses a single module (errors if the source holds none or several).
///
/// # Errors
///
/// As [`parse`], plus a parse error when module count != 1.
pub fn parse_module(src: &str) -> Result<Module> {
    let mut mods = parse(src)?;
    if mods.len() != 1 {
        return Err(AhdlError::Parse {
            line: 1,
            message: format!("expected exactly one module, found {}", mods.len()),
        });
    }
    Ok(mods.remove(0))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    state_counter: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(AhdlError::Parse {
            line: self.line(),
            message: message.into(),
        })
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => self.err(format!("expected {what}, found {other:?}")),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<()> {
        match self.peek() {
            TokenKind::Ident(name) if name == kw => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected `{kw}`, found {other:?}")),
        }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(name) if name == kw)
    }

    fn module(&mut self) -> Result<Module> {
        self.state_counter = 0;
        self.keyword("module")?;
        let name = self.ident("module name")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut ports = vec![self.ident("port name")?];
        while matches!(self.peek(), TokenKind::Comma) {
            self.bump();
            ports.push(self.ident("port name")?);
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        self.expect(&TokenKind::LBrace, "`{`")?;

        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        let mut params = Vec::new();
        loop {
            if self.is_keyword("input") || self.is_keyword("output") {
                let is_input = self.is_keyword("input");
                self.bump();
                loop {
                    let port = self.ident("port name")?;
                    if is_input {
                        inputs.push(port);
                    } else {
                        outputs.push(port);
                    }
                    if matches!(self.peek(), TokenKind::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(&TokenKind::Semi, "`;`")?;
            } else if self.is_keyword("node") {
                // Compatibility with the paper's `node [V, I] IN, OUT;`
                // style: consume tokens up to the semicolon.
                self.bump();
                while !matches!(self.peek(), TokenKind::Semi | TokenKind::Eof) {
                    self.bump();
                }
                self.expect(&TokenKind::Semi, "`;`")?;
            } else if self.is_keyword("parameter") {
                self.bump();
                self.keyword("real")?;
                let pname = self.ident("parameter name")?;
                self.expect(&TokenKind::Assign, "`=`")?;
                let expr = self.expr()?;
                let default = const_eval(&expr).ok_or_else(|| AhdlError::Parse {
                    line: self.line(),
                    message: format!("parameter {pname} default must be a constant"),
                })?;
                self.expect(&TokenKind::Semi, "`;`")?;
                params.push(Param {
                    name: pname,
                    default,
                });
            } else {
                break;
            }
        }

        self.keyword("analog")?;
        self.expect(&TokenKind::LBrace, "`{`")?;
        let body = self.stmt_block()?;
        self.expect(&TokenKind::RBrace, "`}` closing module")?;
        Ok(Module {
            name,
            ports,
            inputs,
            outputs,
            params,
            body,
        })
    }

    /// Parses statements until the closing `}` (which is consumed).
    fn stmt_block(&mut self) -> Result<Vec<Stmt>> {
        let mut stmts = Vec::new();
        loop {
            match self.peek().clone() {
                TokenKind::RBrace => {
                    self.bump();
                    return Ok(stmts);
                }
                TokenKind::Eof => return self.err("unexpected end of input in block"),
                _ => stmts.push(self.stmt()?),
            }
        }
    }

    fn stmt(&mut self) -> Result<Stmt> {
        if self.is_keyword("real") {
            self.bump();
            let name = self.ident("local variable name")?;
            self.expect(&TokenKind::Assign, "`=`")?;
            let value = self.expr()?;
            self.expect(&TokenKind::Semi, "`;`")?;
            return Ok(Stmt::Local { name, value });
        }
        if self.is_keyword("if") {
            self.bump();
            self.expect(&TokenKind::LParen, "`(`")?;
            let cond = self.expr()?;
            self.expect(&TokenKind::RParen, "`)`")?;
            self.expect(&TokenKind::LBrace, "`{`")?;
            let then_body = self.stmt_block()?;
            let else_body = if self.is_keyword("else") {
                self.bump();
                self.expect(&TokenKind::LBrace, "`{`")?;
                self.stmt_block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then_body,
                else_body,
            });
        }
        if self.is_keyword("V") {
            self.bump();
            self.expect(&TokenKind::LParen, "`(`")?;
            let port = self.ident("port name")?;
            self.expect(&TokenKind::RParen, "`)`")?;
            self.expect(&TokenKind::Arrow, "`<-`")?;
            let value = self.expr()?;
            self.expect(&TokenKind::Semi, "`;`")?;
            return Ok(Stmt::Assign { port, value });
        }
        self.err("expected a statement (`real`, `if` or `V(port) <-`)")
    }

    fn expr(&mut self) -> Result<Expr> {
        let cond = self.or_expr()?;
        if matches!(self.peek(), TokenKind::Question) {
            self.bump();
            let a = self.expr()?;
            self.expect(&TokenKind::Colon, "`:`")?;
            let b = self.expr()?;
            return Ok(Expr::Cond(Box::new(cond), Box::new(a), Box::new(b)));
        }
        Ok(cond)
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), TokenKind::OrOr) {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.cmp_expr()?;
        while matches!(self.peek(), TokenKind::AndAnd) {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::NotEq => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                Ok(Expr::Un(UnOp::Neg, Box::new(self.unary_expr()?)))
            }
            TokenKind::Not => {
                self.bump();
                Ok(Expr::Un(UnOp::Not, Box::new(self.unary_expr()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Number(v) => {
                self.bump();
                Ok(Expr::Number(v))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::Dollar(name) => {
                self.bump();
                match name.as_str() {
                    "time" => Ok(Expr::Time),
                    "dt" => Ok(Expr::Dt),
                    other => self.err(format!("unknown system variable ${other}")),
                }
            }
            TokenKind::Ident(name) => {
                self.bump();
                if matches!(self.peek(), TokenKind::LParen) {
                    self.call(&name)
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => self.err(format!("expected an expression, found {other:?}")),
        }
    }

    fn call(&mut self, name: &str) -> Result<Expr> {
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut args = Vec::new();
        if !matches!(self.peek(), TokenKind::RParen) {
            args.push(self.expr()?);
            while matches!(self.peek(), TokenKind::Comma) {
                self.bump();
                args.push(self.expr()?);
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;

        match name {
            "V" => {
                if args.len() != 1 {
                    return self.err("V() takes exactly one port");
                }
                match args.remove(0) {
                    Expr::Var(port) => Ok(Expr::PortV(port)),
                    _ => self.err("V() argument must be a port name"),
                }
            }
            "idt" => {
                if args.is_empty() || args.len() > 2 {
                    return self.err("idt(expr [, initial]) takes 1 or 2 arguments");
                }
                let state = self.next_state();
                let mut it = args.into_iter();
                // Non-emptiness checked two lines up.
                #[allow(clippy::expect_used)]
                let arg = Box::new(it.next().expect("checked length"));
                let initial = it.next().map(Box::new);
                Ok(Expr::Idt {
                    arg,
                    initial,
                    state,
                })
            }
            "ddt" => {
                if args.len() != 1 {
                    return self.err("ddt(expr) takes exactly one argument");
                }
                let state = self.next_state();
                Ok(Expr::Ddt {
                    arg: Box::new(args.remove(0)),
                    state,
                })
            }
            "delay" => {
                if args.len() != 2 {
                    return self.err("delay(expr, seconds) takes two arguments");
                }
                // Length checked to be exactly 2 just above.
                #[allow(clippy::expect_used)]
                let seconds_expr = args.pop().expect("two args");
                let seconds = const_eval(&seconds_expr)
                    .filter(|&s| s >= 0.0)
                    .ok_or_else(|| AhdlError::Parse {
                        line: self.line(),
                        message: "delay time must be a non-negative constant".into(),
                    })?;
                let state = self.next_state();
                Ok(Expr::Delay {
                    arg: Box::new(args.remove(0)),
                    seconds,
                    state,
                })
            }
            _ => match MathFn::by_name(name) {
                Some(f) => {
                    if args.len() != f.arity() {
                        return self.err(format!(
                            "{name}() takes {} argument(s), got {}",
                            f.arity(),
                            args.len()
                        ));
                    }
                    Ok(Expr::Call(f, args))
                }
                None => self.err(format!("unknown function `{name}`")),
            },
        }
    }

    fn next_state(&mut self) -> usize {
        let s = self.state_counter;
        self.state_counter += 1;
        s
    }
}

/// Folds a constant expression (numbers, `PI`, math functions) to a
/// value; returns `None` if it references runtime state.
pub fn const_eval(e: &Expr) -> Option<f64> {
    match e {
        Expr::Number(v) => Some(*v),
        Expr::Var(name) if name == "PI" => Some(std::f64::consts::PI),
        Expr::Var(name) if name == "TWO_PI" => Some(2.0 * std::f64::consts::PI),
        Expr::Bin(op, a, b) => {
            let (a, b) = (const_eval(a)?, const_eval(b)?);
            Some(crate::eval::apply_bin(*op, a, b))
        }
        Expr::Un(op, a) => {
            let a = const_eval(a)?;
            Some(match op {
                UnOp::Neg => -a,
                UnOp::Not => {
                    if a == 0.0 {
                        1.0
                    } else {
                        0.0
                    }
                }
            })
        }
        Expr::Cond(c, a, b) => {
            let c = const_eval(c)?;
            if c != 0.0 {
                const_eval(a)
            } else {
                const_eval(b)
            }
        }
        Expr::Call(f, args) => {
            let vals: Option<Vec<f64>> = args.iter().map(const_eval).collect();
            Some(f.eval(&vals?))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_style_amp() {
        let m = parse_module(
            "module amp(in, out) {
                input in; output out;
                parameter real gain = 1;
                analog { V(out) <- gain * V(in); }
            }",
        )
        .unwrap();
        assert_eq!(m.name, "amp");
        assert_eq!(m.ports, vec!["in", "out"]);
        assert_eq!(m.inputs, vec!["in"]);
        assert_eq!(m.outputs, vec!["out"]);
        assert_eq!(m.params[0].name, "gain");
        assert_eq!(m.params[0].default, 1.0);
        assert_eq!(m.body.len(), 1);
    }

    #[test]
    fn node_declarations_are_tolerated() {
        let m = parse_module(
            "module amp(in, out) {
                node in, out;
                input in; output out;
                analog { V(out) <- V(in); }
            }",
        )
        .unwrap();
        assert_eq!(m.outputs, vec!["out"]);
    }

    #[test]
    fn parses_if_else_and_locals() {
        let m = parse_module(
            "module lim(x, y) {
                input x; output y;
                parameter real clip = 1.0;
                analog {
                    real v = V(x);
                    if (v > clip) { V(y) <- clip; }
                    else { V(y) <- v < -clip ? -clip : v; }
                }
            }",
        )
        .unwrap();
        assert_eq!(m.body.len(), 2);
        assert!(matches!(m.body[1], Stmt::If { .. }));
    }

    #[test]
    fn precedence_is_conventional() {
        let m = parse_module(
            "module p(a, y) { input a; output y;
             analog { V(y) <- 1 + 2 * 3 - 4 / 2; } }",
        )
        .unwrap();
        match &m.body[0] {
            Stmt::Assign { value, .. } => {
                assert_eq!(const_eval(value), Some(5.0));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn stateful_operators_get_distinct_slots() {
        let m = parse_module(
            "module i(x, y) { input x; output y;
             analog { V(y) <- idt(V(x)) + ddt(V(x)) + delay(V(x), 1e-9); } }",
        )
        .unwrap();
        let mut slots = Vec::new();
        fn collect(e: &Expr, out: &mut Vec<usize>) {
            match e {
                Expr::Idt { state, arg, .. } => {
                    out.push(*state);
                    collect(arg, out);
                }
                Expr::Ddt { state, arg } => {
                    out.push(*state);
                    collect(arg, out);
                }
                Expr::Delay { state, arg, .. } => {
                    out.push(*state);
                    collect(arg, out);
                }
                Expr::Bin(_, a, b) => {
                    collect(a, out);
                    collect(b, out);
                }
                _ => {}
            }
        }
        if let Stmt::Assign { value, .. } = &m.body[0] {
            collect(value, &mut slots);
        }
        slots.sort_unstable();
        assert_eq!(slots, vec![0, 1, 2]);
    }

    #[test]
    fn parses_multiple_modules() {
        let mods = parse(
            "module a(x, y) { input x; output y; analog { V(y) <- V(x); } }
             module b(x, y) { input x; output y; analog { V(y) <- -V(x); } }",
        )
        .unwrap();
        assert_eq!(mods.len(), 2);
        assert_eq!(mods[1].name, "b");
    }

    #[test]
    fn error_cases() {
        assert!(parse_module("module a(x) { analog { V(y) < - 1; } }").is_err());
        assert!(parse_module("module a(x) { analog { bogus; } }").is_err());
        assert!(parse_module("module a(x) { analog { V(y) <- sin(1, 2); } }").is_err());
        assert!(parse_module("module a(x) { analog { V(y) <- nope(1); } }").is_err());
        assert!(
            parse_module("module a(x) { analog { V(y) <- delay(V(x), V(x)); } }").is_err(),
            "delay time must be constant"
        );
        assert!(parse_module("").is_err());
    }

    #[test]
    fn const_eval_handles_pi_and_functions() {
        let m = parse_module(
            "module c(x, y) { input x; output y;
             parameter real w = 2 * PI * max(1, 2);
             analog { V(y) <- w * V(x); } }",
        )
        .unwrap();
        assert!((m.params[0].default - 4.0 * std::f64::consts::PI).abs() < 1e-12);
    }
}
