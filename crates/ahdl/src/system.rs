//! Block-diagram system simulation: nets, instances, dataflow
//! scheduling and fixed-step execution.

use crate::block::Block;
use crate::error::{AhdlError, Result};
use crate::probe::Trace;
use ahfic_trace::TraceHandle;
use std::collections::HashMap;

/// Identifier of a signal net.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(usize);

impl NetId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

struct Instance {
    name: String,
    block: Box<dyn Block>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    in_buf: Vec<f64>,
    out_buf: Vec<f64>,
}

/// A behavioral system: blocks wired by named nets, simulated with a
/// fixed timestep (`dt = 1/fs`).
///
/// Execution order is a topological sort of the dataflow graph; blocks in
/// feedback loops read the previous-tick value of their loop inputs (a
/// one-sample delay, the standard discrete-time semantics).
///
/// # Example
///
/// ```
/// use ahfic_ahdl::system::System;
/// use ahfic_ahdl::blocks::arith::{Constant, Gain};
/// let mut sys = System::new();
/// let a = sys.net("a");
/// let b = sys.net("b");
/// sys.add("src", Constant::new(2.0), &[], &[a])?;
/// sys.add("amp", Gain::new(10.0), &[a], &[b])?;
/// let trace = sys.run(1e6, 10e-6)?;
/// assert_eq!(*trace.signal("b")?.last().unwrap(), 20.0);
/// # Ok::<(), ahfic_ahdl::error::AhdlError>(())
/// ```
#[derive(Default)]
pub struct System {
    net_names: Vec<String>,
    net_lookup: HashMap<String, NetId>,
    instances: Vec<Instance>,
    driven: Vec<bool>,
    trace: TraceHandle,
}

impl System {
    /// Creates an empty system.
    pub fn new() -> Self {
        System::default()
    }

    /// Interns (or retrieves) a named net.
    pub fn net(&mut self, name: &str) -> NetId {
        if let Some(&id) = self.net_lookup.get(name) {
            return id;
        }
        let id = NetId(self.net_names.len());
        self.net_names.push(name.to_string());
        self.net_lookup.insert(name.to_string(), id);
        self.driven.push(false);
        id
    }

    /// Looks up an existing net.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_lookup.get(name).copied()
    }

    /// Net names in id order.
    pub fn net_names(&self) -> &[String] {
        &self.net_names
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.instances.len()
    }

    /// Adds a block wired to the given nets.
    ///
    /// # Errors
    ///
    /// Returns [`AhdlError::Wiring`] when the arity doesn't match the
    /// block, a net is driven twice, or the instance name is taken.
    pub fn add(
        &mut self,
        name: &str,
        block: impl Block + 'static,
        inputs: &[NetId],
        outputs: &[NetId],
    ) -> Result<()> {
        self.add_boxed(name, Box::new(block), inputs, outputs)
    }

    /// Adds an already-boxed block (for dynamically chosen kinds).
    ///
    /// # Errors
    ///
    /// As [`Self::add`].
    pub fn add_boxed(
        &mut self,
        name: &str,
        block: Box<dyn Block>,
        inputs: &[NetId],
        outputs: &[NetId],
    ) -> Result<()> {
        if self.instances.iter().any(|i| i.name == name) {
            return Err(AhdlError::Wiring(format!("duplicate block name {name}")));
        }
        if inputs.len() != block.num_inputs() {
            return Err(AhdlError::Wiring(format!(
                "{name}: block takes {} inputs, wired {}",
                block.num_inputs(),
                inputs.len()
            )));
        }
        if outputs.len() != block.num_outputs() {
            return Err(AhdlError::Wiring(format!(
                "{name}: block drives {} outputs, wired {}",
                block.num_outputs(),
                outputs.len()
            )));
        }
        for &o in outputs {
            if self.driven[o.0] {
                return Err(AhdlError::Wiring(format!(
                    "net {} driven by more than one block",
                    self.net_names[o.0]
                )));
            }
            self.driven[o.0] = true;
        }
        self.instances.push(Instance {
            name: name.to_string(),
            in_buf: vec![0.0; inputs.len()],
            out_buf: vec![0.0; outputs.len()],
            inputs: inputs.to_vec(),
            outputs: outputs.to_vec(),
            block,
        });
        Ok(())
    }

    /// Topological execution order; feedback edges are broken by leaving
    /// the remaining blocks in insertion order (one-tick-delay inputs).
    fn schedule(&self) -> Vec<usize> {
        let n = self.instances.len();
        // driver_of[net] = block index
        let mut driver_of: HashMap<usize, usize> = HashMap::new();
        for (bi, inst) in self.instances.iter().enumerate() {
            for &o in &inst.outputs {
                driver_of.insert(o.0, bi);
            }
        }
        let mut indegree = vec![0usize; n];
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (bi, inst) in self.instances.iter().enumerate() {
            for &i in &inst.inputs {
                if let Some(&src) = driver_of.get(&i.0) {
                    if src != bi {
                        edges[src].push(bi);
                        indegree[bi] += 1;
                    }
                }
            }
        }
        let mut order = Vec::with_capacity(n);
        let mut queue: Vec<usize> = (0..n).filter(|&b| indegree[b] == 0).collect();
        let mut visited = vec![false; n];
        while let Some(b) = queue.pop() {
            if visited[b] {
                continue;
            }
            visited[b] = true;
            order.push(b);
            for &next in &edges[b] {
                indegree[next] = indegree[next].saturating_sub(1);
                if indegree[next] == 0 && !visited[next] {
                    queue.push(next);
                }
            }
        }
        // Cycle members: append in insertion order.
        for (b, seen) in visited.iter().enumerate() {
            if !seen {
                order.push(b);
            }
        }
        order
    }

    /// Installs a telemetry handle; every subsequent [`Self::run`] /
    /// [`Self::run_probed`] emits an `ahdl.run` span with step and
    /// block counters.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Resets every block's internal state.
    pub fn reset(&mut self) {
        for inst in &mut self.instances {
            inst.block.reset();
        }
    }

    /// Runs for `duration` seconds at sample rate `fs`, recording every
    /// net. Use [`Self::run_probed`] to record a subset (large systems /
    /// long runs).
    ///
    /// # Errors
    ///
    /// Returns [`AhdlError::Simulation`] for non-positive `fs`/`duration`
    /// or non-finite signal values (divergence).
    pub fn run(&mut self, fs: f64, duration: f64) -> Result<Trace> {
        let all: Vec<NetId> = (0..self.net_names.len()).map(NetId).collect();
        self.run_probed(fs, duration, &all)
    }

    /// Runs, recording only the given nets.
    ///
    /// # Errors
    ///
    /// As [`Self::run`].
    pub fn run_probed(&mut self, fs: f64, duration: f64, probes: &[NetId]) -> Result<Trace> {
        if fs <= 0.0 || duration <= 0.0 {
            return Err(AhdlError::Simulation(
                "fs and duration must be positive".into(),
            ));
        }
        let tr = self.trace.tracer();
        let span = tr.span("ahdl.run");
        let dt = 1.0 / fs;
        let steps = (duration * fs).round() as usize;
        let order = self.schedule();
        let mut nets = vec![0.0f64; self.net_names.len()];
        let probe_names: Vec<String> = probes
            .iter()
            .map(|&p| self.net_names[p.0].clone())
            .collect();
        let mut trace = Trace::with_capacity(fs, &probe_names, steps);

        for k in 0..steps {
            let t = k as f64 * dt;
            for &bi in &order {
                let inst = &mut self.instances[bi];
                for (slot, &net) in inst.in_buf.iter_mut().zip(inst.inputs.iter()) {
                    *slot = nets[net.0];
                }
                // Split borrows: buffers are per-instance.
                let Instance {
                    block,
                    in_buf,
                    out_buf,
                    outputs,
                    name,
                    ..
                } = inst;
                block.tick(t, dt, in_buf, out_buf);
                for (&net, &v) in outputs.iter().zip(out_buf.iter()) {
                    if !v.is_finite() {
                        return Err(AhdlError::Simulation(format!(
                            "block {name} produced a non-finite value at t={t:.3e}"
                        )));
                    }
                    nets[net.0] = v;
                }
            }
            trace.push(probes.iter().map(|&p| nets[p.0]));
        }
        tr.counter("ahdl.steps", steps as f64);
        tr.counter("ahdl.blocks", self.instances.len() as f64);
        tr.counter("ahdl.nets", self.net_names.len() as f64);
        span.end();
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::arith::{Adder, Constant, Gain, Mixer};
    use crate::blocks::osc::SineSource;

    #[test]
    fn chain_executes_in_topo_order_regardless_of_insertion() {
        let mut sys = System::new();
        let a = sys.net("a");
        let b = sys.net("b");
        let c = sys.net("c");
        // Insert downstream block first.
        sys.add("g2", Gain::new(3.0), &[b], &[c]).unwrap();
        sys.add("g1", Gain::new(2.0), &[a], &[b]).unwrap();
        sys.add("src", Constant::new(1.0), &[], &[a]).unwrap();
        let trace = sys.run(1e3, 5e-3).unwrap();
        // With correct scheduling the value propagates within one tick.
        assert_eq!(trace.signal("c").unwrap()[0], 6.0);
    }

    #[test]
    fn mixer_products_appear() {
        let mut sys = System::new();
        let rf = sys.net("rf");
        let lo = sys.net("lo");
        let ifo = sys.net("if");
        sys.add("rf", SineSource::new(10.0, 1.0), &[], &[rf])
            .unwrap();
        sys.add("lo", SineSource::new(8.0, 1.0), &[], &[lo])
            .unwrap();
        sys.add("mix", Mixer::new(1.0), &[rf, lo], &[ifo]).unwrap();
        let trace = sys.run(1e3, 1.0).unwrap();
        let y = trace.signal("if").unwrap();
        // Product contains 2 Hz and 18 Hz at amplitude 1/2.
        let a2 = ahfic_num::goertzel::tone_amplitude(y, 1e3, 2.0).abs();
        let a18 = ahfic_num::goertzel::tone_amplitude(y, 1e3, 18.0).abs();
        assert!((a2 - 0.5).abs() < 1e-3, "a2 = {a2}");
        assert!((a18 - 0.5).abs() < 1e-3, "a18 = {a18}");
    }

    #[test]
    fn feedback_loop_runs_with_unit_delay() {
        // y[n] = 0.5*y[n-1] + 1  -> converges to 2.
        let mut sys = System::new();
        let y = sys.net("y");
        let half = sys.net("half");
        let one = sys.net("one");
        sys.add("src", Constant::new(1.0), &[], &[one]).unwrap();
        sys.add("fb", Gain::new(0.5), &[y], &[half]).unwrap();
        sys.add("sum", Adder::new(2), &[one, half], &[y]).unwrap();
        let trace = sys.run(1e3, 0.05).unwrap();
        let yv = trace.signal("y").unwrap();
        assert!((yv.last().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn wiring_errors() {
        let mut sys = System::new();
        let a = sys.net("a");
        let b = sys.net("b");
        assert!(sys.add("bad", Gain::new(1.0), &[a, b], &[a]).is_err());
        sys.add("ok", Constant::new(0.0), &[], &[a]).unwrap();
        assert!(
            sys.add("dup", Constant::new(1.0), &[], &[a]).is_err(),
            "double-driven net"
        );
        assert!(sys.add("ok", Constant::new(1.0), &[], &[b]).is_err());
    }

    #[test]
    fn undriven_net_reads_zero() {
        let mut sys = System::new();
        let a = sys.net("floating");
        let b = sys.net("out");
        sys.add("g", Gain::new(5.0), &[a], &[b]).unwrap();
        let trace = sys.run(1e3, 1e-3).unwrap();
        assert!(trace.signal("out").unwrap().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn run_probed_limits_recording() {
        let mut sys = System::new();
        let a = sys.net("a");
        let b = sys.net("b");
        sys.add("src", Constant::new(1.0), &[], &[a]).unwrap();
        sys.add("g", Gain::new(2.0), &[a], &[b]).unwrap();
        let trace = sys.run_probed(1e3, 1e-2, &[b]).unwrap();
        assert!(trace.signal("b").is_ok());
        assert!(trace.signal("a").is_err());
    }

    #[test]
    fn bad_run_params_rejected() {
        let mut sys = System::new();
        let _ = sys.net("a");
        assert!(sys.run(0.0, 1.0).is_err());
        assert!(sys.run(1e3, 0.0).is_err());
    }
}
