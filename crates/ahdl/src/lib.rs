//! An analog hardware description language (AHDL) and behavioral system
//! simulator.
//!
//! Reproduces the top-down design substrate of the DAC'96 paper (§2): RF
//! systems are described block-by-block at the behavioral level and
//! simulated whole, so block specifications can be derived *before*
//! transistor-level design.
//!
//! Two ways to build blocks:
//!
//! - **AHDL text** — the paper's Fig. 1 style, compiled by
//!   [`eval::CompiledModule`]:
//!
//!   ```text
//!   module amp(in, out) {
//!       input in; output out;
//!       parameter real gain = 1.0;
//!       analog { V(out) <- gain * V(in); }
//!   }
//!   ```
//!
//! - **Built-in Rust blocks** ([`blocks`]) — mixers, quadrature LOs with
//!   gain/phase imbalance, Butterworth and band-pass filters, 90° phase
//!   shifters, limiters, noise.
//!
//! Both implement [`block::Block`] and wire into a
//! [`system::System`], which schedules the dataflow graph and produces a
//! [`probe::Trace`] for spectral measurement ([`spectrum`]).

// A malformed input must surface as a typed error, never a panic:
// `unwrap`/`expect` in non-test code warns (CI promotes warnings to
// errors), with local `#[allow]`s where an invariant guarantees success.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod ast;
pub mod block;
pub mod blocks;
pub mod check;
pub mod error;
pub mod eval;
pub mod lex;
pub mod netlist;
pub mod parse;
pub mod probe;
pub mod spectrum;
pub mod system;

/// Convenient glob import.
pub mod prelude {
    pub use crate::block::Block;
    pub use crate::blocks::*;
    pub use crate::error::AhdlError;
    pub use crate::eval::{CompiledModule, ModuleBlock};
    pub use crate::probe::Trace;
    pub use crate::system::{NetId, System};
}

pub use block::Block;
pub use error::AhdlError;
pub use eval::CompiledModule;
pub use system::System;
