//! Spectral measurements on behavioral traces.

use crate::error::Result;
use crate::probe::Trace;
use ahfic_num::db::to_db_power;
use ahfic_num::fft::real_spectrum;
use ahfic_num::goertzel;
use ahfic_num::window::Window;

/// Power (mean square) of the tone at `f` in signal `net`, using the
/// trailing `tail_frac` of the record (settling skipped).
///
/// # Errors
///
/// Propagates missing-signal errors.
pub fn tone_power(trace: &Trace, net: &str, f: f64, tail_frac: f64) -> Result<f64> {
    let y = trace.tail(net, tail_frac)?;
    Ok(goertzel::tone_power(y, trace.fs(), f))
}

/// Power ratio `P(f_num) / P(f_den)` in dB for the same signal — e.g. the
/// image rejection ratio when the two powers come from separate runs is
/// usually computed with [`power_ratio_db`] instead.
///
/// # Errors
///
/// Propagates missing-signal errors.
pub fn tone_ratio_db(
    trace: &Trace,
    net: &str,
    f_num: f64,
    f_den: f64,
    tail_frac: f64,
) -> Result<f64> {
    let pn = tone_power(trace, net, f_num, tail_frac)?;
    let pd = tone_power(trace, net, f_den, tail_frac)?;
    Ok(to_db_power(pn / pd))
}

/// Ratio of two powers in dB (`10 log10(p1/p2)`).
pub fn power_ratio_db(p1: f64, p2: f64) -> f64 {
    to_db_power(p1 / p2)
}

/// Windowed amplitude spectrum of a recorded net: returns
/// `(freqs_hz, amplitude)` with the window's coherent gain compensated.
///
/// # Errors
///
/// Propagates missing-signal errors.
pub fn spectrum(trace: &Trace, net: &str, window: Window) -> Result<(Vec<f64>, Vec<f64>)> {
    let y = trace.signal(net)?;
    let tapered = window.apply(y);
    let (freqs, mut amps) = real_spectrum(&tapered, trace.fs());
    let g = window.coherent_gain(y.len());
    for a in &mut amps {
        *a /= g;
    }
    Ok((freqs, amps))
}

/// Finds spectral peaks above `min_amplitude`, returning `(freq, amp)`
/// pairs sorted by descending amplitude. A peak is a local maximum over
/// its immediate neighbours.
pub fn peaks(freqs: &[f64], amps: &[f64], min_amplitude: f64) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for k in 1..amps.len().saturating_sub(1) {
        if amps[k] >= min_amplitude && amps[k] > amps[k - 1] && amps[k] >= amps[k + 1] {
            out.push((freqs[k], amps[k]));
        }
    }
    out.sort_by(|a, b| b.1.total_cmp(&a.1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::Trace;
    use std::f64::consts::PI;

    fn tone_trace(fs: f64, comps: &[(f64, f64)], n: usize) -> Trace {
        let mut t = Trace::with_capacity(fs, &["x".into()], n);
        for k in 0..n {
            let tt = k as f64 / fs;
            let v: f64 = comps
                .iter()
                .map(|&(f, a)| a * (2.0 * PI * f * tt).sin())
                .sum();
            t.push([v].into_iter());
        }
        t
    }

    #[test]
    fn tone_power_of_unit_sine() {
        let t = tone_trace(1e3, &[(50.0, 1.0)], 2000);
        let p = tone_power(&t, "x", 50.0, 1.0).unwrap();
        assert!((p - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ratio_db_between_tones() {
        let t = tone_trace(1e4, &[(100.0, 1.0), (300.0, 0.1)], 10000);
        let r = tone_ratio_db(&t, "x", 100.0, 300.0, 1.0).unwrap();
        assert!((r - 20.0).abs() < 0.05, "r = {r}");
        assert!((power_ratio_db(1.0, 0.01) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn spectrum_recovers_amplitude_with_window() {
        let fs = 4096.0;
        let t = tone_trace(fs, &[(256.0, 0.7)], 4096);
        let (freqs, amps) = spectrum(&t, "x", Window::Hann).unwrap();
        let k = freqs.iter().position(|&f| (f - 256.0).abs() < 0.6).unwrap();
        assert!((amps[k] - 0.7).abs() < 0.02, "amp = {}", amps[k]);
    }

    #[test]
    fn peaks_found_and_sorted() {
        let fs = 4096.0;
        let t = tone_trace(fs, &[(256.0, 1.0), (512.0, 0.5)], 4096);
        let (freqs, amps) = spectrum(&t, "x", Window::Hann).unwrap();
        let pk = peaks(&freqs, &amps, 0.1);
        assert!(pk.len() >= 2);
        assert!((pk[0].0 - 256.0).abs() < 2.0);
        assert!((pk[1].0 - 512.0).abs() < 2.0);
        assert!(pk[0].1 > pk[1].1);
    }
}
