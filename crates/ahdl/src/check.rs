//! Semantic checks on parsed AHDL modules.

use crate::ast::{Expr, Module, Stmt};
use crate::error::{AhdlError, Result};
use std::collections::HashSet;

/// Validates a module:
///
/// - every port is declared `input` or `output` (and nothing is both);
/// - every declared input/output is a port;
/// - `V(x)` reads reference inputs (or already-assigned outputs);
/// - assignments target outputs only;
/// - every output is assigned on every control path;
/// - variables are defined before use; parameter/local names don't clash.
///
/// # Errors
///
/// Returns [`AhdlError::Check`] naming the module and problem.
pub fn check(module: &Module) -> Result<()> {
    let fail = |message: String| -> Result<()> {
        Err(AhdlError::Check {
            module: module.name.clone(),
            message,
        })
    };

    let ports: HashSet<&str> = module.ports.iter().map(String::as_str).collect();
    if ports.len() != module.ports.len() {
        return fail("duplicate port names".into());
    }
    let inputs: HashSet<&str> = module.inputs.iter().map(String::as_str).collect();
    let outputs: HashSet<&str> = module.outputs.iter().map(String::as_str).collect();
    if let Some(p) = inputs.intersection(&outputs).next() {
        return fail(format!("port {p} declared both input and output"));
    }
    for name in inputs.iter().chain(outputs.iter()) {
        if !ports.contains(name) {
            return fail(format!("{name} declared but not in the port list"));
        }
    }
    for p in &module.ports {
        if !inputs.contains(p.as_str()) && !outputs.contains(p.as_str()) {
            return fail(format!("port {p} has no direction (declare input/output)"));
        }
    }
    let mut names: HashSet<String> = HashSet::new();
    for p in &module.params {
        if !names.insert(p.name.clone()) {
            return fail(format!("duplicate parameter {}", p.name));
        }
        if ports.contains(p.name.as_str()) {
            return fail(format!("parameter {} shadows a port", p.name));
        }
    }

    // Walk the body tracking defined variables and assigned outputs.
    let mut scope: HashSet<String> = module.params.iter().map(|p| p.name.clone()).collect();
    scope.insert("PI".into());
    scope.insert("TWO_PI".into());
    let assigned = check_stmts(module, &module.body, &mut scope, &inputs, &outputs)?;
    for o in &module.outputs {
        if !assigned.contains(o.as_str()) {
            return fail(format!("output {o} is not assigned on every path"));
        }
    }
    Ok(())
}

/// Checks a statement list; returns the set of outputs assigned on *all*
/// paths through it.
fn check_stmts(
    module: &Module,
    stmts: &[Stmt],
    scope: &mut HashSet<String>,
    inputs: &HashSet<&str>,
    outputs: &HashSet<&str>,
) -> Result<HashSet<String>> {
    let fail = |message: String| AhdlError::Check {
        module: module.name.clone(),
        message,
    };
    let mut assigned: HashSet<String> = HashSet::new();
    for stmt in stmts {
        match stmt {
            Stmt::Local { name, value } => {
                check_expr(module, value, scope, inputs, outputs, &assigned)?;
                if inputs.contains(name.as_str()) || outputs.contains(name.as_str()) {
                    return Err(fail(format!("local {name} shadows a port")));
                }
                scope.insert(name.clone());
            }
            Stmt::Assign { port, value } => {
                check_expr(module, value, scope, inputs, outputs, &assigned)?;
                if !outputs.contains(port.as_str()) {
                    return Err(fail(format!("cannot assign to non-output {port}")));
                }
                assigned.insert(port.clone());
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                check_expr(module, cond, scope, inputs, outputs, &assigned)?;
                let mut then_scope = scope.clone();
                let a1 = check_stmts(module, then_body, &mut then_scope, inputs, outputs)?;
                let mut else_scope = scope.clone();
                let a2 = check_stmts(module, else_body, &mut else_scope, inputs, outputs)?;
                for port in a1.intersection(&a2) {
                    assigned.insert(port.clone());
                }
            }
        }
    }
    Ok(assigned)
}

fn check_expr(
    module: &Module,
    expr: &Expr,
    scope: &HashSet<String>,
    inputs: &HashSet<&str>,
    outputs: &HashSet<&str>,
    assigned: &HashSet<String>,
) -> Result<()> {
    let fail = |message: String| AhdlError::Check {
        module: module.name.clone(),
        message,
    };
    match expr {
        Expr::Number(_) | Expr::Time | Expr::Dt => Ok(()),
        Expr::Var(name) => {
            if scope.contains(name) {
                Ok(())
            } else {
                Err(fail(format!("undefined variable {name}")))
            }
        }
        Expr::PortV(port) => {
            if inputs.contains(port.as_str()) {
                Ok(())
            } else if outputs.contains(port.as_str()) {
                if assigned.contains(port.as_str()) {
                    Ok(())
                } else {
                    Err(fail(format!("output {port} read before assignment")))
                }
            } else {
                Err(fail(format!("V({port}) references an unknown port")))
            }
        }
        Expr::Bin(_, a, b) => {
            check_expr(module, a, scope, inputs, outputs, assigned)?;
            check_expr(module, b, scope, inputs, outputs, assigned)
        }
        Expr::Un(_, a) => check_expr(module, a, scope, inputs, outputs, assigned),
        Expr::Cond(c, a, b) => {
            check_expr(module, c, scope, inputs, outputs, assigned)?;
            check_expr(module, a, scope, inputs, outputs, assigned)?;
            check_expr(module, b, scope, inputs, outputs, assigned)
        }
        Expr::Call(_, args) => {
            for a in args {
                check_expr(module, a, scope, inputs, outputs, assigned)?;
            }
            Ok(())
        }
        Expr::Idt { arg, initial, .. } => {
            check_expr(module, arg, scope, inputs, outputs, assigned)?;
            if let Some(init) = initial {
                check_expr(module, init, scope, inputs, outputs, assigned)?;
            }
            Ok(())
        }
        Expr::Ddt { arg, .. } | Expr::Delay { arg, .. } => {
            check_expr(module, arg, scope, inputs, outputs, assigned)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_module;

    fn check_src(src: &str) -> Result<()> {
        check(&parse_module(src).unwrap())
    }

    #[test]
    fn accepts_well_formed_module() {
        check_src(
            "module amp(in, out) { input in; output out;
             parameter real g = 2;
             analog { V(out) <- g * V(in); } }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_undirected_port() {
        let e = check_src(
            "module a(x, y) { input x;
             analog { V(y) <- V(x); } }",
        )
        .unwrap_err();
        assert!(e.to_string().contains("no direction"), "{e}");
    }

    #[test]
    fn rejects_assignment_to_input() {
        let e = check_src(
            "module a(x, y) { input x; output y;
             analog { V(x) <- 1; V(y) <- 0; } }",
        )
        .unwrap_err();
        assert!(e.to_string().contains("non-output"), "{e}");
    }

    #[test]
    fn rejects_unassigned_output() {
        let e = check_src(
            "module a(x, y, z) { input x; output y, z;
             analog { V(y) <- V(x); } }",
        )
        .unwrap_err();
        assert!(e.to_string().contains("not assigned"), "{e}");
    }

    #[test]
    fn conditional_assignment_must_cover_both_branches() {
        let e = check_src(
            "module a(x, y) { input x; output y;
             analog { if (V(x) > 0) { V(y) <- 1; } } }",
        )
        .unwrap_err();
        assert!(e.to_string().contains("not assigned"), "{e}");
        // Covering both branches is fine.
        check_src(
            "module a(x, y) { input x; output y;
             analog { if (V(x) > 0) { V(y) <- 1; } else { V(y) <- 0; } } }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_undefined_variable() {
        let e = check_src(
            "module a(x, y) { input x; output y;
             analog { V(y) <- mystery * V(x); } }",
        )
        .unwrap_err();
        assert!(e.to_string().contains("undefined variable"), "{e}");
    }

    #[test]
    fn locals_scope_into_branches_but_not_out() {
        let e = check_src(
            "module a(x, y) { input x; output y;
             analog {
                if (V(x) > 0) { real t = 1; V(y) <- t; } else { V(y) <- t; }
             } }",
        )
        .unwrap_err();
        assert!(e.to_string().contains("undefined variable t"), "{e}");
    }

    #[test]
    fn output_read_after_assignment_ok_before_not() {
        check_src(
            "module a(x, y) { input x; output y;
             analog { V(y) <- V(x); V(y) <- V(y) * 2; } }",
        )
        .unwrap();
        let e = check_src(
            "module a(x, y) { input x; output y;
             analog { V(y) <- V(y) * 2; } }",
        )
        .unwrap_err();
        assert!(e.to_string().contains("read before"), "{e}");
    }

    #[test]
    fn pi_is_predefined() {
        check_src(
            "module a(x, y) { input x; output y;
             analog { V(y) <- sin(2 * PI * V(x)); } }",
        )
        .unwrap();
    }

    #[test]
    fn duplicate_params_rejected() {
        let e = check_src(
            "module a(x, y) { input x; output y;
             parameter real g = 1; parameter real g = 2;
             analog { V(y) <- g * V(x); } }",
        )
        .unwrap_err();
        assert!(e.to_string().contains("duplicate parameter"), "{e}");
    }
}
