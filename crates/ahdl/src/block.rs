//! The behavioral block abstraction: everything that can sit in a
//! block-diagram [`crate::system::System`] — built-in Rust blocks and
//! compiled AHDL modules alike.

/// A discrete-time behavioral block with fixed input/output arity.
///
/// Blocks are ticked once per simulation step in dataflow order; `tick`
/// reads the input samples and writes the output samples for time `t`
/// (step size `dt`).
pub trait Block {
    /// Number of input ports.
    fn num_inputs(&self) -> usize;

    /// Number of output ports.
    fn num_outputs(&self) -> usize;

    /// Computes outputs at time `t`.
    ///
    /// # Panics
    ///
    /// Implementations may assume `inputs.len() == num_inputs()` and
    /// `outputs.len() == num_outputs()`; the system guarantees it.
    fn tick(&mut self, t: f64, dt: f64, inputs: &[f64], outputs: &mut [f64]);

    /// Resets internal state (integrators, filters, delay lines) to the
    /// initial condition.
    fn reset(&mut self);

    /// Short kind label used in diagnostics (`"gain"`, `"bpf"`, …).
    fn kind(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal block used to exercise the trait object path.
    struct Doubler;

    impl Block for Doubler {
        fn num_inputs(&self) -> usize {
            1
        }
        fn num_outputs(&self) -> usize {
            1
        }
        fn tick(&mut self, _t: f64, _dt: f64, inputs: &[f64], outputs: &mut [f64]) {
            outputs[0] = 2.0 * inputs[0];
        }
        fn reset(&mut self) {}
        fn kind(&self) -> &str {
            "doubler"
        }
    }

    #[test]
    fn trait_object_dispatch() {
        let mut b: Box<dyn Block> = Box::new(Doubler);
        let mut out = [0.0];
        b.tick(0.0, 1e-9, &[21.0], &mut out);
        assert_eq!(out[0], 42.0);
        assert_eq!(b.kind(), "doubler");
        assert_eq!(b.num_inputs(), 1);
        assert_eq!(b.num_outputs(), 1);
    }
}
