//! AHDL module evaluation: compiled modules and their per-instance
//! runtime state.

use crate::ast::{BinOp, Expr, Module, Stmt, UnOp};
use crate::block::Block;
use crate::check::check;
use crate::error::{AhdlError, Result};
use crate::parse::parse_module;
use std::collections::VecDeque;
use std::sync::Arc;

/// Applies a binary operator; booleans are encoded as `0.0` / `1.0`.
pub fn apply_bin(op: BinOp, a: f64, b: f64) -> f64 {
    let flag = |c: bool| if c { 1.0 } else { 0.0 };
    match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        BinOp::Rem => a % b,
        BinOp::Lt => flag(a < b),
        BinOp::Le => flag(a <= b),
        BinOp::Gt => flag(a > b),
        BinOp::Ge => flag(a >= b),
        BinOp::Eq => flag(a == b),
        BinOp::Ne => flag(a != b),
        BinOp::And => flag(a != 0.0 && b != 0.0),
        BinOp::Or => flag(a != 0.0 || b != 0.0),
    }
}

/// A parsed and semantically checked AHDL module, ready to instantiate.
///
/// # Example
///
/// ```
/// use ahfic_ahdl::eval::CompiledModule;
/// use ahfic_ahdl::block::Block;
/// let amp = CompiledModule::compile(
///     "module amp(in, out) { input in; output out;
///      parameter real gain = 1.0;
///      analog { V(out) <- gain * V(in); } }",
/// )?;
/// let mut inst = amp.instantiate(&[("gain", 3.0)])?;
/// let mut out = [0.0];
/// inst.tick(0.0, 1e-9, &[2.0], &mut out);
/// assert_eq!(out[0], 6.0);
/// # Ok::<(), ahfic_ahdl::error::AhdlError>(())
/// ```
#[derive(Clone, Debug)]
pub struct CompiledModule {
    module: Arc<Module>,
    num_states: usize,
}

impl CompiledModule {
    /// Parses and checks a single-module source.
    ///
    /// # Errors
    ///
    /// Propagates lex/parse/check errors.
    pub fn compile(src: &str) -> Result<CompiledModule> {
        Self::from_module(parse_module(src)?)
    }

    /// Wraps an already-parsed module after checking it.
    ///
    /// # Errors
    ///
    /// Propagates [`AhdlError::Check`].
    pub fn from_module(module: Module) -> Result<CompiledModule> {
        check(&module)?;
        let mut max_state = 0usize;
        for s in &module.body {
            walk_states_stmt(s, &mut max_state);
        }
        Ok(CompiledModule {
            module: Arc::new(module),
            num_states: max_state,
        })
    }

    /// Module name.
    pub fn name(&self) -> &str {
        &self.module.name
    }

    /// Number of stateful-operator slots (`idt`/`ddt`/`delay`) the module
    /// uses; `0` means the module is memoryless.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Declared parameters `(name, default)`.
    pub fn params(&self) -> Vec<(String, f64)> {
        self.module
            .params
            .iter()
            .map(|p| (p.name.clone(), p.default))
            .collect()
    }

    /// Input port names, in port order.
    pub fn inputs(&self) -> &[String] {
        &self.module.inputs
    }

    /// Output port names, in port order.
    pub fn outputs(&self) -> &[String] {
        &self.module.outputs
    }

    /// Creates an instance with parameter overrides.
    ///
    /// # Errors
    ///
    /// Returns [`AhdlError::Instantiate`] for unknown parameter names.
    pub fn instantiate(&self, overrides: &[(&str, f64)]) -> Result<ModuleBlock> {
        let mut params: Vec<(String, f64)> = self
            .module
            .params
            .iter()
            .map(|p| (p.name.clone(), p.default))
            .collect();
        for (name, value) in overrides {
            match params.iter_mut().find(|(n, _)| n == name) {
                Some(slot) => slot.1 = *value,
                None => {
                    return Err(AhdlError::Instantiate(format!(
                        "module {} has no parameter `{name}`",
                        self.module.name
                    )))
                }
            }
        }
        Ok(ModuleBlock {
            module: Arc::clone(&self.module),
            params,
            states: vec![OpState::Unused; self.num_states],
            scope: Vec::new(),
            out_buf: vec![0.0; self.module.outputs.len()],
        })
    }
}

fn walk_states_stmt(stmt: &Stmt, max: &mut usize) {
    match stmt {
        Stmt::Local { value, .. } | Stmt::Assign { value, .. } => walk_states_expr(value, max),
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            walk_states_expr(cond, max);
            for s in then_body.iter().chain(else_body.iter()) {
                walk_states_stmt(s, max);
            }
        }
    }
}

fn walk_states_expr(expr: &Expr, max: &mut usize) {
    match expr {
        Expr::Idt {
            arg,
            initial,
            state,
        } => {
            *max = (*max).max(state + 1);
            walk_states_expr(arg, max);
            if let Some(i) = initial {
                walk_states_expr(i, max);
            }
        }
        Expr::Ddt { arg, state } | Expr::Delay { arg, state, .. } => {
            *max = (*max).max(state + 1);
            walk_states_expr(arg, max);
        }
        Expr::Bin(_, a, b) => {
            walk_states_expr(a, max);
            walk_states_expr(b, max);
        }
        Expr::Un(_, a) => walk_states_expr(a, max),
        Expr::Cond(c, a, b) => {
            walk_states_expr(c, max);
            walk_states_expr(a, max);
            walk_states_expr(b, max);
        }
        Expr::Call(_, args) => {
            for a in args {
                walk_states_expr(a, max);
            }
        }
        _ => {}
    }
}

/// Per-instance state of one stateful operator occurrence.
#[derive(Clone, Debug)]
enum OpState {
    /// Not yet touched.
    Unused,
    /// Trapezoidal integrator.
    Idt {
        /// Accumulated integral.
        acc: f64,
        /// Previous integrand sample.
        prev: f64,
    },
    /// Backward-difference differentiator.
    Ddt {
        /// Previous sample.
        prev: f64,
    },
    /// Transport delay ring buffer.
    Delay {
        /// Stored samples.
        buf: VecDeque<f64>,
    },
}

/// Mutable evaluation context threaded through the interpreter so the
/// (immutable) AST can be borrowed separately from instance state.
struct RunCtx<'a> {
    module: &'a Module,
    params: &'a [(String, f64)],
    scope: &'a mut Vec<(String, f64)>,
    states: &'a mut [OpState],
    out_buf: &'a mut [f64],
    inputs: &'a [f64],
    t: f64,
    dt: f64,
}

impl RunCtx<'_> {
    fn lookup(&self, name: &str) -> f64 {
        for (n, v) in self.scope.iter().rev() {
            if n == name {
                return *v;
            }
        }
        for (n, v) in self.params {
            if n == name {
                return *v;
            }
        }
        match name {
            "PI" => std::f64::consts::PI,
            "TWO_PI" => 2.0 * std::f64::consts::PI,
            _ => f64::NAN,
        }
    }

    fn port_value(&self, port: &str) -> f64 {
        if let Some(i) = self.module.inputs.iter().position(|p| p == port) {
            return self.inputs[i];
        }
        if let Some(o) = self.module.outputs.iter().position(|p| p == port) {
            return self.out_buf[o];
        }
        0.0
    }
}

fn eval_expr(expr: &Expr, ctx: &mut RunCtx) -> f64 {
    match expr {
        Expr::Number(v) => *v,
        Expr::Var(name) => ctx.lookup(name),
        Expr::PortV(port) => ctx.port_value(port),
        Expr::Time => ctx.t,
        Expr::Dt => ctx.dt,
        Expr::Bin(op, a, b) => match op {
            BinOp::And => {
                if eval_expr(a, ctx) == 0.0 {
                    0.0
                } else if eval_expr(b, ctx) != 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            BinOp::Or => {
                if eval_expr(a, ctx) != 0.0 || eval_expr(b, ctx) != 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            _ => {
                let av = eval_expr(a, ctx);
                let bv = eval_expr(b, ctx);
                apply_bin(*op, av, bv)
            }
        },
        Expr::Un(op, a) => {
            let v = eval_expr(a, ctx);
            match op {
                UnOp::Neg => -v,
                UnOp::Not => {
                    if v == 0.0 {
                        1.0
                    } else {
                        0.0
                    }
                }
            }
        }
        Expr::Cond(c, a, b) => {
            if eval_expr(c, ctx) != 0.0 {
                eval_expr(a, ctx)
            } else {
                eval_expr(b, ctx)
            }
        }
        Expr::Call(f, args) => {
            // All math functions take 1 or 2 arguments.
            let a0 = eval_expr(&args[0], ctx);
            let a1 = if args.len() > 1 {
                eval_expr(&args[1], ctx)
            } else {
                0.0
            };
            f.eval(&[a0, a1])
        }
        Expr::Idt {
            arg,
            initial,
            state,
        } => {
            let x = eval_expr(arg, ctx);
            let init = match initial {
                Some(i) => eval_expr(i, ctx),
                None => 0.0,
            };
            let slot = &mut ctx.states[*state];
            match slot {
                OpState::Idt { acc, prev } => {
                    *acc += ctx.dt * (x + *prev) / 2.0;
                    *prev = x;
                    *acc
                }
                _ => {
                    *slot = OpState::Idt { acc: init, prev: x };
                    init
                }
            }
        }
        Expr::Ddt { arg, state } => {
            let x = eval_expr(arg, ctx);
            let slot = &mut ctx.states[*state];
            match slot {
                OpState::Ddt { prev } => {
                    let d = (x - *prev) / ctx.dt;
                    *prev = x;
                    d
                }
                _ => {
                    *slot = OpState::Ddt { prev: x };
                    0.0
                }
            }
        }
        Expr::Delay {
            arg,
            seconds,
            state,
        } => {
            let x = eval_expr(arg, ctx);
            let n = (seconds / ctx.dt).round() as usize;
            if n == 0 {
                return x;
            }
            let slot = &mut ctx.states[*state];
            if !matches!(slot, OpState::Delay { .. }) {
                *slot = OpState::Delay {
                    buf: VecDeque::with_capacity(n + 1),
                };
            }
            match slot {
                OpState::Delay { buf } => {
                    buf.push_back(x);
                    if buf.len() > n {
                        buf.pop_front().unwrap_or(0.0)
                    } else {
                        0.0
                    }
                }
                _ => unreachable!("just initialized"),
            }
        }
    }
}

fn exec_stmts(stmts: &[Stmt], ctx: &mut RunCtx) {
    for stmt in stmts {
        match stmt {
            Stmt::Local { name, value } => {
                let v = eval_expr(value, ctx);
                ctx.scope.push((name.clone(), v));
            }
            Stmt::Assign { port, value } => {
                let v = eval_expr(value, ctx);
                if let Some(o) = ctx.module.outputs.iter().position(|p| p == port) {
                    ctx.out_buf[o] = v;
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = eval_expr(cond, ctx);
                let mark = ctx.scope.len();
                if c != 0.0 {
                    exec_stmts(then_body, ctx);
                } else {
                    exec_stmts(else_body, ctx);
                }
                ctx.scope.truncate(mark);
            }
        }
    }
}

/// An instantiated AHDL module usable as a behavioral [`Block`].
#[derive(Clone, Debug)]
pub struct ModuleBlock {
    module: Arc<Module>,
    params: Vec<(String, f64)>,
    states: Vec<OpState>,
    scope: Vec<(String, f64)>,
    out_buf: Vec<f64>,
}

impl ModuleBlock {
    /// Current value of a parameter.
    pub fn param(&self, name: &str) -> Option<f64> {
        self.params.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Updates a parameter between runs.
    ///
    /// # Errors
    ///
    /// Returns [`AhdlError::Instantiate`] for unknown parameters.
    pub fn set_param(&mut self, name: &str, value: f64) -> Result<()> {
        match self.params.iter_mut().find(|(n, _)| n == name) {
            Some(slot) => {
                slot.1 = value;
                Ok(())
            }
            None => Err(AhdlError::Instantiate(format!(
                "module {} has no parameter `{name}`",
                self.module.name
            ))),
        }
    }
}

impl Block for ModuleBlock {
    fn num_inputs(&self) -> usize {
        self.module.inputs.len()
    }

    fn num_outputs(&self) -> usize {
        self.module.outputs.len()
    }

    fn tick(&mut self, t: f64, dt: f64, inputs: &[f64], outputs: &mut [f64]) {
        self.scope.clear();
        let module = Arc::clone(&self.module);
        let mut ctx = RunCtx {
            module: &module,
            params: &self.params,
            scope: &mut self.scope,
            states: &mut self.states,
            out_buf: &mut self.out_buf,
            inputs,
            t,
            dt,
        };
        exec_stmts(&module.body, &mut ctx);
        outputs.copy_from_slice(&self.out_buf);
    }

    fn reset(&mut self) {
        for s in &mut self.states {
            *s = OpState::Unused;
        }
        self.out_buf.fill(0.0);
    }

    fn kind(&self) -> &str {
        &self.module.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> CompiledModule {
        CompiledModule::compile(src).unwrap()
    }

    #[test]
    fn gain_block_with_override() {
        let m = compile(
            "module amp(in, out) { input in; output out;
             parameter real gain = 1;
             analog { V(out) <- gain * V(in); } }",
        );
        let mut b = m.instantiate(&[("gain", -2.5)]).unwrap();
        let mut out = [0.0];
        b.tick(0.0, 1e-9, &[4.0], &mut out);
        assert_eq!(out[0], -10.0);
        assert_eq!(b.param("gain"), Some(-2.5));
        assert!(m.instantiate(&[("nope", 1.0)]).is_err());
    }

    #[test]
    fn mixer_multiplies() {
        let m = compile(
            "module mixer(rf, lo, if_out) { input rf, lo; output if_out;
             parameter real k = 1.0;
             analog { V(if_out) <- k * V(rf) * V(lo); } }",
        );
        let mut b = m.instantiate(&[("k", 2.0)]).unwrap();
        let mut out = [0.0];
        b.tick(0.0, 1e-9, &[3.0, 5.0], &mut out);
        assert_eq!(out[0], 30.0);
    }

    #[test]
    fn time_driven_oscillator() {
        let m = compile(
            "module osc(out) { output out;
             parameter real f = 1.0;
             analog { V(out) <- sin(2 * PI * f * $time); } }",
        );
        let mut b = m.instantiate(&[]).unwrap();
        let mut out = [0.0];
        b.tick(0.25, 1e-3, &[], &mut out);
        assert!((out[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idt_integrates_a_ramp() {
        let m = compile(
            "module i(x, y) { input x; output y;
             analog { V(y) <- idt(V(x)); } }",
        );
        let mut b = m.instantiate(&[]).unwrap();
        let dt = 1e-3;
        let mut out = [0.0];
        // integrate x(t) = t over [0, 1]: expect ~0.5
        let n = 1000;
        for k in 0..=n {
            let t = k as f64 * dt;
            b.tick(t, dt, &[t], &mut out);
        }
        assert!((out[0] - 0.5).abs() < 1e-6, "got {}", out[0]);
    }

    #[test]
    fn ddt_differentiates() {
        let m = compile(
            "module d(x, y) { input x; output y;
             analog { V(y) <- ddt(V(x)); } }",
        );
        let mut b = m.instantiate(&[]).unwrap();
        let dt = 1e-3;
        let mut out = [0.0];
        for k in 0..10 {
            let t = k as f64 * dt;
            b.tick(t, dt, &[3.0 * t], &mut out);
        }
        assert!((out[0] - 3.0).abs() < 1e-9, "got {}", out[0]);
    }

    #[test]
    fn delay_shifts_by_n_samples() {
        let m = compile(
            "module d(x, y) { input x; output y;
             analog { V(y) <- delay(V(x), 3e-9); } }",
        );
        let mut b = m.instantiate(&[]).unwrap();
        let dt = 1e-9;
        let mut out = [0.0];
        let seq = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut got = Vec::new();
        for (k, &x) in seq.iter().enumerate() {
            b.tick(k as f64 * dt, dt, &[x], &mut out);
            got.push(out[0]);
        }
        assert_eq!(got, vec![0.0, 0.0, 0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn if_else_limiter() {
        let m = compile(
            "module lim(x, y) { input x; output y;
             parameter real c = 1.0;
             analog {
                real v = V(x);
                if (v > c) { V(y) <- c; }
                else { V(y) <- v < -c ? -c : v; }
             } }",
        );
        let mut b = m.instantiate(&[]).unwrap();
        let mut out = [0.0];
        for (x, want) in [(0.5, 0.5), (2.0, 1.0), (-3.0, -1.0)] {
            b.tick(0.0, 1e-9, &[x], &mut out);
            assert_eq!(out[0], want);
        }
    }

    #[test]
    fn reset_clears_state() {
        let m = compile(
            "module i(x, y) { input x; output y;
             analog { V(y) <- idt(V(x), 5.0); } }",
        );
        let mut b = m.instantiate(&[]).unwrap();
        let mut out = [0.0];
        for k in 0..100 {
            b.tick(k as f64, 1.0, &[1.0], &mut out);
        }
        assert!(out[0] > 50.0);
        b.reset();
        b.tick(0.0, 1.0, &[1.0], &mut out);
        assert_eq!(out[0], 5.0, "initial value restored after reset");
    }

    #[test]
    fn multiple_outputs() {
        let m = compile(
            "module split(x, a, b) { input x; output a, b;
             analog { V(a) <- V(x) + 1; V(b) <- V(x) - 1; } }",
        );
        let mut blk = m.instantiate(&[]).unwrap();
        let mut out = [0.0, 0.0];
        blk.tick(0.0, 1e-9, &[10.0], &mut out);
        assert_eq!(out, [11.0, 9.0]);
    }

    #[test]
    fn set_param_between_runs() {
        let m = compile(
            "module amp(in, out) { input in; output out;
             parameter real g = 1;
             analog { V(out) <- g * V(in); } }",
        );
        let mut b = m.instantiate(&[]).unwrap();
        let mut out = [0.0];
        b.tick(0.0, 1e-9, &[1.0], &mut out);
        assert_eq!(out[0], 1.0);
        b.set_param("g", 7.0).unwrap();
        b.tick(0.0, 1e-9, &[1.0], &mut out);
        assert_eq!(out[0], 7.0);
        assert!(b.set_param("zz", 0.0).is_err());
    }

    #[test]
    fn short_circuit_logic() {
        // 1/0 on the right of && must not be evaluated... division by
        // zero yields inf, not a crash, but short-circuiting keeps the
        // boolean clean.
        let m = compile(
            "module l(x, y) { input x; output y;
             analog { V(y) <- (V(x) > 0) && (1 / V(x) > 0.5) ? 1 : 0; } }",
        );
        let mut b = m.instantiate(&[]).unwrap();
        let mut out = [0.0];
        b.tick(0.0, 1.0, &[1.0], &mut out);
        assert_eq!(out[0], 1.0);
        b.tick(0.0, 1.0, &[-1.0], &mut out);
        assert_eq!(out[0], 0.0);
        b.tick(0.0, 1.0, &[4.0], &mut out);
        assert_eq!(out[0], 0.0);
    }
}
