//! Error types for AHDL compilation and behavioral simulation.

use std::fmt;

/// Error raised while lexing, parsing, checking or running AHDL.
#[derive(Clone, Debug, PartialEq)]
pub enum AhdlError {
    /// Tokenizer failure.
    Lex {
        /// 1-based source line.
        line: usize,
        /// Description.
        message: String,
    },
    /// Parser failure.
    Parse {
        /// 1-based source line.
        line: usize,
        /// Description.
        message: String,
    },
    /// Semantic check failure (undeclared port, unassigned output, …).
    Check {
        /// Module being checked.
        module: String,
        /// Description.
        message: String,
    },
    /// Instantiation failure (unknown parameter, missing module).
    Instantiate(String),
    /// System wiring failure (net arity mismatch, unknown net).
    Wiring(String),
    /// Simulation failure (non-finite value, bad probe).
    Simulation(String),
}

impl fmt::Display for AhdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AhdlError::Lex { line, message } => write!(f, "lex error at line {line}: {message}"),
            AhdlError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            AhdlError::Check { module, message } => {
                write!(f, "semantic error in module {module}: {message}")
            }
            AhdlError::Instantiate(m) => write!(f, "instantiation error: {m}"),
            AhdlError::Wiring(m) => write!(f, "wiring error: {m}"),
            AhdlError::Simulation(m) => write!(f, "simulation error: {m}"),
        }
    }
}

impl std::error::Error for AhdlError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, AhdlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = AhdlError::Parse {
            line: 7,
            message: "expected `)`".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = AhdlError::Check {
            module: "amp".into(),
            message: "output y never assigned".into(),
        };
        assert!(e.to_string().contains("amp"));
    }
}
