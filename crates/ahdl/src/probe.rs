//! Fixed-rate simulation traces.

use crate::error::{AhdlError, Result};
use std::collections::HashMap;

/// Uniformly sampled multi-signal record produced by
/// [`crate::system::System::run`].
#[derive(Clone, Debug)]
pub struct Trace {
    fs: f64,
    names: Vec<String>,
    index: HashMap<String, usize>,
    data: Vec<Vec<f64>>,
    len: usize,
}

impl Trace {
    /// Creates an empty trace with preallocated capacity.
    pub fn with_capacity(fs: f64, names: &[String], capacity: usize) -> Self {
        let mut index = HashMap::new();
        for (k, n) in names.iter().enumerate() {
            index.insert(n.clone(), k);
        }
        Trace {
            fs,
            names: names.to_vec(),
            index,
            data: names.iter().map(|_| Vec::with_capacity(capacity)).collect(),
            len: 0,
        }
    }

    /// Appends one sample row.
    ///
    /// # Panics
    ///
    /// Panics if the iterator yields a different count than the signal
    /// count.
    pub fn push(&mut self, values: impl Iterator<Item = f64>) {
        let mut count = 0;
        for (k, v) in values.enumerate() {
            self.data[k].push(v);
            count += 1;
        }
        assert_eq!(count, self.data.len(), "row width mismatch");
        self.len += 1;
    }

    /// Sample rate (Hz).
    pub fn fs(&self) -> f64 {
        self.fs
    }

    /// Number of samples per signal.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Signal names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// A signal by name.
    ///
    /// # Errors
    ///
    /// Returns [`AhdlError::Simulation`] when the signal was not
    /// recorded.
    pub fn signal(&self, name: &str) -> Result<&[f64]> {
        self.index
            .get(name)
            .map(|&k| self.data[k].as_slice())
            .ok_or_else(|| AhdlError::Simulation(format!("no recorded signal `{name}`")))
    }

    /// Time of sample `k`.
    pub fn time_at(&self, k: usize) -> f64 {
        k as f64 / self.fs
    }

    /// Serializes the trace as CSV with a leading time column.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time");
        for n in &self.names {
            out.push(',');
            out.push_str(n);
        }
        out.push('\n');
        for k in 0..self.len {
            out.push_str(&format!("{:e}", self.time_at(k)));
            for col in &self.data {
                out.push_str(&format!(",{:e}", col[k]));
            }
            out.push('\n');
        }
        out
    }

    /// The last recorded segment of a signal: `frac` in `(0, 1]` keeps the
    /// trailing fraction (used to skip settling transients).
    ///
    /// # Errors
    ///
    /// As [`Self::signal`].
    pub fn tail(&self, name: &str, frac: f64) -> Result<&[f64]> {
        let y = self.signal(name)?;
        let keep = ((y.len() as f64) * frac.clamp(1e-9, 1.0)).ceil() as usize;
        Ok(&y[y.len() - keep.min(y.len())..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Trace {
        let mut t = Trace::with_capacity(10.0, &["a".into(), "b".into()], 4);
        for k in 0..4 {
            t.push([k as f64, -(k as f64)].into_iter());
        }
        t
    }

    #[test]
    fn signals_recorded_in_order() {
        let t = trace();
        assert_eq!(t.len(), 4);
        assert_eq!(t.signal("a").unwrap(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(t.signal("b").unwrap(), &[0.0, -1.0, -2.0, -3.0]);
        assert!(t.signal("c").is_err());
        assert_eq!(t.fs(), 10.0);
        assert!((t.time_at(3) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let t = trace();
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("time,a,b"));
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.contains("1e-1,1e0,-1e0"));
    }

    #[test]
    fn tail_keeps_trailing_fraction() {
        let t = trace();
        assert_eq!(t.tail("a", 0.5).unwrap(), &[2.0, 3.0]);
        assert_eq!(t.tail("a", 1.0).unwrap().len(), 4);
        // Tiny fraction keeps at least one sample.
        assert_eq!(t.tail("a", 1e-12).unwrap(), &[3.0]);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Trace::with_capacity(1.0, &["a".into(), "b".into()], 1);
        t.push([1.0].into_iter());
    }
}
