//! Tokenizer for the AHDL subset.

use crate::error::{AhdlError, Result};

/// A lexical token with its source line.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Assign,
    /// `<-` (analog assignment)
    Arrow,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// `$` prefixed identifier (e.g. `$time`).
    Dollar(String),
    /// End of input.
    Eof,
}

/// Tokenizes AHDL source. `//` line comments and `/* */` block comments
/// are skipped.
///
/// # Errors
///
/// Returns [`AhdlError::Lex`] on unexpected characters or malformed
/// numbers.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = bytes.len();
    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                i += 2;
                while i + 1 < n && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= n {
                    return Err(AhdlError::Lex {
                        line,
                        message: "unterminated block comment".into(),
                    });
                }
                i += 2;
            }
            '(' => push(&mut out, TokenKind::LParen, line, &mut i),
            ')' => push(&mut out, TokenKind::RParen, line, &mut i),
            '{' => push(&mut out, TokenKind::LBrace, line, &mut i),
            '}' => push(&mut out, TokenKind::RBrace, line, &mut i),
            ',' => push(&mut out, TokenKind::Comma, line, &mut i),
            ';' => push(&mut out, TokenKind::Semi, line, &mut i),
            '+' => push(&mut out, TokenKind::Plus, line, &mut i),
            '*' => push(&mut out, TokenKind::Star, line, &mut i),
            '/' => push(&mut out, TokenKind::Slash, line, &mut i),
            '%' => push(&mut out, TokenKind::Percent, line, &mut i),
            '?' => push(&mut out, TokenKind::Question, line, &mut i),
            ':' => push(&mut out, TokenKind::Colon, line, &mut i),
            '-' => {
                if i + 1 < n && bytes[i + 1] == '>' {
                    // Allow both `<-` and `->`? Only `<-` is in the
                    // grammar; `-` followed by `>` is a minus then Gt.
                    out.push(Token {
                        kind: TokenKind::Minus,
                        line,
                    });
                    i += 1;
                } else {
                    push(&mut out, TokenKind::Minus, line, &mut i);
                }
            }
            '<' => {
                if i + 1 < n && bytes[i + 1] == '-' {
                    out.push(Token {
                        kind: TokenKind::Arrow,
                        line,
                    });
                    i += 2;
                } else if i + 1 < n && bytes[i + 1] == '=' {
                    out.push(Token {
                        kind: TokenKind::Le,
                        line,
                    });
                    i += 2;
                } else {
                    push(&mut out, TokenKind::Lt, line, &mut i);
                }
            }
            '>' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    out.push(Token {
                        kind: TokenKind::Ge,
                        line,
                    });
                    i += 2;
                } else {
                    push(&mut out, TokenKind::Gt, line, &mut i);
                }
            }
            '=' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    out.push(Token {
                        kind: TokenKind::EqEq,
                        line,
                    });
                    i += 2;
                } else {
                    push(&mut out, TokenKind::Assign, line, &mut i);
                }
            }
            '!' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    out.push(Token {
                        kind: TokenKind::NotEq,
                        line,
                    });
                    i += 2;
                } else {
                    push(&mut out, TokenKind::Not, line, &mut i);
                }
            }
            '&' => {
                if i + 1 < n && bytes[i + 1] == '&' {
                    out.push(Token {
                        kind: TokenKind::AndAnd,
                        line,
                    });
                    i += 2;
                } else {
                    return Err(AhdlError::Lex {
                        line,
                        message: "single `&` is not an operator".into(),
                    });
                }
            }
            '|' => {
                if i + 1 < n && bytes[i + 1] == '|' {
                    out.push(Token {
                        kind: TokenKind::OrOr,
                        line,
                    });
                    i += 2;
                } else {
                    return Err(AhdlError::Lex {
                        line,
                        message: "single `|` is not an operator".into(),
                    });
                }
            }
            '$' => {
                i += 1;
                let start = i;
                while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                if start == i {
                    return Err(AhdlError::Lex {
                        line,
                        message: "`$` must be followed by a name".into(),
                    });
                }
                let name: String = bytes[start..i].iter().collect();
                out.push(Token {
                    kind: TokenKind::Dollar(name),
                    line,
                });
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < n
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == '.'
                        || bytes[i] == 'e'
                        || bytes[i] == 'E'
                        || ((bytes[i] == '+' || bytes[i] == '-')
                            && i > start
                            && (bytes[i - 1] == 'e' || bytes[i - 1] == 'E')))
                {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let value: f64 = text.parse().map_err(|_| AhdlError::Lex {
                    line,
                    message: format!("bad number `{text}`"),
                })?;
                out.push(Token {
                    kind: TokenKind::Number(value),
                    line,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let name: String = bytes[start..i].iter().collect();
                out.push(Token {
                    kind: TokenKind::Ident(name),
                    line,
                });
            }
            other => {
                return Err(AhdlError::Lex {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(out)
}

fn push(out: &mut Vec<Token>, kind: TokenKind, line: usize, i: &mut usize) {
    out.push(Token { kind, line });
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_module_header() {
        let k = kinds("module amp(in, out)");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("module".into()),
                TokenKind::Ident("amp".into()),
                TokenKind::LParen,
                TokenKind::Ident("in".into()),
                TokenKind::Comma,
                TokenKind::Ident("out".into()),
                TokenKind::RParen,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_arrow_and_comparisons() {
        let k = kinds("V(out) <- a <= b != c");
        assert!(k.contains(&TokenKind::Arrow));
        assert!(k.contains(&TokenKind::Le));
        assert!(k.contains(&TokenKind::NotEq));
    }

    #[test]
    fn lexes_numbers() {
        let k = kinds("1 2.5 1e-3 3.0E+2 .5");
        let nums: Vec<f64> = k
            .iter()
            .filter_map(|t| match t {
                TokenKind::Number(v) => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec![1.0, 2.5, 1e-3, 300.0, 0.5]);
    }

    #[test]
    fn comments_skipped_and_lines_tracked() {
        let toks = lex("a // hi\n/* multi\nline */ b").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 3);
        match &toks[1].kind {
            TokenKind::Ident(n) => assert_eq!(n, "b"),
            _ => panic!(),
        }
    }

    #[test]
    fn dollar_names() {
        let k = kinds("$time + $dt");
        assert_eq!(k[0], TokenKind::Dollar("time".into()));
        assert_eq!(k[2], TokenKind::Dollar("dt".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a # b").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("$ x").is_err());
        assert!(lex("/* open").is_err());
    }
}
