//! Textual system netlists: the "block diagram" level of the paper's
//! Fig. 1 design flow, as a parseable format.
//!
//! A system file holds AHDL `module` definitions plus one `system` block
//! wiring built-in and user-defined blocks by named nets:
//!
//! ```text
//! module square(x, y) {
//!     input x; output y;
//!     analog { V(y) <- V(x) * V(x); }
//! }
//!
//! system demo {
//!     S1 : sine(freq=1e6, ampl=1.0) -> (a);
//!     G1 : gain(k=2.0) (a) -> (b);
//!     Q1 : square() (b) -> (c);
//!     SUM : adder(n=2) (b, c) -> (out);
//! }
//! ```
//!
//! Built-in kinds: `sine`, `constant`, `gain`, `adder`, `mixer`,
//! `limiter`, `softlimiter`, `poly`, `noise`, `quadlo`, `vco`,
//! `phase90`, `phase90err`, `lp1`, `butterworth`, `bandpass`. A kind
//! matching a `module` name instantiates that AHDL module (parameters
//! become overrides).

use crate::ast::Module;
use crate::block::Block;
use crate::blocks::arith::{Adder, Constant, Gain, Mixer};
use crate::blocks::filter::{FilterChain, FirstOrderLp};
use crate::blocks::noise::GaussianNoise;
use crate::blocks::nonlin::{HardLimiter, Polynomial, SoftLimiter};
use crate::blocks::osc::{QuadratureLo, SineSource, Vco};
use crate::blocks::phase::{ImpairedShifter90, PhaseShifter90};
use crate::error::{AhdlError, Result};
use crate::eval::CompiledModule;
use crate::system::System;
use std::collections::HashMap;

/// A parsed system netlist, ready to elaborate.
#[derive(Clone, Debug)]
pub struct SystemNetlist {
    /// System name.
    pub name: String,
    /// Block instantiations in file order.
    pub instances: Vec<InstanceDecl>,
    /// AHDL modules defined alongside.
    pub modules: Vec<CompiledModule>,
}

/// One `NAME : kind(params) (ins) -> (outs);` declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct InstanceDecl {
    /// Instance name.
    pub name: String,
    /// Block kind (builtin name or module name).
    pub kind: String,
    /// `key=value` parameters.
    pub params: Vec<(String, f64)>,
    /// Input net names.
    pub inputs: Vec<String>,
    /// Output net names.
    pub outputs: Vec<String>,
}

/// Parses a system file (modules + one `system` block).
///
/// # Errors
///
/// Lex/parse errors with line numbers; a parse error if no `system`
/// block is present.
pub fn parse_system(src: &str) -> Result<SystemNetlist> {
    // Split the source: `module ...` sections are handed to the AHDL
    // parser; the `system { ... }` section is parsed here. We scan
    // brace-balanced top-level items.
    let items = split_items(src)?;
    let mut modules = Vec::new();
    let mut system: Option<(String, String)> = None;
    for item in items {
        if item.text.trim_start().starts_with("module") {
            let m: Module = crate::parse::parse_module(&item.text)?;
            modules.push(CompiledModule::from_module(m)?);
        } else if let Some(rest) = item.text.trim_start().strip_prefix("system") {
            let (name, body) = rest.split_once('{').ok_or(AhdlError::Parse {
                line: item.line,
                message: "system needs `{`".into(),
            })?;
            let body = body.trim_end().strip_suffix('}').ok_or(AhdlError::Parse {
                line: item.line,
                message: "system block not closed".into(),
            })?;
            if system.is_some() {
                return Err(AhdlError::Parse {
                    line: item.line,
                    message: "multiple system blocks".into(),
                });
            }
            system = Some((name.trim().to_string(), body.to_string()));
        } else {
            return Err(AhdlError::Parse {
                line: item.line,
                message: format!(
                    "expected `module` or `system`, found: {}",
                    snippet(&item.text)
                ),
            });
        }
    }
    let (name, body) = system.ok_or(AhdlError::Parse {
        line: 1,
        message: "no system block found".into(),
    })?;
    let instances = parse_instances(&body)?;
    Ok(SystemNetlist {
        name,
        instances,
        modules,
    })
}

fn snippet(text: &str) -> String {
    text.trim().chars().take(24).collect()
}

struct Item {
    line: usize,
    text: String,
}

/// Splits top-level `module`/`system` items by brace balance, skipping
/// `//` comments.
fn split_items(src: &str) -> Result<Vec<Item>> {
    let mut items = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    let mut cur_line = 1usize;
    let mut line = 1usize;
    let mut chars = src.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '\n' {
            line += 1;
        }
        if c == '/' && chars.peek() == Some(&'/') {
            for cc in chars.by_ref() {
                if cc == '\n' {
                    line += 1;
                    break;
                }
            }
            cur.push('\n');
            continue;
        }
        if cur.trim().is_empty() && !c.is_whitespace() {
            cur_line = line;
        }
        cur.push(c);
        match c {
            '{' => depth += 1,
            '}' => {
                depth = depth.checked_sub(1).ok_or(AhdlError::Parse {
                    line,
                    message: "unbalanced `}`".into(),
                })?;
                if depth == 0 {
                    items.push(Item {
                        line: cur_line,
                        text: std::mem::take(&mut cur),
                    });
                }
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err(AhdlError::Parse {
            line,
            message: "unbalanced `{`".into(),
        });
    }
    if !cur.trim().is_empty() {
        return Err(AhdlError::Parse {
            line,
            message: format!("trailing text outside any block: {}", snippet(&cur)),
        });
    }
    Ok(items)
}

fn parse_instances(body: &str) -> Result<Vec<InstanceDecl>> {
    let mut out = Vec::new();
    for (k, stmt) in body.split(';').enumerate() {
        let stmt = stmt.trim();
        if stmt.is_empty() {
            continue;
        }
        let err = |m: String| AhdlError::Parse {
            line: k + 1,
            message: m,
        };
        // NAME : kind(params) [(ins)] -> (outs)
        let (name, rest) = stmt
            .split_once(':')
            .ok_or_else(|| err(format!("instance needs `name : kind`, got `{stmt}`")))?;
        let (head, outs) = rest
            .split_once("->")
            .ok_or_else(|| err(format!("instance needs `-> (outputs)`: `{stmt}`")))?;
        let outputs = parse_name_list(outs).map_err(&err)?;
        let head = head.trim();
        let open = head
            .find('(')
            .ok_or_else(|| err(format!("kind needs parameter parens: `{head}`")))?;
        let kind = head[..open].trim().to_string();
        let close = head[open..]
            .find(')')
            .map(|p| open + p)
            .ok_or_else(|| err("unclosed parameter list".into()))?;
        let params = parse_params(&head[open + 1..close]).map_err(&err)?;
        let tail = head[close + 1..].trim();
        let inputs = if tail.is_empty() {
            Vec::new()
        } else {
            parse_name_list(tail).map_err(&err)?
        };
        if kind.is_empty() || name.trim().is_empty() {
            return Err(err(format!("empty name or kind in `{stmt}`")));
        }
        out.push(InstanceDecl {
            name: name.trim().to_string(),
            kind,
            params,
            inputs,
            outputs,
        });
    }
    Ok(out)
}

fn parse_name_list(text: &str) -> std::result::Result<Vec<String>, String> {
    let t = text.trim();
    let inner = t
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| format!("expected `(a, b, ...)`, got `{t}`"))?;
    Ok(inner
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect())
}

fn parse_params(text: &str) -> std::result::Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for item in text.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let (k, v) = item
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got `{item}`"))?;
        let value: f64 = v
            .trim()
            .parse()
            .map_err(|_| format!("bad number `{}`", v.trim()))?;
        out.push((k.trim().to_string(), value));
    }
    Ok(out)
}

/// Elaborates a parsed netlist into a runnable [`System`].
///
/// `fs` is needed because sampled filters are designed against it.
///
/// # Errors
///
/// [`AhdlError::Wiring`] for unknown kinds, missing parameters or arity
/// mismatches.
pub fn elaborate(netlist: &SystemNetlist, fs: f64) -> Result<System> {
    let modules: HashMap<&str, &CompiledModule> =
        netlist.modules.iter().map(|m| (m.name(), m)).collect();
    let mut sys = System::new();
    for inst in &netlist.instances {
        let ins: Vec<_> = inst.inputs.iter().map(|n| sys.net(n)).collect();
        let outs: Vec<_> = inst.outputs.iter().map(|n| sys.net(n)).collect();
        let block = build_block(inst, &modules, fs)?;
        sys.add_boxed(&inst.name, block, &ins, &outs)?;
    }
    Ok(sys)
}

/// Parses and elaborates in one call.
///
/// # Errors
///
/// As [`parse_system`] and [`elaborate`].
pub fn load_system(src: &str, fs: f64) -> Result<System> {
    elaborate(&parse_system(src)?, fs)
}

fn build_block(
    inst: &InstanceDecl,
    modules: &HashMap<&str, &CompiledModule>,
    fs: f64,
) -> Result<Box<dyn Block>> {
    let p = Params {
        inst,
        map: inst.params.iter().cloned().collect(),
    };
    let b: Box<dyn Block> = match inst.kind.as_str() {
        "sine" => Box::new(SineSource {
            freq: p.req("freq")?,
            ampl: p.opt("ampl", 1.0),
            phase: p.opt("phase_deg", 0.0).to_radians(),
            offset: p.opt("offset", 0.0),
        }),
        "constant" => Box::new(Constant::new(p.req("value")?)),
        "gain" => Box::new(Gain::new(p.req("k")?)),
        "adder" => Box::new(Adder::new(p.opt("n", 2.0) as usize)),
        "mixer" => Box::new(Mixer::new(p.opt("k", 1.0))),
        "limiter" => Box::new(HardLimiter::new(p.req("limit")?)),
        "softlimiter" => Box::new(SoftLimiter::new(p.req("limit")?)),
        "poly" => Box::new(Polynomial::new(
            p.opt("a1", 1.0),
            p.opt("a2", 0.0),
            p.opt("a3", 0.0),
        )),
        "noise" => Box::new(GaussianNoise::new(p.req("rms")?, p.opt("seed", 1.0) as u64)),
        "quadlo" => Box::new(
            QuadratureLo::new(p.req("freq")?, p.opt("ampl", 1.0))
                .with_errors(p.opt("gain_err", 0.0), p.opt("phase_err_deg", 0.0)),
        ),
        "vco" => Box::new(Vco::new(p.req("f0")?, p.req("kvco")?, p.opt("ampl", 1.0))),
        "phase90" => Box::new(PhaseShifter90::new(p.req("f0")?, fs)),
        "phase90err" => Box::new(ImpairedShifter90::new(
            p.req("f0")?,
            fs,
            p.opt("phase_err_deg", 0.0),
            p.opt("gain_err", 0.0),
        )),
        "lp1" => Box::new(FirstOrderLp::new(p.req("fc")?, fs)),
        "butterworth" => Box::new(FilterChain::butterworth_lowpass(
            p.opt("order", 2.0) as usize,
            p.req("fc")?,
            fs,
        )),
        "bandpass" => Box::new(FilterChain::bandpass(
            p.req("f0")?,
            p.req("bw")?,
            p.opt("sections", 2.0) as usize,
            fs,
        )),
        other => match modules.get(other) {
            Some(module) => {
                let overrides: Vec<(&str, f64)> =
                    inst.params.iter().map(|(k, v)| (k.as_str(), *v)).collect();
                Box::new(module.instantiate(&overrides)?)
            }
            None => {
                return Err(AhdlError::Wiring(format!(
                    "{}: unknown block kind `{other}`",
                    inst.name
                )))
            }
        },
    };
    Ok(b)
}

struct Params<'a> {
    inst: &'a InstanceDecl,
    map: HashMap<String, f64>,
}

impl Params<'_> {
    fn req(&self, key: &str) -> Result<f64> {
        self.map.get(key).copied().ok_or_else(|| {
            AhdlError::Wiring(format!(
                "{}: kind `{}` requires parameter `{key}`",
                self.inst.name, self.inst.kind
            ))
        })
    }

    fn opt(&self, key: &str, default: f64) -> f64 {
        self.map.get(key).copied().unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectrum::tone_power;

    #[test]
    fn parses_and_runs_builtin_chain() {
        let sys_src = "
            system demo {
                S1 : sine(freq=1e6, ampl=1.0) -> (a);
                G1 : gain(k=2.0) (a) -> (b);
            }";
        let mut sys = load_system(sys_src, 50e6).unwrap();
        let trace = sys.run(50e6, 50e-6).unwrap();
        let p = tone_power(&trace, "b", 1e6, 0.5).unwrap();
        assert!((p - 2.0).abs() < 1e-3, "p = {p}"); // (2.0)^2/2
    }

    #[test]
    fn user_module_instantiated_by_kind() {
        let src = "
            module square(x, y) {
                input x; output y;
                analog { V(y) <- V(x) * V(x); }
            }
            system s {
                C : constant(value=3.0) -> (a);
                SQ : square() (a) -> (b);
            }";
        let mut sys = load_system(src, 1e6).unwrap();
        let trace = sys.run(1e6, 10e-6).unwrap();
        assert_eq!(*trace.signal("b").unwrap().last().unwrap(), 9.0);
    }

    #[test]
    fn module_params_forward_as_overrides() {
        let src = "
            module amp(x, y) {
                input x; output y;
                parameter real g = 1.0;
                analog { V(y) <- g * V(x); }
            }
            system s {
                C : constant(value=1.0) -> (a);
                A : amp(g=7.5) (a) -> (b);
            }";
        let mut sys = load_system(src, 1e6).unwrap();
        let trace = sys.run(1e6, 5e-6).unwrap();
        assert_eq!(*trace.signal("b").unwrap().last().unwrap(), 7.5);
    }

    #[test]
    fn mini_receiver_in_one_file() {
        // A mixer + bandpass receiver written entirely as a system file.
        let src = "
            system rx {
                RF  : sine(freq=10e6, ampl=1.0) -> (rf);
                LO  : sine(freq=9e6, ampl=1.0) -> (lo);
                MIX : mixer(k=1.0) (rf, lo) -> (mixed);
                IF  : bandpass(f0=1e6, bw=0.4e6, sections=2) (mixed) -> (ifout);
            }";
        let fs = 200e6;
        let mut sys = load_system(src, fs).unwrap();
        let trace = sys.run(fs, 60e-6).unwrap();
        let p_if = tone_power(&trace, "ifout", 1e6, 0.4).unwrap();
        let p_sum = tone_power(&trace, "ifout", 19e6, 0.4).unwrap();
        assert!(p_if > 0.1, "difference product passes: {p_if}");
        assert!(p_sum < p_if / 100.0, "sum product rejected: {p_sum}");
    }

    #[test]
    fn error_cases() {
        assert!(parse_system("").is_err(), "no system");
        assert!(parse_system("system s { B : bogus() -> (a); }").is_ok());
        assert!(
            load_system("system s { B : bogus() -> (a); }", 1e6).is_err(),
            "unknown kind at elaboration"
        );
        assert!(
            load_system("system s { S : sine() -> (a); }", 1e6).is_err(),
            "missing required param"
        );
        assert!(parse_system("system s { S1 sine() -> (a); }").is_err());
        assert!(parse_system("garbage { }").is_err());
        assert!(parse_system("system a { } system b { }").is_err());
        assert!(parse_system("system a { S : sine(freq=1) -> (x); ").is_err());
    }

    #[test]
    fn comments_allowed() {
        let src = "
            // the whole tuner in one line of comment
            system s {
                C : constant(value=1.0) -> (a); // source
            }";
        let mut sys = load_system(src, 1e6).unwrap();
        let trace = sys.run(1e6, 2e-6).unwrap();
        assert_eq!(*trace.signal("a").unwrap().last().unwrap(), 1.0);
    }
}
