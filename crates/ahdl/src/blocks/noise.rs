//! Noise sources for behavioral simulations.

use crate::block::Block;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// White Gaussian noise source with a given RMS level; reproducible via
/// an explicit seed.
#[derive(Debug)]
pub struct GaussianNoise {
    /// RMS amplitude.
    pub rms: f64,
    seed: u64,
    rng: StdRng,
    spare: Option<f64>,
}

impl GaussianNoise {
    /// Creates a seeded Gaussian noise source.
    pub fn new(rms: f64, seed: u64) -> Self {
        GaussianNoise {
            rms,
            seed,
            rng: StdRng::seed_from_u64(seed),
            spare: None,
        }
    }

    fn draw(&mut self) -> f64 {
        // Box–Muller, using both outputs.
        if let Some(v) = self.spare.take() {
            return v;
        }
        let u1: f64 = self.rng.random::<f64>().max(1e-15);
        let u2: f64 = self.rng.random();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }
}

impl Block for GaussianNoise {
    fn num_inputs(&self) -> usize {
        0
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn tick(&mut self, _t: f64, _dt: f64, _inputs: &[f64], outputs: &mut [f64]) {
        outputs[0] = self.rms * self.draw();
    }
    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.spare = None;
    }
    fn kind(&self) -> &str {
        "noise"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(n: usize, rms: f64, seed: u64) -> Vec<f64> {
        let mut src = GaussianNoise::new(rms, seed);
        let mut out = [0.0];
        (0..n)
            .map(|k| {
                src.tick(k as f64, 1.0, &[], &mut out);
                out[0]
            })
            .collect()
    }

    #[test]
    fn rms_is_calibrated() {
        let xs = collect(100_000, 2.0, 1);
        let ms = xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64;
        assert!((ms.sqrt() - 2.0).abs() < 0.05, "rms = {}", ms.sqrt());
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05);
    }

    #[test]
    fn seeded_and_resettable() {
        let a = collect(100, 1.0, 7);
        let b = collect(100, 1.0, 7);
        assert_eq!(a, b);
        let c = collect(100, 1.0, 8);
        assert_ne!(a, c);
        let mut src = GaussianNoise::new(1.0, 7);
        let mut out = [0.0];
        src.tick(0.0, 1.0, &[], &mut out);
        let first = out[0];
        src.reset();
        src.tick(0.0, 1.0, &[], &mut out);
        assert_eq!(out[0], first);
    }
}
