//! Discrete-time filters: biquad sections, Butterworth low-pass design,
//! and cascaded band-pass chains for IF selectivity.
//!
//! All filters are sample-rate-aware: they are designed against the
//! system's fixed step (`fs = 1/dt`) passed at construction.

use crate::block::Block;
use std::f64::consts::PI;

/// A direct-form-II-transposed biquad section
/// `H(z) = (b0 + b1 z^-1 + b2 z^-2) / (1 + a1 z^-1 + a2 z^-2)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Biquad {
    /// Numerator coefficients.
    pub b: [f64; 3],
    /// Denominator coefficients (a0 normalized to 1; `a[0]` is a1).
    pub a: [f64; 2],
    s1: f64,
    s2: f64,
}

impl Biquad {
    /// Creates a section from raw coefficients.
    pub fn from_coeffs(b: [f64; 3], a: [f64; 2]) -> Self {
        Biquad {
            b,
            a,
            s1: 0.0,
            s2: 0.0,
        }
    }

    /// Identity (pass-through) section.
    pub fn identity() -> Self {
        Biquad::from_coeffs([1.0, 0.0, 0.0], [0.0, 0.0])
    }

    /// RBJ constant-peak-gain band-pass section at `f0` with quality `Q`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < f0 < fs/2` and `q > 0`.
    pub fn bandpass(f0: f64, q: f64, fs: f64) -> Self {
        assert!(f0 > 0.0 && f0 < fs / 2.0, "f0 must be below Nyquist");
        assert!(q > 0.0, "Q must be positive");
        let w0 = 2.0 * PI * f0 / fs;
        let alpha = w0.sin() / (2.0 * q);
        let a0 = 1.0 + alpha;
        Biquad::from_coeffs(
            [alpha / a0, 0.0, -alpha / a0],
            [-2.0 * w0.cos() / a0, (1.0 - alpha) / a0],
        )
    }

    /// RBJ low-pass section at `fc` with quality `Q`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fc < fs/2` and `q > 0`.
    pub fn lowpass(fc: f64, q: f64, fs: f64) -> Self {
        assert!(fc > 0.0 && fc < fs / 2.0, "fc must be below Nyquist");
        assert!(q > 0.0, "Q must be positive");
        let w0 = 2.0 * PI * fc / fs;
        let alpha = w0.sin() / (2.0 * q);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Biquad::from_coeffs(
            [
                (1.0 - cw) / 2.0 / a0,
                (1.0 - cw) / a0,
                (1.0 - cw) / 2.0 / a0,
            ],
            [-2.0 * cw / a0, (1.0 - alpha) / a0],
        )
    }

    /// Processes one sample.
    #[inline]
    pub fn step(&mut self, x: f64) -> f64 {
        let y = self.b[0] * x + self.s1;
        self.s1 = self.b[1] * x - self.a[0] * y + self.s2;
        self.s2 = self.b[2] * x - self.a[1] * y;
        y
    }

    /// Clears the delay line.
    pub fn clear(&mut self) {
        self.s1 = 0.0;
        self.s2 = 0.0;
    }

    /// Complex frequency response at `f` given sample rate `fs`.
    pub fn response(&self, f: f64, fs: f64) -> ahfic_num::Complex {
        use ahfic_num::Complex;
        let z1 = Complex::from_polar(1.0, -2.0 * PI * f / fs);
        let z2 = z1 * z1;
        let num = Complex::from_re(self.b[0]) + z1 * self.b[1] + z2 * self.b[2];
        let den = Complex::ONE + z1 * self.a[0] + z2 * self.a[1];
        num / den
    }
}

/// A cascade of biquad sections presented as one block.
#[derive(Clone, Debug, PartialEq)]
pub struct FilterChain {
    sections: Vec<Biquad>,
    label: String,
}

impl FilterChain {
    /// Wraps raw sections.
    pub fn new(sections: Vec<Biquad>, label: impl Into<String>) -> Self {
        FilterChain {
            sections,
            label: label.into(),
        }
    }

    /// Designs a Butterworth low-pass of the given order via bilinear
    /// transform with frequency prewarping.
    ///
    /// # Panics
    ///
    /// Panics unless `order >= 1` and `0 < fc < fs/2`.
    pub fn butterworth_lowpass(order: usize, fc: f64, fs: f64) -> Self {
        assert!(order >= 1, "order must be >= 1");
        assert!(fc > 0.0 && fc < fs / 2.0, "fc must be below Nyquist");
        let k = 1.0 / (PI * fc / fs).tan(); // prewarped 1/tan
        let mut sections = Vec::new();
        let pairs = order / 2;
        for m in 0..pairs {
            // Prototype pair: s^2 + 2 sin(theta) s + 1.
            let theta = PI * (2.0 * m as f64 + 1.0) / (2.0 * order as f64);
            let a1 = 2.0 * theta.sin();
            let d0 = k * k + a1 * k + 1.0;
            sections.push(Biquad::from_coeffs(
                [1.0 / d0, 2.0 / d0, 1.0 / d0],
                [2.0 * (1.0 - k * k) / d0, (k * k - a1 * k + 1.0) / d0],
            ));
        }
        if order % 2 == 1 {
            // Real pole s + 1.
            let d0 = k + 1.0;
            sections.push(Biquad::from_coeffs(
                [1.0 / d0, 1.0 / d0, 0.0],
                [(1.0 - k) / d0, 0.0],
            ));
        }
        FilterChain::new(sections, format!("butterworth-lp{order}"))
    }

    /// Synchronously tuned band-pass: `n_sections` identical RBJ
    /// band-pass biquads at `f0`, each with `Q = f0 / bandwidth`, with the
    /// cascade normalized to unity gain at `f0`.
    ///
    /// # Panics
    ///
    /// Panics unless `n_sections >= 1` and the RBJ constraints hold.
    pub fn bandpass(f0: f64, bandwidth: f64, n_sections: usize, fs: f64) -> Self {
        assert!(n_sections >= 1, "need at least one section");
        let q = f0 / bandwidth;
        let sections = vec![Biquad::bandpass(f0, q, fs); n_sections];
        FilterChain::new(sections, format!("bpf{n_sections}@{f0:.3e}"))
    }

    /// Number of biquad sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// True if the chain has no sections (pass-through).
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Complex response of the whole cascade at `f`.
    pub fn response(&self, f: f64, fs: f64) -> ahfic_num::Complex {
        self.sections
            .iter()
            .fold(ahfic_num::Complex::ONE, |acc, s| acc * s.response(f, fs))
    }
}

impl Block for FilterChain {
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn tick(&mut self, _t: f64, _dt: f64, inputs: &[f64], outputs: &mut [f64]) {
        let mut x = inputs[0];
        for s in &mut self.sections {
            x = s.step(x);
        }
        outputs[0] = x;
    }
    fn reset(&mut self) {
        for s in &mut self.sections {
            s.clear();
        }
    }
    fn kind(&self) -> &str {
        &self.label
    }
}

/// First-order low-pass `H(s) = 1/(1 + s/w0)` discretized by bilinear
/// transform.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FirstOrderLp {
    section: Biquad,
}

impl FirstOrderLp {
    /// Creates a first-order low-pass with -3 dB corner `fc`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fc < fs/2`.
    pub fn new(fc: f64, fs: f64) -> Self {
        assert!(fc > 0.0 && fc < fs / 2.0);
        let k = 1.0 / (PI * fc / fs).tan();
        let d0 = k + 1.0;
        FirstOrderLp {
            section: Biquad::from_coeffs([1.0 / d0, 1.0 / d0, 0.0], [(1.0 - k) / d0, 0.0]),
        }
    }
}

impl Block for FirstOrderLp {
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn tick(&mut self, _t: f64, _dt: f64, inputs: &[f64], outputs: &mut [f64]) {
        outputs[0] = self.section.step(inputs[0]);
    }
    fn reset(&mut self) {
        self.section.clear();
    }
    fn kind(&self) -> &str {
        "lp1"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mag(chain: &FilterChain, f: f64, fs: f64) -> f64 {
        chain.response(f, fs).abs()
    }

    #[test]
    fn butterworth_lp_corner_is_3db() {
        let fs = 1e6;
        for order in [1usize, 2, 3, 4, 5] {
            let ch = FilterChain::butterworth_lowpass(order, 50e3, fs);
            let g = mag(&ch, 50e3, fs);
            assert!(
                (g - 1.0 / 2.0f64.sqrt()).abs() < 1e-3,
                "order {order}: corner gain {g}"
            );
            assert!((mag(&ch, 1e3, fs) - 1.0).abs() < 1e-3, "passband");
        }
    }

    #[test]
    fn butterworth_rolloff_scales_with_order() {
        let fs = 1e6;
        // One decade above corner: expect ~ -20*order dB.
        for order in [1usize, 2, 4] {
            let ch = FilterChain::butterworth_lowpass(order, 10e3, fs);
            let g_db = 20.0 * mag(&ch, 100e3, fs).log10();
            let expect = -20.0 * order as f64;
            assert!(
                (g_db - expect).abs() < 2.0,
                "order {order}: {g_db} dB vs {expect}"
            );
        }
    }

    #[test]
    fn bandpass_peaks_at_center_and_rejects_elsewhere() {
        let fs = 10e9;
        let ch = FilterChain::bandpass(1.3e9, 100e6, 3, fs);
        let g0 = mag(&ch, 1.3e9, fs);
        assert!((g0 - 1.0).abs() < 1e-9, "center gain {g0}");
        assert!(mag(&ch, 0.9e9, fs) < 0.02);
        assert!(mag(&ch, 1.7e9, fs) < 0.02);
    }

    #[test]
    fn bandpass_time_domain_matches_response() {
        let fs = 1e9;
        let f0 = 45e6;
        let mut ch = FilterChain::bandpass(f0, 10e6, 2, fs);
        // Drive with a tone at f0, measure output amplitude after settle.
        let dt = 1.0 / fs;
        let mut out = [0.0];
        let mut peak = 0.0f64;
        for kk in 0..20000 {
            let t = kk as f64 * dt;
            ch.tick(t, dt, &[(2.0 * PI * f0 * t).sin()], &mut out);
            if kk > 15000 {
                peak = peak.max(out[0].abs());
            }
        }
        assert!((peak - 1.0).abs() < 0.02, "peak = {peak}");
    }

    #[test]
    fn first_order_lp_dc_gain_unity() {
        let fs = 1e6;
        let mut lp = FirstOrderLp::new(1e3, fs);
        let mut out = [0.0];
        for k in 0..20000 {
            lp.tick(k as f64 / fs, 1.0 / fs, &[1.0], &mut out);
        }
        assert!((out[0] - 1.0).abs() < 1e-6);
        lp.reset();
        lp.tick(0.0, 1.0 / fs, &[1.0], &mut out);
        assert!(out[0] < 0.1, "state cleared");
    }

    #[test]
    fn biquad_identity_passes_through() {
        let mut b = Biquad::identity();
        assert_eq!(b.step(3.25), 3.25);
        assert_eq!(b.step(-1.0), -1.0);
    }

    #[test]
    #[should_panic(expected = "Nyquist")]
    fn rejects_supersonic_corner() {
        let _ = FilterChain::butterworth_lowpass(2, 6e5, 1e6);
    }
}
