//! Oscillator sources: sine, quadrature LO with gain/phase imbalance
//! (the error knobs of the paper's Fig. 5 experiment), and a VCO.

use crate::block::Block;
use std::f64::consts::PI;

/// Ideal sine source `y = offset + a*sin(2*pi*f*t + phi)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SineSource {
    /// Frequency (Hz).
    pub freq: f64,
    /// Amplitude.
    pub ampl: f64,
    /// Phase (radians).
    pub phase: f64,
    /// DC offset.
    pub offset: f64,
}

impl SineSource {
    /// Creates a zero-phase, zero-offset sine.
    pub fn new(freq: f64, ampl: f64) -> Self {
        SineSource {
            freq,
            ampl,
            phase: 0.0,
            offset: 0.0,
        }
    }
}

impl Block for SineSource {
    fn num_inputs(&self) -> usize {
        0
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn tick(&mut self, t: f64, _dt: f64, _inputs: &[f64], outputs: &mut [f64]) {
        outputs[0] = self.offset + self.ampl * (2.0 * PI * self.freq * t + self.phase).sin();
    }
    fn reset(&mut self) {}
    fn kind(&self) -> &str {
        "sine"
    }
}

/// Quadrature local oscillator with impairments: output 0 (I) is
/// `a*cos(wt)`, output 1 (Q) is `a*(1+gain_err)*sin(wt + phase_err)`.
///
/// A perfect quadrature pair has `gain_err = 0` and `phase_err_deg = 0`;
/// the image-rejection ratio of a Hartley receiver is set exactly by
/// these two numbers, which is what the paper's Fig. 5 sweeps.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuadratureLo {
    /// Frequency (Hz).
    pub freq: f64,
    /// Amplitude of the I output.
    pub ampl: f64,
    /// Fractional gain imbalance of the Q output (0.01 = 1 %).
    pub gain_err: f64,
    /// Quadrature phase error (degrees) of the Q output.
    pub phase_err_deg: f64,
}

impl QuadratureLo {
    /// Creates an ideal quadrature LO.
    pub fn new(freq: f64, ampl: f64) -> Self {
        QuadratureLo {
            freq,
            ampl,
            gain_err: 0.0,
            phase_err_deg: 0.0,
        }
    }

    /// Applies impairments (builder style).
    pub fn with_errors(mut self, gain_err: f64, phase_err_deg: f64) -> Self {
        self.gain_err = gain_err;
        self.phase_err_deg = phase_err_deg;
        self
    }
}

impl Block for QuadratureLo {
    fn num_inputs(&self) -> usize {
        0
    }
    fn num_outputs(&self) -> usize {
        2
    }
    fn tick(&mut self, t: f64, _dt: f64, _inputs: &[f64], outputs: &mut [f64]) {
        let w = 2.0 * PI * self.freq * t;
        outputs[0] = self.ampl * w.cos();
        outputs[1] =
            self.ampl * (1.0 + self.gain_err) * (w + self.phase_err_deg.to_radians()).sin();
    }
    fn reset(&mut self) {}
    fn kind(&self) -> &str {
        "quadrature-lo"
    }
}

/// Voltage-controlled oscillator: `y = a*sin(2*pi*(f0*t + kvco*idt(vin)))`.
///
/// The phase accumulates `f0 + kvco * vin(t)`, so `kvco` is in Hz/V.
#[derive(Clone, Debug, PartialEq)]
pub struct Vco {
    /// Center frequency (Hz).
    pub f0: f64,
    /// Tuning gain (Hz/V).
    pub kvco: f64,
    /// Output amplitude.
    pub ampl: f64,
    phase: f64,
}

impl Vco {
    /// Creates a VCO.
    pub fn new(f0: f64, kvco: f64, ampl: f64) -> Self {
        Vco {
            f0,
            kvco,
            ampl,
            phase: 0.0,
        }
    }
}

impl Block for Vco {
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn tick(&mut self, _t: f64, dt: f64, inputs: &[f64], outputs: &mut [f64]) {
        self.phase += 2.0 * PI * (self.f0 + self.kvco * inputs[0]) * dt;
        if self.phase > 2.0 * PI {
            self.phase -= 2.0 * PI * (self.phase / (2.0 * PI)).floor();
        }
        outputs[0] = self.ampl * self.phase.sin();
    }
    fn reset(&mut self) {
        self.phase = 0.0;
    }
    fn kind(&self) -> &str {
        "vco"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sine_hits_quarter_period_peak() {
        let mut s = SineSource::new(1.0, 2.0);
        let mut out = [0.0];
        s.tick(0.25, 1e-3, &[], &mut out);
        assert!((out[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quadrature_outputs_are_orthogonal_when_ideal() {
        let mut lo = QuadratureLo::new(1.0, 1.0);
        let mut out = [0.0, 0.0];
        // Correlate I and Q over one period: ideal quadrature integrates
        // to zero.
        let n = 1000;
        let dt = 1.0 / n as f64;
        let mut dot = 0.0;
        for k in 0..n {
            lo.tick(k as f64 * dt, dt, &[], &mut out);
            dot += out[0] * out[1] * dt;
        }
        assert!(dot.abs() < 1e-6, "dot = {dot}");
    }

    #[test]
    fn phase_error_breaks_orthogonality() {
        let mut lo = QuadratureLo::new(1.0, 1.0).with_errors(0.0, 10.0);
        let mut out = [0.0, 0.0];
        let n = 1000;
        let dt = 1.0 / n as f64;
        let mut dot = 0.0;
        for k in 0..n {
            lo.tick(k as f64 * dt, dt, &[], &mut out);
            dot += out[0] * out[1] * dt;
        }
        // <cos(w t), sin(w t + e)> = sin(e)/2 over a period.
        let expect = (10f64.to_radians()).sin() / 2.0;
        assert!((dot - expect).abs() < 1e-4, "dot = {dot} vs {expect}");
    }

    #[test]
    fn gain_imbalance_scales_q() {
        let mut lo = QuadratureLo::new(1.0, 1.0).with_errors(0.05, 0.0);
        let mut out = [0.0, 0.0];
        lo.tick(0.25, 1e-3, &[], &mut out); // sin peak
        assert!((out[1] - 1.05).abs() < 1e-9);
    }

    #[test]
    fn vco_frequency_tracks_input() {
        let mut vco = Vco::new(100.0, 50.0, 1.0);
        // vin = 1 -> 150 Hz: count rising zero crossings over 1 s.
        let fs = 100e3;
        let dt = 1.0 / fs;
        let mut out = [0.0];
        let mut prev = 0.0;
        let mut crossings = 0;
        for k in 0..(fs as usize) {
            vco.tick(k as f64 * dt, dt, &[1.0], &mut out);
            if prev <= 0.0 && out[0] > 0.0 {
                crossings += 1;
            }
            prev = out[0];
        }
        assert!((crossings as f64 - 150.0).abs() <= 1.0, "{crossings}");
    }
}
