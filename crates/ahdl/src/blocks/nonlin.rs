//! Static nonlinearities: limiters and polynomial distortion (the
//! behavioral knob for tuner distortion studies).

use crate::block::Block;

/// Hard clipper `y = clamp(x, -limit, +limit)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HardLimiter {
    /// Clip level (positive).
    pub limit: f64,
}

impl HardLimiter {
    /// Creates a symmetric hard limiter.
    ///
    /// # Panics
    ///
    /// Panics unless `limit > 0`.
    pub fn new(limit: f64) -> Self {
        assert!(limit > 0.0, "limit must be positive");
        HardLimiter { limit }
    }
}

impl Block for HardLimiter {
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn tick(&mut self, _t: f64, _dt: f64, inputs: &[f64], outputs: &mut [f64]) {
        outputs[0] = inputs[0].clamp(-self.limit, self.limit);
    }
    fn reset(&mut self) {}
    fn kind(&self) -> &str {
        "limiter"
    }
}

/// Soft limiter `y = limit * tanh(x / limit)` — differentiable compression
/// typical of bipolar differential pairs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SoftLimiter {
    /// Asymptotic output level.
    pub limit: f64,
}

impl SoftLimiter {
    /// Creates a tanh soft limiter.
    ///
    /// # Panics
    ///
    /// Panics unless `limit > 0`.
    pub fn new(limit: f64) -> Self {
        assert!(limit > 0.0, "limit must be positive");
        SoftLimiter { limit }
    }
}

impl Block for SoftLimiter {
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn tick(&mut self, _t: f64, _dt: f64, inputs: &[f64], outputs: &mut [f64]) {
        outputs[0] = self.limit * (inputs[0] / self.limit).tanh();
    }
    fn reset(&mut self) {}
    fn kind(&self) -> &str {
        "soft-limiter"
    }
}

/// Memoryless polynomial `y = a1 x + a2 x^2 + a3 x^3`; the standard
/// behavioral distortion model (IP2/IP3 studies).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Polynomial {
    /// Linear gain.
    pub a1: f64,
    /// Second-order coefficient.
    pub a2: f64,
    /// Third-order coefficient.
    pub a3: f64,
}

impl Polynomial {
    /// Creates a cubic polynomial nonlinearity.
    pub fn new(a1: f64, a2: f64, a3: f64) -> Self {
        Polynomial { a1, a2, a3 }
    }

    /// Input-referred third-order intercept amplitude for this
    /// polynomial: `A_ip3 = sqrt(4/3 * |a1/a3|)`. Infinite when `a3 = 0`.
    pub fn iip3_amplitude(&self) -> f64 {
        if self.a3 == 0.0 {
            f64::INFINITY
        } else {
            (4.0 / 3.0 * (self.a1 / self.a3).abs()).sqrt()
        }
    }
}

impl Block for Polynomial {
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn tick(&mut self, _t: f64, _dt: f64, inputs: &[f64], outputs: &mut [f64]) {
        let x = inputs[0];
        outputs[0] = self.a1 * x + self.a2 * x * x + self.a3 * x * x * x;
    }
    fn reset(&mut self) {}
    fn kind(&self) -> &str {
        "polynomial"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahfic_num::goertzel::tone_amplitude;
    use std::f64::consts::PI;

    #[test]
    fn hard_limiter_clips() {
        let mut l = HardLimiter::new(1.0);
        let mut out = [0.0];
        for (x, want) in [(0.3, 0.3), (4.0, 1.0), (-9.0, -1.0)] {
            l.tick(0.0, 1.0, &[x], &mut out);
            assert_eq!(out[0], want);
        }
    }

    #[test]
    fn soft_limiter_linear_for_small_signals() {
        let mut l = SoftLimiter::new(1.0);
        let mut out = [0.0];
        l.tick(0.0, 1.0, &[0.01], &mut out);
        assert!((out[0] - 0.01).abs() < 1e-6);
        l.tick(0.0, 1.0, &[100.0], &mut out);
        assert!((out[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn polynomial_generates_harmonics() {
        // y = x + 0.1 x^3 on a unit tone: HD3 = a3/4/a1 = 2.5 %.
        let mut p = Polynomial::new(1.0, 0.0, 0.1);
        let fs = 1000.0;
        let f0 = 10.0;
        let n = 1000;
        let mut y = Vec::with_capacity(n);
        let mut out = [0.0];
        for k in 0..n {
            let t = k as f64 / fs;
            p.tick(t, 1.0 / fs, &[(2.0 * PI * f0 * t).sin()], &mut out);
            y.push(out[0]);
        }
        let h1 = tone_amplitude(&y, fs, f0).abs();
        let h3 = tone_amplitude(&y, fs, 3.0 * f0).abs();
        assert!((h3 / h1 - 0.025 / 1.075).abs() < 1e-4, "hd3 = {}", h3 / h1);
    }

    #[test]
    fn iip3_formula() {
        let p = Polynomial::new(1.0, 0.0, -0.01);
        assert!((p.iip3_amplitude() - (400.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!(Polynomial::new(1.0, 0.0, 0.0)
            .iip3_amplitude()
            .is_infinite());
    }
}
