//! Phase-shift blocks: the 90° shifter at the heart of the image
//! rejection mixer (paper Fig. 4), plus an adjustable-error variant used
//! to sweep Fig. 5.

use crate::block::Block;
use std::f64::consts::PI;

/// First-order digital all-pass `H(z) = (z^-1 - a)/(1 - a z^-1)` tuned so
/// the phase shift at `f0` is exactly **-90°**, with unity magnitude at
/// all frequencies — the behavioral model of the RC-CR phase shifters
/// used in IF paths.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseShifter90 {
    a: f64,
    z: f64,
    /// Design frequency (Hz).
    pub f0: f64,
}

impl PhaseShifter90 {
    /// Creates a -90°@`f0` all-pass for sample rate `fs`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < f0 < fs/2`.
    pub fn new(f0: f64, fs: f64) -> Self {
        assert!(f0 > 0.0 && f0 < fs / 2.0, "f0 must be below Nyquist");
        let t = (PI * f0 / fs).tan();
        PhaseShifter90 {
            a: (1.0 - t) / (1.0 + t),
            z: 0.0,
            f0,
        }
    }

    /// Phase response (radians) at frequency `f`.
    pub fn phase_at(&self, f: f64, fs: f64) -> f64 {
        use ahfic_num::Complex;
        let z1 = Complex::from_polar(1.0, -2.0 * PI * f / fs);
        let h = (z1 - self.a) / (Complex::ONE - z1 * self.a);
        h.arg()
    }
}

impl Block for PhaseShifter90 {
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn tick(&mut self, _t: f64, _dt: f64, inputs: &[f64], outputs: &mut [f64]) {
        // DF-II all-pass: y[n] = -a*x[n] + x[n-1] + a*y[n-1]; store the
        // combined state z = x[n-1] + a*y[n-1].
        let x = inputs[0];
        let y = -self.a * x + self.z;
        self.z = x + self.a * y;
        outputs[0] = y;
    }
    fn reset(&mut self) {
        self.z = 0.0;
    }
    fn kind(&self) -> &str {
        "phase90"
    }
}

/// A 90° shifter with deliberate impairments: phase error (degrees away
/// from -90° at `f0`) and fractional gain error. Implemented as the ideal
/// all-pass followed by a scaled phase-rotation network
/// `y = g * (cos(e) * shifted + sin(e) * direct)`, which rotates the
/// narrowband phasor at `f0` by `e` and scales it by `g = 1 + gain_err`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ImpairedShifter90 {
    inner: PhaseShifter90,
    cos_e: f64,
    sin_e: f64,
    gain: f64,
    /// Phase error in degrees.
    pub phase_err_deg: f64,
    /// Fractional gain error.
    pub gain_err: f64,
}

impl ImpairedShifter90 {
    /// Creates an impaired shifter at `f0` for sample rate `fs`.
    ///
    /// # Panics
    ///
    /// As [`PhaseShifter90::new`].
    pub fn new(f0: f64, fs: f64, phase_err_deg: f64, gain_err: f64) -> Self {
        let e = phase_err_deg.to_radians();
        ImpairedShifter90 {
            inner: PhaseShifter90::new(f0, fs),
            cos_e: e.cos(),
            sin_e: e.sin(),
            gain: 1.0 + gain_err,
            phase_err_deg,
            gain_err,
        }
    }
}

impl Block for ImpairedShifter90 {
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn tick(&mut self, t: f64, dt: f64, inputs: &[f64], outputs: &mut [f64]) {
        let mut shifted = [0.0];
        self.inner.tick(t, dt, inputs, &mut shifted);
        // For a narrowband tone at f0: `inputs[0]` is the 0° phasor and
        // `shifted[0]` the -90° phasor; the combination below realizes
        // -90° + e.
        outputs[0] = self.gain * (self.cos_e * shifted[0] + self.sin_e * inputs[0]);
    }
    fn reset(&mut self) {
        self.inner.reset();
    }
    fn kind(&self) -> &str {
        "phase90-impaired"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahfic_num::goertzel::tone_amplitude;

    /// Runs a block on a tone and returns (amplitude, phase shift in
    /// degrees relative to the input tone).
    fn tone_response(block: &mut dyn Block, f0: f64, fs: f64) -> (f64, f64) {
        let n = 40000;
        let dt = 1.0 / fs;
        let mut input = Vec::with_capacity(n);
        let mut output = Vec::with_capacity(n);
        let mut out = [0.0];
        for k in 0..n {
            let t = k as f64 * dt;
            let x = (2.0 * PI * f0 * t).sin();
            block.tick(t, dt, &[x], &mut out);
            // Skip transient.
            if k >= n / 2 {
                input.push(x);
                output.push(out[0]);
            }
        }
        let ai = tone_amplitude(&input, fs, f0);
        let ao = tone_amplitude(&output, fs, f0);
        let dphi = (ao.arg() - ai.arg()).to_degrees();
        let dphi = if dphi < -180.0 {
            dphi + 360.0
        } else if dphi > 180.0 {
            dphi - 360.0
        } else {
            dphi
        };
        (ao.abs() / ai.abs(), dphi)
    }

    #[test]
    fn ideal_shifter_is_minus_90_at_f0() {
        let fs = 1e9;
        let mut ps = PhaseShifter90::new(45e6, fs);
        let (gain, phase) = tone_response(&mut ps, 45e6, fs);
        assert!((gain - 1.0).abs() < 1e-6, "gain = {gain}");
        assert!((phase + 90.0).abs() < 0.01, "phase = {phase}");
    }

    #[test]
    fn allpass_is_unity_gain_everywhere() {
        let fs = 1e9;
        for f in [5e6, 45e6, 200e6] {
            let mut ps = PhaseShifter90::new(45e6, fs);
            let (gain, _) = tone_response(&mut ps, f, fs);
            assert!((gain - 1.0).abs() < 1e-6, "f = {f}: gain = {gain}");
        }
    }

    #[test]
    fn phase_at_matches_time_domain() {
        let fs = 1e9;
        let ps = PhaseShifter90::new(45e6, fs);
        assert!((ps.phase_at(45e6, fs).to_degrees() + 90.0).abs() < 1e-9);
    }

    #[test]
    fn impaired_shifter_applies_requested_errors() {
        let fs = 1e9;
        for (pe, ge) in [(0.0, 0.0), (3.0, 0.0), (-5.0, 0.02), (10.0, 0.09)] {
            let mut ps = ImpairedShifter90::new(45e6, fs, pe, ge);
            let (gain, phase) = tone_response(&mut ps, 45e6, fs);
            assert!(
                (gain - (1.0 + ge)).abs() < 1e-4,
                "gain err {ge}: got {gain}"
            );
            assert!(
                (phase - (-90.0 + pe)).abs() < 0.05,
                "phase err {pe}: got {phase}"
            );
        }
    }
}
