//! Arithmetic building blocks: gains, sums, multipliers (mixer cores).

use crate::block::Block;

/// `y = k * x` — an ideal amplifier/attenuator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Gain {
    /// Multiplier.
    pub k: f64,
}

impl Gain {
    /// Creates a gain block.
    pub fn new(k: f64) -> Self {
        Gain { k }
    }

    /// Creates a gain from a dB (amplitude) value.
    pub fn from_db(db: f64) -> Self {
        Gain {
            k: 10f64.powf(db / 20.0),
        }
    }
}

impl Block for Gain {
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn tick(&mut self, _t: f64, _dt: f64, inputs: &[f64], outputs: &mut [f64]) {
        outputs[0] = self.k * inputs[0];
    }
    fn reset(&mut self) {}
    fn kind(&self) -> &str {
        "gain"
    }
}

/// `y = sum(w_i * x_i)` — weighted adder with fixed fan-in.
#[derive(Clone, Debug, PartialEq)]
pub struct Adder {
    weights: Vec<f64>,
}

impl Adder {
    /// A plain `n`-input adder (all weights 1).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "adder needs at least one input");
        Adder {
            weights: vec![1.0; n],
        }
    }

    /// An adder with explicit weights (e.g. `[1.0, -1.0]` = subtractor).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty.
    pub fn weighted(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "adder needs at least one input");
        Adder { weights }
    }
}

impl Block for Adder {
    fn num_inputs(&self) -> usize {
        self.weights.len()
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn tick(&mut self, _t: f64, _dt: f64, inputs: &[f64], outputs: &mut [f64]) {
        outputs[0] = self
            .weights
            .iter()
            .zip(inputs.iter())
            .map(|(w, x)| w * x)
            .sum();
    }
    fn reset(&mut self) {}
    fn kind(&self) -> &str {
        "adder"
    }
}

/// `y = k * a * b` — an ideal multiplying mixer core. `k` is the
/// conversion gain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mixer {
    /// Conversion gain.
    pub k: f64,
}

impl Mixer {
    /// Creates a mixer with conversion gain `k`.
    pub fn new(k: f64) -> Self {
        Mixer { k }
    }
}

impl Block for Mixer {
    fn num_inputs(&self) -> usize {
        2
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn tick(&mut self, _t: f64, _dt: f64, inputs: &[f64], outputs: &mut [f64]) {
        outputs[0] = self.k * inputs[0] * inputs[1];
    }
    fn reset(&mut self) {}
    fn kind(&self) -> &str {
        "mixer"
    }
}

/// Constant output (DC level / bias source).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Constant {
    /// Output level.
    pub level: f64,
}

impl Constant {
    /// Creates a constant source.
    pub fn new(level: f64) -> Self {
        Constant { level }
    }
}

impl Block for Constant {
    fn num_inputs(&self) -> usize {
        0
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn tick(&mut self, _t: f64, _dt: f64, _inputs: &[f64], outputs: &mut [f64]) {
        outputs[0] = self.level;
    }
    fn reset(&mut self) {}
    fn kind(&self) -> &str {
        "constant"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_scales() {
        let mut g = Gain::new(3.0);
        let mut out = [0.0];
        g.tick(0.0, 1.0, &[2.0], &mut out);
        assert_eq!(out[0], 6.0);
    }

    #[test]
    fn gain_from_db() {
        assert!((Gain::from_db(20.0).k - 10.0).abs() < 1e-12);
        assert!((Gain::from_db(-6.0206).k - 0.5).abs() < 1e-4);
    }

    #[test]
    fn adder_sums_with_weights() {
        let mut a = Adder::weighted(vec![1.0, -2.0, 0.5]);
        let mut out = [0.0];
        a.tick(0.0, 1.0, &[1.0, 1.0, 4.0], &mut out);
        assert_eq!(out[0], 1.0);
        assert_eq!(a.num_inputs(), 3);
    }

    #[test]
    fn mixer_multiplies() {
        let mut m = Mixer::new(0.5);
        let mut out = [0.0];
        m.tick(0.0, 1.0, &[4.0, 3.0], &mut out);
        assert_eq!(out[0], 6.0);
    }

    #[test]
    fn constant_has_no_inputs() {
        let mut c = Constant::new(1.5);
        let mut out = [0.0];
        c.tick(0.0, 1.0, &[], &mut out);
        assert_eq!(out[0], 1.5);
        assert_eq!(c.num_inputs(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn zero_input_adder_panics() {
        let _ = Adder::new(0);
    }
}
