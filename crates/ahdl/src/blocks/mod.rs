//! Built-in behavioral block library: arithmetic, oscillators, filters,
//! phase shifters, noise and static nonlinearities.

pub mod arith;
pub mod filter;
pub mod noise;
pub mod nonlin;
pub mod osc;
pub mod phase;

pub use arith::{Adder, Constant, Gain, Mixer};
pub use filter::{Biquad, FilterChain, FirstOrderLp};
pub use noise::GaussianNoise;
pub use nonlin::{HardLimiter, Polynomial, SoftLimiter};
pub use osc::{QuadratureLo, SineSource, Vco};
pub use phase::{ImpairedShifter90, PhaseShifter90};
