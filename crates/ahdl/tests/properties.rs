//! Property-based tests for the AHDL compiler and the block library.

use ahfic_ahdl::block::Block;
use ahfic_ahdl::blocks::filter::FilterChain;
use ahfic_ahdl::blocks::phase::PhaseShifter90;
use ahfic_ahdl::eval::CompiledModule;
use ahfic_ahdl::parse::parse;
use proptest::prelude::*;

proptest! {
    /// The parser must never panic, whatever bytes arrive (errors are
    /// fine; crashes are not).
    #[test]
    fn parser_never_panics(src in "\\PC{0,200}") {
        let _ = parse(&src);
    }

    /// ...including near-miss module text built from grammar fragments.
    #[test]
    fn parser_never_panics_on_fragments(
        head in "(module|mod|)",
        name in "[a-z]{1,6}",
        punct in "[(){};,<>=-]{0,12}",
        body in "(V\\(y\\) <- V\\(x\\);|real t = 1;|if \\(1\\) \\{\\}|){0,3}",
    ) {
        let src = format!("{head} {name}(x, y) {{ input x; output y; analog {{ {body} }} }} {punct}");
        let _ = parse(&src);
    }

    /// Butterworth low-pass filters are BIBO stable: bounded noise-ish
    /// input never produces unbounded output.
    #[test]
    fn butterworth_is_stable(
        order in 1usize..6,
        fc_frac in 0.001f64..0.4,
        drive in proptest::collection::vec(-1.0f64..1.0, 256),
    ) {
        let fs = 1e6;
        let mut f = FilterChain::butterworth_lowpass(order, fc_frac * fs, fs);
        let mut out = [0.0];
        let mut peak = 0.0f64;
        for (k, &x) in drive.iter().enumerate() {
            f.tick(k as f64 / fs, 1.0 / fs, &[x], &mut out);
            peak = peak.max(out[0].abs());
            prop_assert!(out[0].is_finite());
        }
        // DC gain is 1; a unit-bounded input cannot exceed a small
        // overshoot bound for any Butterworth order here.
        prop_assert!(peak < 4.0, "peak {peak}");
    }

    /// The all-pass phase shifter preserves signal energy (|H| = 1).
    #[test]
    fn allpass_preserves_energy(f0_frac in 0.01f64..0.3, tone_frac in 0.01f64..0.4) {
        let fs = 1e6;
        let mut ps = PhaseShifter90::new(f0_frac * fs, fs);
        let n = 4000;
        let mut in_energy = 0.0;
        let mut out_energy = 0.0;
        let mut out = [0.0];
        for k in 0..n {
            let t = k as f64 / fs;
            let x = (2.0 * std::f64::consts::PI * tone_frac * fs * t).sin();
            ps.tick(t, 1.0 / fs, &[x], &mut out);
            // Skip the settling prefix in the energy tally.
            if k > n / 4 {
                in_energy += x * x;
                out_energy += out[0] * out[0];
            }
        }
        let ratio = out_energy / in_energy;
        prop_assert!((ratio - 1.0).abs() < 0.05, "energy ratio {ratio}");
    }

    /// A compiled gain module is exactly linear for any gain and input.
    #[test]
    fn gain_module_is_linear(g in -100.0f64..100.0, x in -1e3f64..1e3) {
        let m = CompiledModule::compile(
            "module amp(a, y) { input a; output y;
             parameter real g = 1.0;
             analog { V(y) <- g * V(a); } }",
        ).unwrap();
        let mut b = m.instantiate(&[("g", g)]).unwrap();
        let mut out = [0.0];
        b.tick(0.0, 1e-9, &[x], &mut out);
        prop_assert!((out[0] - g * x).abs() <= 1e-9 * (1.0 + (g * x).abs()));
    }

    /// Module evaluation is deterministic: two fresh instances agree
    /// sample-for-sample on a stateful program.
    #[test]
    fn stateful_module_is_deterministic(xs in proptest::collection::vec(-10.0f64..10.0, 50)) {
        let m = CompiledModule::compile(
            "module acc(a, y) { input a; output y;
             analog { V(y) <- idt(V(a)) + ddt(V(a)); } }",
        ).unwrap();
        let mut b1 = m.instantiate(&[]).unwrap();
        let mut b2 = m.instantiate(&[]).unwrap();
        let (mut o1, mut o2) = ([0.0], [0.0]);
        for (k, &x) in xs.iter().enumerate() {
            let t = k as f64 * 1e-3;
            b1.tick(t, 1e-3, &[x], &mut o1);
            b2.tick(t, 1e-3, &[x], &mut o2);
            prop_assert_eq!(o1[0], o2[0]);
        }
    }
}
