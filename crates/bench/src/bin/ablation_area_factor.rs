//! Ablation for the paper's §4 motivation: how wrong is SPICE's
//! emitter-area-factor scaling compared with geometry-aware model
//! generation?
//!
//! Two comparisons:
//! 1. per-parameter errors (RB/RE/RC/CJE/CJC/CJS) for every Fig. 8 shape;
//! 2. the Table 1 ring-oscillator experiment rerun with area-factor
//!    models — showing the *ranking* it would mispredict.

use ahfic_bench::{fmt_freq, standard_generator};
use ahfic_geom::area_factor::{area_factor_model, parameter_errors};
use ahfic_geom::generate::ModelGenerator;
use ahfic_geom::shape::TransistorShape;
use ahfic_rf::ringosc::{measure_ring_frequency, RingOscParams};
use ahfic_spice::analysis::Options;

fn main() {
    let generator = standard_generator();
    let ref_shape = ModelGenerator::reference_shape();
    let reference = generator.generate(&ref_shape);

    println!("# Ablation: SPICE area-factor scaling vs geometry-aware generation");
    println!("# reference device: {ref_shape}");
    println!();
    println!("## Parameter errors of area-factor scaling (relative to full generation)");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "shape", "RB", "RE", "RC", "CJE", "CJC", "CJS"
    );
    for shape in TransistorShape::fig8_catalogue() {
        let full = generator.generate(&shape);
        let af = area_factor_model(&reference, &ref_shape, &shape);
        let errs = parameter_errors(&full, &af);
        print!("{:<12}", shape.to_string());
        for (_, _, _, rel) in &errs {
            print!(" {:>7.1}%", rel * 100.0);
        }
        println!();
    }

    println!();
    println!("## Table 1 rerun with area-factor models");
    let params = RingOscParams::default();
    let opts = Options::default();
    let follower = generator.generate(&"N1.2-12D".parse().expect("valid"));
    println!(
        "{:<12} {:>18} {:>18} {:>9}",
        "shape", "geometry-aware", "area-factor", "error"
    );
    let mut best_full = (String::new(), 0.0f64);
    let mut best_af = (String::new(), 0.0f64);
    for shape in TransistorShape::fig8_catalogue() {
        let full_model = generator.generate(&shape);
        let af_model = area_factor_model(&reference, &ref_shape, &shape);
        let f_full = measure_ring_frequency(&params, &full_model, &follower, &opts)
            .map(|m| m.frequency)
            .unwrap_or(f64::NAN);
        let f_af = measure_ring_frequency(&params, &af_model, &follower, &opts)
            .map(|m| m.frequency)
            .unwrap_or(f64::NAN);
        if f_full > best_full.1 {
            best_full = (shape.to_string(), f_full);
        }
        if f_af > best_af.1 {
            best_af = (shape.to_string(), f_af);
        }
        println!(
            "{:<12} {:>18} {:>18} {:>8.1}%",
            shape.to_string(),
            fmt_freq(f_full),
            fmt_freq(f_af),
            (f_af / f_full - 1.0) * 100.0
        );
    }
    println!();
    println!(
        "# geometry-aware winner: {} at {}",
        best_full.0,
        fmt_freq(best_full.1)
    );
    println!(
        "# area-factor winner:    {} at {}  {}",
        best_af.0,
        fmt_freq(best_af.1),
        if best_af.0 == best_full.0 {
            "(same ranking, but biased frequencies)"
        } else {
            "(WRONG shape would be chosen!)"
        }
    );
}
