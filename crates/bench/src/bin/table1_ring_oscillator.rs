//! Regenerates the paper's Table 1 (with Figs. 10–11): free-running
//! frequency of the five-stage ring oscillator for each Fig. 8 transistor
//! shape, using the full model-generation flow.

use ahfic_bench::{fmt_freq, standard_generator};
use ahfic_geom::shape::TransistorShape;
use ahfic_rf::ringosc::{table1_experiment, RingOscParams};
use ahfic_spice::analysis::Options;

fn main() {
    let generator = standard_generator();
    let params = RingOscParams::default();
    let opts = Options::default();
    let shapes = TransistorShape::fig8_catalogue();

    println!("# Table 1: free-running frequency of the 5-stage ring oscillator");
    println!(
        "# diff-pair shapes swept uniformly (Q1,Q2,Q5,Q6,...); tail current {} mA; followers N1.2-12D",
        params.tail_current * 1e3
    );
    println!();
    println!(
        "{:<12} {:>10} {:>20} {:>12} {:>8}",
        "Shape", "Ae [um^2]", "Free-running freq", "Swing [V]", "Cycles"
    );
    println!("{}", "-".repeat(66));

    let rows = table1_experiment(&params, &generator, &shapes, &opts).expect("ring simulations");
    let best = rows
        .iter()
        .max_by(|a, b| {
            a.measurement
                .frequency
                .partial_cmp(&b.measurement.frequency)
                .expect("finite")
        })
        .expect("rows");
    for row in &rows {
        let marker = if row.shape == best.shape {
            "  <== best"
        } else {
            ""
        };
        println!(
            "{:<12} {:>10.1} {:>20} {:>12.3} {:>8}{marker}",
            row.shape.to_string(),
            row.shape.emitter_area_um2(),
            fmt_freq(row.measurement.frequency),
            row.measurement.amplitude_pp,
            row.measurement.cycles
        );
    }
    println!();
    println!(
        "# Conclusion: best shape {} (paper's conclusion: N1.2-12D)",
        best.shape
    );
}
