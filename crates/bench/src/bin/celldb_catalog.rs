//! Demonstrates the §3 re-use system: seeds the library, runs the two
//! user workflows (register/search+copy) and renders the WWW-style
//! catalog. Writes `target/analog_cell_catalog.html`.

use ahfic_celldb::catalog::{render_html, render_markdown_index};
use ahfic_celldb::search::{search, SearchQuery};
use ahfic_celldb::seed::seed_library;

fn main() {
    let db = seed_library().expect("seed library");
    println!("# Analog cell-based design supporting system (paper section 3)");
    println!(
        "# {} cells registered across {} taxonomy paths",
        db.len(),
        db.taxonomy().len()
    );
    println!();
    println!("{}", render_markdown_index(&db));

    println!("## Search demonstrations");
    for query in [
        "image rejection",
        "gain controlled amp",
        "90 degree",
        "ring oscillator",
    ] {
        let hits = search(&db, &SearchQuery::keywords(query));
        println!(
            "query {query:?}: {}",
            hits.iter()
                .map(|h| format!("{} (score {:.0})", h.cell.name, h.score))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    println!();
    let reused = db.copy_out("IRMIX1", "IRMIX_NEWIC").expect("copy out");
    println!(
        "## Re-use: copied IRMIX1 -> {} carrying {} views",
        reused.name,
        reused.views.view_count()
    );

    let html = render_html(&db);
    let out = std::path::Path::new("target").join("analog_cell_catalog.html");
    if std::fs::create_dir_all("target").is_ok() && std::fs::write(&out, &html).is_ok() {
        println!(
            "## WWW catalog written to {} ({} bytes)",
            out.display(),
            html.len()
        );
    } else {
        println!("## WWW catalog rendered in memory ({} bytes)", html.len());
    }
}
