//! Regenerates the paper's Fig. 5: image-rejection ratio vs phase error,
//! gain balance 1–9 % as the curve parameter (AHDL simulation vs closed
//! form).

use ahfic_rf::image_rejection::{fig5_sweep, irr_analytic_db, max_phase_error_for_irr};
use ahfic_rf::mixer_tl::{measure_irr_transistor_db, HartleyMixerParams};
use ahfic_rf::plan::FrequencyPlan;
use ahfic_rf::tuner::TunerConfig;
use ahfic_spice::analysis::Options;

fn main() {
    let plan = FrequencyPlan::catv(500e6);
    let cfg = TunerConfig::for_plan(&plan);
    let phase_errors = [0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0, 7.0, 10.0];
    let gain_errors = [0.01, 0.03, 0.05, 0.07, 0.09];

    println!("# Fig. 5: AHDL simulation result of the image rejection tuner");
    println!("# IRR [dB] vs quadrature phase error; series = gain balance");
    print!("{:>11}", "phase [deg]");
    for g in gain_errors {
        print!("{:>10.0}%", g * 100.0);
    }
    println!("{:>12}", "(analytic 1%)");

    let pts = fig5_sweep(&plan, &cfg, &phase_errors, &gain_errors, Some(2e-6)).expect("fig5 sweep");
    for (pi, &p) in phase_errors.iter().enumerate() {
        print!("{p:>11.2}");
        for gi in 0..gain_errors.len() {
            print!("{:>11.2}", pts[gi * phase_errors.len() + pi].simulated_db);
        }
        println!("{:>12.2}", pts[pi].analytic_db);
    }

    println!();
    println!(
        "# max |sim - analytic| over the sweep: {:.3} dB",
        pts.iter()
            .map(|p| (p.simulated_db - p.analytic_db).abs())
            .fold(0.0f64, f64::max)
    );
    println!("# designer lookup: for 30 dB required IRR ->");
    for g in gain_errors {
        match max_phase_error_for_irr(30.0, g) {
            Some(e) => println!(
                "#   gain {:.0}%: phase error must stay below {e:.2} deg",
                g * 100.0
            ),
            None => println!("#   gain {:.0}%: 30 dB unreachable", g * 100.0),
        }
    }

    println!();
    println!("# transistor-level Hartley mixer (shooting PSS + PAC conversion gain)");
    println!(
        "# {:>11} {:>7} {:>16} {:>13} {:>10}",
        "phase [deg]", "gain", "transistor [dB]", "analytic [dB]", "delta"
    );
    for (e, g) in [(2.0, 0.0), (5.0, 0.0), (10.0, 0.0), (10.0, 0.05)] {
        let params = HartleyMixerParams::default()
            .phase_error_deg(e)
            .gain_error(g);
        let r = measure_irr_transistor_db(&params, &Options::new()).expect("mixer bench");
        let analytic = irr_analytic_db(e, g);
        println!(
            "# {e:>11.1} {:>6.0}% {:>16.2} {:>13.2} {:>+10.2}",
            g * 100.0,
            r.irr_db,
            analytic,
            r.irr_db - analytic
        );
    }
}
