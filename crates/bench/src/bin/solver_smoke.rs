//! Dense-vs-sparse solver smoke benchmark.
//!
//! Builds a capacitively-coupled BJT amplifier chain (the device and
//! stamp mix of the paper's benches, with a well-defined DC point) at
//! three sizes, then times operating point, a short transient, and an
//! AC sweep with the dense solver and the sparse solver, writing the
//! results to `BENCH_solver.json` at the repo root.
//!
//! Run with `cargo run --release -p ahfic-bench --bin solver_smoke`.

use std::fmt::Write as _;
use std::time::Instant;

use ahfic_bench::standard_generator;
use ahfic_num::interp::logspace;
use ahfic_spice::analysis::{ac_sweep, op, tran, Options, SolverChoice, TranParams};
use ahfic_spice::circuit::{Circuit, Prepared};
use ahfic_spice::model::BjtModel;
use ahfic_spice::wave::SourceWave;

/// A chain of `stages` common-emitter amplifiers with RC interstage
/// coupling, driven by a small sine with an AC magnitude of 1.
fn amplifier_chain(stages: usize, model: &BjtModel) -> Prepared {
    let mut c = Circuit::new();
    let vcc = c.node("vcc");
    c.vsource("VCC", vcc, Circuit::gnd(), 5.0);
    let vin = c.node("vin");
    c.vsource_wave(
        "VIN",
        vin,
        Circuit::gnd(),
        SourceWave::Sin {
            offset: 0.0,
            ampl: 1e-3,
            freq: 100e6,
            delay: 0.0,
            damping: 0.0,
            phase_deg: 0.0,
        },
    );
    c.set_ac("VIN", 1.0, 0.0).expect("VIN exists");
    let mi = c.add_bjt_model(model.clone());

    let mut prev = vin;
    for k in 0..stages {
        let b = c.node(&format!("b{k}"));
        let col = c.node(&format!("c{k}"));
        let e = c.node(&format!("e{k}"));
        c.resistor(&format!("RB1_{k}"), vcc, b, 47e3);
        c.resistor(&format!("RB2_{k}"), b, Circuit::gnd(), 10e3);
        c.capacitor(&format!("CIN{k}"), prev, b, 5e-12);
        c.resistor(&format!("RC{k}"), vcc, col, 1e3);
        c.resistor(&format!("RE{k}"), e, Circuit::gnd(), 470.0);
        c.capacitor(&format!("CE{k}"), e, Circuit::gnd(), 10e-12);
        c.bjt(&format!("Q{k}"), col, b, e, mi, 1.0);
        prev = col;
    }
    c.resistor("RL", prev, Circuit::gnd(), 10e3);
    Prepared::compile(c).expect("compile")
}

struct Timings {
    op_ms: f64,
    tran_ms: f64,
    ac_ms: f64,
}

impl Timings {
    fn total(&self) -> f64 {
        self.op_ms + self.tran_ms + self.ac_ms
    }
}

fn run_suite(prep: &Prepared, solver: SolverChoice, tran_params: &TranParams) -> Timings {
    let opts = Options {
        solver,
        ..Options::default()
    };
    let t0 = Instant::now();
    let dc = op(prep, &opts).expect("operating point");
    let op_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    tran(prep, &opts, tran_params).expect("transient");
    let tran_ms = t0.elapsed().as_secs_f64() * 1e3;

    let freqs = logspace(1e6, 1e10, 60);
    let t0 = Instant::now();
    ac_sweep(prep, &dc.x, &opts, &freqs).expect("ac sweep");
    let ac_ms = t0.elapsed().as_secs_f64() * 1e3;

    Timings {
        op_ms,
        tran_ms,
        ac_ms,
    }
}

fn main() {
    let generator = standard_generator();
    let model = generator.generate(&"N1.2-12D".parse().expect("valid shape"));

    let mut json_sizes = String::new();
    println!("# Solver smoke: dense vs sparse on the amplifier-chain netlist family");
    println!(
        "{:<8} {:>6} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "stages", "n", "dense op", "dense tran", "sparse tran", "sparse ac", "speedup"
    );

    let tran_params = TranParams::new(1.0e-9, 10e-12);
    for (i, &stages) in [4usize, 12, 36].iter().enumerate() {
        let prep = amplifier_chain(stages, &model);
        let n = prep.num_unknowns;

        let dense = run_suite(&prep, SolverChoice::Dense, &tran_params);
        let sparse = run_suite(&prep, SolverChoice::Sparse, &tran_params);
        let speedup = dense.total() / sparse.total();

        println!(
            "{:<8} {:>6} {:>10.1}ms {:>10.1}ms {:>10.1}ms {:>10.1}ms {:>8.2}x",
            stages, n, dense.op_ms, dense.tran_ms, sparse.tran_ms, sparse.ac_ms, speedup
        );

        if i > 0 {
            json_sizes.push_str(",\n");
        }
        write!(
            json_sizes,
            concat!(
                "    {{\"stages\": {}, \"n\": {},\n",
                "     \"dense\":  {{\"op_ms\": {:.3}, \"tran_ms\": {:.3}, \"ac_ms\": {:.3}}},\n",
                "     \"sparse\": {{\"op_ms\": {:.3}, \"tran_ms\": {:.3}, \"ac_ms\": {:.3}}},\n",
                "     \"speedup\": {:.3}}}"
            ),
            stages,
            n,
            dense.op_ms,
            dense.tran_ms,
            dense.ac_ms,
            sparse.op_ms,
            sparse.tran_ms,
            sparse.ac_ms,
            speedup
        )
        .expect("write to string");
    }

    let json = format!(
        "{{\n  \"bench\": \"solver_smoke\",\n  \"unit\": \"ms\",\n  \"sizes\": [\n{json_sizes}\n  ]\n}}\n"
    );
    std::fs::write("BENCH_solver.json", &json).expect("write BENCH_solver.json");
    println!("\nwrote BENCH_solver.json");
}
