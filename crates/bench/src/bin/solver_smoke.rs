//! Dense-vs-sparse solver smoke benchmark.
//!
//! Builds a capacitively-coupled BJT amplifier chain (the device and
//! stamp mix of the paper's benches, with a well-defined DC point) at
//! three sizes, then runs operating point, a short transient, and an
//! AC sweep with the dense solver and the sparse solver, writing the
//! results to `BENCH_solver.json` at the repo root.
//!
//! Timings and work counters come from the instrumented analysis path
//! itself: each suite runs with an [`InMemorySink`] installed and the
//! per-analysis wall times, Newton iterations and factorization counts
//! are read back out of the trace via
//! [`summarize_top_level`].
//! The final section measures the overhead of tracing into a
//! [`NullSink`] against a fully disabled trace handle at the largest
//! size.
//!
//! Run with `cargo run --release -p ahfic-bench --bin solver_smoke`.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use ahfic_bench::standard_generator;
use ahfic_num::interp::logspace;
use ahfic_num::GmresOptions;
use ahfic_serve::{JobQueue, JobRequest, JobSpec, QueueConfig};
use ahfic_spice::analysis::{LadderConfig, Options, PssParams, Session, SolverChoice, TranParams};
use ahfic_spice::circuit::{Circuit, ElementKind, Prepared};
use ahfic_spice::lint::LintPolicy;
use ahfic_spice::model::{BjtModel, DiodeModel};
use ahfic_spice::trace::{summarize_top_level, InMemorySink, NullSink};
use ahfic_spice::wave::SourceWave;

/// A chain of `stages` common-emitter amplifiers with RC interstage
/// coupling, driven by a small sine with an AC magnitude of 1.
fn amplifier_chain(stages: usize, model: &BjtModel) -> Prepared {
    let mut c = Circuit::new();
    let vcc = c.node("vcc");
    c.vsource("VCC", vcc, Circuit::gnd(), 5.0);
    let vin = c.node("vin");
    c.vsource_wave(
        "VIN",
        vin,
        Circuit::gnd(),
        SourceWave::Sin {
            offset: 0.0,
            ampl: 1e-3,
            freq: 100e6,
            delay: 0.0,
            damping: 0.0,
            phase_deg: 0.0,
        },
    );
    c.set_ac("VIN", 1.0, 0.0).expect("VIN exists");
    let mi = c.add_bjt_model(model.clone());

    let mut prev = vin;
    for k in 0..stages {
        let b = c.node(&format!("b{k}"));
        let col = c.node(&format!("c{k}"));
        let e = c.node(&format!("e{k}"));
        c.resistor(&format!("RB1_{k}"), vcc, b, 47e3);
        c.resistor(&format!("RB2_{k}"), b, Circuit::gnd(), 10e3);
        c.capacitor(&format!("CIN{k}"), prev, b, 5e-12);
        c.resistor(&format!("RC{k}"), vcc, col, 1e3);
        c.resistor(&format!("RE{k}"), e, Circuit::gnd(), 470.0);
        c.capacitor(&format!("CE{k}"), e, Circuit::gnd(), 10e-12);
        c.bjt(&format!("Q{k}"), col, b, e, mi, 1.0);
        prev = col;
    }
    c.resistor("RL", prev, Circuit::gnd(), 10e3);
    Prepared::compile(&c).expect("compile")
}

struct Timings {
    op_ms: f64,
    tran_ms: f64,
    ac_ms: f64,
    newton_iterations: f64,
    factorizations: f64,
}

impl Timings {
    fn total(&self) -> f64 {
        self.op_ms + self.tran_ms + self.ac_ms
    }
}

/// Runs op + transient + AC once, returning all three analysis results
/// (used both for the instrumented suites and the overhead probe).
fn run_once(sess: &Session, tran_params: &TranParams) {
    let dc = sess.op().expect("operating point");
    sess.tran(tran_params).expect("transient");
    let freqs = logspace(1e6, 1e10, 60);
    sess.ac(dc.x(), &freqs).expect("ac sweep");
}

/// Runs the suite with an in-memory trace sink and reads timings and
/// work counters back out of the recorded spans.
fn run_suite(prep: &Prepared, solver: SolverChoice, tran_params: &TranParams) -> Timings {
    let sink = Arc::new(InMemorySink::new());
    let opts = Options::new().solver(solver).trace(&sink);
    let sess = Session::new(prep.clone()).with_options(opts);
    run_once(&sess, tran_params);

    let spans = summarize_top_level(&sink.take());
    let wall_ms = |name: &str| {
        spans
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.wall_seconds * 1e3)
            .unwrap_or(f64::NAN)
    };
    let counter = |span: &str, name: &str| {
        spans
            .iter()
            .find(|s| s.name == span)
            .and_then(|s| s.counter(name))
            .unwrap_or(0.0)
    };
    Timings {
        op_ms: wall_ms("op"),
        tran_ms: wall_ms("tran"),
        ac_ms: wall_ms("ac"),
        newton_iterations: counter("op", "op.newton_iterations")
            + counter("tran", "tran.newton_iterations"),
        factorizations: counter("op", "op.factorizations")
            + counter("tran", "tran.factorizations")
            + counter("ac", "ac.factorizations"),
    }
}

/// Best-of-`reps` wall time for two option sets, with the runs
/// interleaved A/B/A/B so slow drift (frequency scaling, co-tenant
/// load) hits both sides equally; the minimum is the noise-resistant
/// estimator for code whose true cost is fixed.
fn min_paired_suite_seconds(
    prep: &Prepared,
    a: &Options,
    b: &Options,
    tran_params: &TranParams,
    reps: usize,
) -> (f64, f64) {
    let time_one = |opts: &Options| {
        let sess = Session::new(prep.clone()).with_options(opts.clone());
        let t0 = Instant::now();
        run_once(&sess, tran_params);
        t0.elapsed().as_secs_f64()
    };
    // Warm caches and branch predictors outside the timed window.
    time_one(a);
    time_one(b);
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        best_a = best_a.min(time_one(a));
        best_b = best_b.min(time_one(b));
    }
    (best_a, best_b)
}

/// Newton-heavy Monte-Carlo load: `trials` cold operating points, each
/// with every resistor redrawn uniformly within +/-20 % of nominal by a
/// fixed-seed LCG (the same value sequence on every call, so paired
/// timings compare identical work). Restores nominal values on exit.
fn mc_op_seconds(prep: &mut Prepared, opts: &Options, trials: usize) -> f64 {
    let nominal: Vec<(String, f64)> = prep
        .circuit
        .elements()
        .iter()
        .filter_map(|e| match e.kind {
            ElementKind::Resistor { r, .. } => Some((e.name.clone(), r)),
            _ => None,
        })
        .collect();
    let mut state = 0x243f_6a88_85a3_08d3u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut sess = Session::new(prep.clone()).with_options(opts.clone());
    let t0 = Instant::now();
    for _ in 0..trials {
        for (name, r) in &nominal {
            let spread = 0.8 + 0.4 * next();
            sess.prepared_mut()
                .circuit
                .set_resistance(name, r * spread)
                .expect("resistor exists");
        }
        sess.op().expect("mc operating point");
    }
    t0.elapsed().as_secs_f64()
}

/// Interleaved best-of-`reps` timing of the Monte-Carlo load for two
/// option sets (same discipline as [`min_paired_suite_seconds`]).
fn min_paired_mc_seconds(
    prep: &mut Prepared,
    a: &Options,
    b: &Options,
    trials: usize,
    reps: usize,
) -> (f64, f64) {
    mc_op_seconds(prep, a, trials);
    mc_op_seconds(prep, b, trials);
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        best_a = best_a.min(mc_op_seconds(prep, a, trials));
        best_b = best_b.min(mc_op_seconds(prep, b, trials));
    }
    (best_a, best_b)
}

struct BatchedYieldStats {
    samples: usize,
    seq_s: f64,
    bat_s: f64,
}

impl BatchedYieldStats {
    fn seq_sps(&self) -> f64 {
        self.samples as f64 / self.seq_s
    }
    fn bat_sps(&self) -> f64 {
        self.samples as f64 / self.bat_s
    }
    fn speedup(&self) -> f64 {
        self.seq_s / self.bat_s
    }
}

/// Monte-Carlo yield throughput, sequential vs the batched variant
/// engine (SoA lanes, SIMD stamp replay, pooled chunks), interleaved
/// best-of-`reps`. The sequential side runs today's default path; the
/// batched side only flips `Options::batch` on.
fn batched_yield_probe(samples: usize, reps: usize) -> BatchedYieldStats {
    use ahfic::yield_mc::YieldStudy;
    use ahfic_spice::analysis::BatchMode;
    let study = YieldStudy {
        samples,
        ..YieldStudy::paper_example(0.05)
    };
    let seq = Options::default();
    let bat = Options::new().batch(BatchMode::Auto);
    let time = |opts: &Options| {
        let t0 = Instant::now();
        let r = study
            .run_with_options(opts.clone())
            .expect("yield study converges");
        std::hint::black_box(&r);
        t0.elapsed().as_secs_f64()
    };
    time(&seq);
    time(&bat);
    let (mut ss, mut bs) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        ss = ss.min(time(&seq));
        bs = bs.min(time(&bat));
    }
    BatchedYieldStats {
        samples,
        seq_s: ss,
        bat_s: bs,
    }
}

/// Current-driven avalanche diode: the junction walks from 0 V deep
/// into reverse breakdown, which neither gmin loading nor source
/// scaling can shorten (same corpus as `tests/robustness.rs`).
fn avalanche_current_drive() -> Prepared {
    let mut c = Circuit::new();
    let a = c.node("a");
    let dm = c.add_diode_model(DiodeModel {
        bv: 6.0,
        ..DiodeModel::default()
    });
    c.isource("I1", Circuit::gnd(), a, 1.0);
    c.diode("D1", Circuit::gnd(), a, dm, 1.0);
    c.resistor("RSH", a, Circuit::gnd(), 1e9);
    Prepared::compile(&c).expect("compile")
}

/// Three series zeners forced into breakdown by a current source.
fn zener_stack_current_drive() -> Prepared {
    let mut c = Circuit::new();
    let dm = c.add_diode_model(DiodeModel {
        bv: 6.0,
        ..DiodeModel::default()
    });
    let top = c.node("top");
    c.isource("I1", Circuit::gnd(), top, 0.5);
    c.resistor("RSH", top, Circuit::gnd(), 1e9);
    let mut prev = top;
    for k in 0..3 {
        let nxt = if k == 2 {
            Circuit::gnd()
        } else {
            c.node(&format!("m{k}"))
        };
        c.diode(&format!("DZ{k}"), nxt, prev, dm, 1.0);
        prev = nxt;
    }
    Prepared::compile(&c).expect("compile")
}

/// Transistor-level Hartley image-rejection front end (the Fig. 5
/// tuner deck of `tests/solver_agreement.rs`), returned uncompiled so
/// the pre-flight verification can be timed inside the compile.
fn image_rejection_frontend_circuit() -> Circuit {
    let mut c = Circuit::new();
    let vcc = c.node("vcc");
    let vin = c.node("vin");
    c.vsource("VCC", vcc, Circuit::gnd(), 5.0);
    c.vsource_wave(
        "VRF",
        vin,
        Circuit::gnd(),
        SourceWave::Sin {
            offset: 0.0,
            ampl: 10e-3,
            freq: 100e6,
            delay: 0.0,
            damping: 0.0,
            phase_deg: 0.0,
        },
    );
    c.set_ac("VRF", 1.0, 0.0).expect("VRF exists");
    let mut m = BjtModel::named("rfnpn");
    m.bf = 90.0;
    m.rb = 120.0;
    m.re = 1.5;
    m.rc = 25.0;
    m.cje = 60e-15;
    m.cjc = 40e-15;
    m.tf = 12e-12;
    let mi = c.add_bjt_model(m);
    let path = |c: &mut Circuit, tag: &str| {
        let b = c.node(&format!("b{tag}"));
        let col = c.node(&format!("c{tag}"));
        let e = c.node(&format!("e{tag}"));
        c.resistor(&format!("RB1{tag}"), vcc, b, 47e3);
        c.resistor(&format!("RB2{tag}"), b, Circuit::gnd(), 10e3);
        c.capacitor(&format!("CIN{tag}"), vin, b, 10e-12);
        c.resistor(&format!("RC{tag}"), vcc, col, 1e3);
        c.resistor(&format!("RE{tag}"), e, Circuit::gnd(), 220.0);
        c.capacitor(&format!("CE{tag}"), e, Circuit::gnd(), 20e-12);
        c.bjt(&format!("Q{tag}"), col, b, e, mi, 1.0);
        col
    };
    let ci = path(&mut c, "i");
    let cq = path(&mut c, "q");
    let oi = c.node("oi");
    let oq = c.node("oq");
    let sum = c.node("sum");
    c.capacitor("CPI", ci, oi, 2e-12);
    c.resistor("RPI", oi, Circuit::gnd(), 800.0);
    c.resistor("RPQ", cq, oq, 800.0);
    c.capacitor("CPQ", oq, Circuit::gnd(), 2e-12);
    c.resistor("RSI", oi, sum, 2e3);
    c.resistor("RSQ", oq, sum, 2e3);
    c.resistor("RL", sum, Circuit::gnd(), 1e3);
    c
}

struct LintPreflightStats {
    n_unknowns: usize,
    compile_deny_us: f64,
    compile_off_us: f64,
    first_analysis_deny_us: f64,
    first_analysis_off_us: f64,
    overhead_pct: f64,
}

/// Measures the pre-flight verification cost on the image-rejection
/// tuner deck. Raw compile time with lint on ([`LintPolicy::Deny`],
/// the default) versus off isolates the cost of the pass itself; the
/// compile-to-first-analysis turnaround — compile, operating point,
/// the AC sweep, and the short transient this deck is characterized
/// with in `tests/solver_agreement.rs` — is what a designer actually
/// waits for after editing the netlist. The headline `overhead_pct` is
/// the compile-time delta over that turnaround: the lint runs once per
/// compile, never per solve, so that ratio is the fraction of every
/// edit-simulate cycle spent on verification. All timings are
/// interleaved best-of-`reps` (the minimum is the noise-resistant
/// estimator), with enough runs per sample to make a microsecond-scale
/// delta resolvable.
fn lint_preflight_probe(reps: usize, iters: usize) -> LintPreflightStats {
    let ckt = image_rejection_frontend_circuit();
    let opts = Options::new().solver(SolverChoice::Sparse);
    let freqs = logspace(10e6, 1e9, 60);
    let tran_params = TranParams::new(50e-9, 0.2e-9);
    let n_unknowns = Prepared::compile_with(&ckt, LintPolicy::Off)
        .expect("compile")
        .num_unknowns;
    // Compile is microseconds; 20x more runs per sample than the
    // analysis loop keeps its timing floor comparable.
    let compile_iters = iters * 20;
    let time_compile = |policy: LintPolicy| {
        let t0 = Instant::now();
        for _ in 0..compile_iters {
            let prep = Prepared::compile_with(&ckt, policy).expect("compile");
            std::hint::black_box(&prep);
        }
        t0.elapsed().as_secs_f64() / compile_iters as f64
    };
    let time_first_analysis = |policy: LintPolicy| {
        let t0 = Instant::now();
        for _ in 0..iters {
            let sess = Session::compile_with(&ckt, opts.clone().lint(policy)).expect("compile");
            let dc = sess.op().expect("operating point");
            let wave = sess.ac(dc.x(), &freqs).expect("ac sweep");
            std::hint::black_box(&wave);
            let tr = sess.tran(&tran_params).expect("transient");
            std::hint::black_box(&tr);
        }
        t0.elapsed().as_secs_f64() / iters as f64
    };
    // Warm outside the timed window, then interleave A/B so drift hits
    // both sides equally.
    time_compile(LintPolicy::Deny);
    time_compile(LintPolicy::Off);
    let (mut cd, mut co) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        cd = cd.min(time_compile(LintPolicy::Deny));
        co = co.min(time_compile(LintPolicy::Off));
    }
    time_first_analysis(LintPolicy::Deny);
    time_first_analysis(LintPolicy::Off);
    let (mut ad, mut ao) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        ad = ad.min(time_first_analysis(LintPolicy::Deny));
        ao = ao.min(time_first_analysis(LintPolicy::Off));
    }
    LintPreflightStats {
        n_unknowns,
        compile_deny_us: cd * 1e6,
        compile_off_us: co * 1e6,
        first_analysis_deny_us: ad * 1e6,
        first_analysis_off_us: ao * 1e6,
        overhead_pct: (cd - co) / ao * 100.0,
    }
}

struct ServingStats {
    jobs: usize,
    recompile_s: f64,
    shared_s: f64,
    hits: u64,
    compiles: u64,
}

impl ServingStats {
    fn amortization(&self) -> f64 {
        self.recompile_s / self.shared_s
    }

    fn jobs_per_sec(&self) -> f64 {
        self.jobs as f64 / self.shared_s
    }
}

/// Serving-layer compile amortization: a `jobs`-deep queue re-running
/// operating points on the image-rejection tuner deck — the deck a
/// parameter tuner hammers — through the shared [`JobQueue`] cache,
/// against the naive front end that recompiles the netlist and solves a
/// cold operating point per request. Both sides run single-threaded so
/// the ratio isolates what the cache and the per-deck warm-start hint
/// buy, with no parallel speedup mixed in. Interleaved best-of-`reps`;
/// a fresh queue per rep so every rep pays the one real compile.
fn serving_probe(jobs: usize, reps: usize) -> ServingStats {
    let ckt = image_rejection_frontend_circuit();
    let opts = Options::new().solver(SolverChoice::Sparse);
    let time_recompile = || {
        let t0 = Instant::now();
        for _ in 0..jobs {
            let sess = Session::compile_with(&ckt, opts.clone()).expect("compile");
            sess.op().expect("cold operating point");
        }
        t0.elapsed().as_secs_f64()
    };
    let time_shared = || {
        let requests: Vec<JobRequest> = (0..jobs)
            .map(|_| JobRequest::new(ckt.clone(), JobSpec::Op).options(opts.clone()))
            .collect();
        let queue = JobQueue::new(QueueConfig::new().threads(1));
        let t0 = Instant::now();
        let reports = queue.run(requests);
        let dt = t0.elapsed().as_secs_f64();
        assert!(reports.iter().all(ahfic_serve::JobReport::is_ok));
        let stats = queue.cache_stats();
        (dt, stats.hits(), stats.compiles())
    };
    time_recompile();
    time_shared();
    let (mut recompile_s, mut shared_s) = (f64::INFINITY, f64::INFINITY);
    let (mut hits, mut compiles) = (0, 0);
    for _ in 0..reps {
        recompile_s = recompile_s.min(time_recompile());
        let (dt, h, c) = time_shared();
        shared_s = shared_s.min(dt);
        (hits, compiles) = (h, c);
    }
    ServingStats {
        jobs,
        recompile_s,
        shared_s,
        hits,
        compiles,
    }
}

struct ServingRobustnessStats {
    jobs: usize,
    supervised_s: f64,
    unsupervised_s: f64,
}

impl ServingRobustnessStats {
    fn overhead_pct(&self) -> f64 {
        (self.supervised_s / self.unsupervised_s - 1.0) * 100.0
    }
}

/// Supervision overhead: the same `jobs`-deep tuner-deck queue run with
/// `catch_unwind` worker supervision (the default) and with it turned
/// off. The unwind guard costs a landing-pad setup per job — against
/// millisecond-scale Newton solves it must disappear in the noise, and
/// the caller asserts it stays within a small single-digit percentage.
/// Interleaved best-of-`reps`, fresh queue per rep so both sides pay
/// the one real compile identically.
fn serving_robustness_probe(jobs: usize, reps: usize) -> ServingRobustnessStats {
    let ckt = image_rejection_frontend_circuit();
    let opts = Options::new().solver(SolverChoice::Sparse);
    // One 64-job queue finishes in a fraction of a millisecond — far
    // inside timer jitter. Each timing sample therefore drains the
    // queue `rounds` times so the window is milliseconds wide and a 2%
    // delta is actually resolvable.
    let rounds = 40;
    let time_queue = |supervise: bool| {
        let queue = JobQueue::new(QueueConfig::new().threads(1).supervise(supervise));
        let t0 = Instant::now();
        for _ in 0..rounds {
            let requests: Vec<JobRequest> = (0..jobs)
                .map(|_| JobRequest::new(ckt.clone(), JobSpec::Op).options(opts.clone()))
                .collect();
            let reports = queue.run(requests);
            assert!(reports.iter().all(ahfic_serve::JobReport::is_ok));
        }
        t0.elapsed().as_secs_f64() / rounds as f64
    };
    time_queue(true);
    time_queue(false);
    let (mut sup, mut unsup) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        sup = sup.min(time_queue(true));
        unsup = unsup.min(time_queue(false));
    }
    ServingRobustnessStats {
        jobs,
        supervised_s: sup,
        unsupervised_s: unsup,
    }
}

struct LadderProbe {
    name: &'static str,
    legacy_converged: bool,
    legacy_iterations: usize,
    full_converged: bool,
    full_iterations: usize,
    rungs_attempted: f64,
    damped_iterations: f64,
    gmin_stages: f64,
    source_steps: f64,
    ptran_steps: f64,
}

/// Runs one hard-start circuit against the legacy (gmin/source only)
/// and full continuation ladders at a tight Newton budget, reading the
/// per-rung work back out of the trace counters.
fn ladder_probe(name: &'static str, prep: &Prepared, budget: usize) -> LadderProbe {
    let sess = Session::new(prep.clone());
    let legacy = sess
        .clone()
        .with_options(
            Options::new()
                .max_newton(budget)
                .ladder(LadderConfig::legacy()),
        )
        .op();
    let sink = Arc::new(InMemorySink::new());
    let full = sess
        .with_options(Options::new().max_newton(budget).trace(&sink))
        .op();
    let spans = summarize_top_level(&sink.take());
    let counter = |n: &str| {
        spans
            .iter()
            .find(|s| s.name == "op")
            .and_then(|s| s.counter(n))
            .unwrap_or(0.0)
    };
    LadderProbe {
        name,
        legacy_converged: legacy.is_ok(),
        legacy_iterations: legacy.map(|r| r.iterations).unwrap_or(0),
        full_converged: full.is_ok(),
        full_iterations: full.as_ref().map(|r| r.iterations).unwrap_or(0),
        rungs_attempted: counter("op.rungs_attempted"),
        damped_iterations: counter("op.damped_iterations"),
        gmin_stages: counter("op.gmin_stages"),
        source_steps: counter("op.source_steps"),
        ptran_steps: counter("op.ptran_steps"),
    }
}

struct GmresProbe {
    n: usize,
    sparse_s: f64,
    gmres_s: f64,
    iters: f64,
    restarts: f64,
    precond_refactors: f64,
    max_dv: f64,
}

/// GMRES+ILU(0) against sparse LU on the mid-size amplifier chain:
/// operating point plus transient (the real-valued Newton path the
/// iterative tier targets — the 10 GHz complex AC matrices are direct-
/// solver territory, where ILU(0) loses its grip), paired best-of
/// timing, Krylov work counters read from the trace, and the operating
/// points compared unknown by unknown — the iterative tier must track
/// the direct factorization to solver tolerance or the bench fails.
fn gmres_probe(prep: &Prepared, tran_params: &TranParams, reps: usize) -> GmresProbe {
    let gmres_choice = SolverChoice::Gmres(GmresOptions::default());
    let sparse_opts = Options::new().solver(SolverChoice::Sparse);
    let gmres_opts = Options::new().solver(gmres_choice);
    let time_one = |opts: &Options| {
        let sess = Session::new(prep.clone()).with_options(opts.clone());
        let t0 = Instant::now();
        sess.op().expect("operating point");
        sess.tran(tran_params).expect("transient");
        t0.elapsed().as_secs_f64()
    };
    time_one(&sparse_opts);
    time_one(&gmres_opts);
    let (mut sparse_s, mut gmres_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        sparse_s = sparse_s.min(time_one(&sparse_opts));
        gmres_s = gmres_s.min(time_one(&gmres_opts));
    }

    // Krylov counters from one instrumented op + transient pass.
    let sink = Arc::new(InMemorySink::new());
    let sess =
        Session::new(prep.clone()).with_options(Options::new().solver(gmres_choice).trace(&sink));
    sess.op().expect("operating point");
    sess.tran(tran_params).expect("transient");
    let spans = summarize_top_level(&sink.take());
    let sum = |name: &str| -> f64 { spans.iter().filter_map(|s| s.counter(name)).sum() };

    let x_sparse = Session::new(prep.clone())
        .with_options(sparse_opts)
        .op()
        .expect("sparse operating point")
        .x()
        .to_vec();
    let x_gmres = sess.op().expect("gmres operating point");
    let max_dv = x_sparse
        .iter()
        .zip(x_gmres.x())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    GmresProbe {
        n: prep.num_unknowns,
        sparse_s,
        gmres_s,
        iters: sum("solver.gmres.iters"),
        restarts: sum("solver.gmres.restarts"),
        precond_refactors: sum("solver.gmres.precond_refactors"),
        max_dv,
    }
}

struct PssProbe {
    n: usize,
    wall_s: f64,
    shooting_iterations: u64,
    gmres_iterations: u64,
    newton_iterations: u64,
    residual: f64,
}

/// Shooting-Newton periodic steady state on a diode rectifier whose
/// ring-down time constant spans many drive periods — the deck where
/// shooting beats brute-force transient. Converged status is the CI
/// gate; wall time and iteration counts land in the JSON.
fn pss_probe(reps: usize) -> PssProbe {
    let mut c = Circuit::new();
    let vin = c.node("vin");
    let out = c.node("out");
    c.vsource_wave(
        "VIN",
        vin,
        Circuit::gnd(),
        SourceWave::Sin {
            offset: 0.0,
            ampl: 2.0,
            freq: 1e6,
            delay: 0.0,
            damping: 0.0,
            phase_deg: 0.0,
        },
    );
    let dm = c.add_diode_model(DiodeModel::default());
    c.diode("D1", vin, out, dm, 1.0);
    c.capacitor("CL", out, Circuit::gnd(), 2e-9);
    c.resistor("RL", out, Circuit::gnd(), 1e3);
    let sess = Session::compile(&c).expect("rectifier compiles");
    // No warmup: start shooting straight from the operating point so the
    // bench times the Newton-Krylov machinery, not plain time-marching.
    let params = PssParams::new(1e-6, 256).warmup_periods(0);

    let run = || sess.pss(&params).expect("rectifier pss");
    run();
    let mut wall_s = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = run();
        wall_s = wall_s.min(t0.elapsed().as_secs_f64());
        result = Some(r);
    }
    let r = result.expect("at least one rep ran");
    assert!(
        r.is_converged(),
        "rectifier PSS failed to converge: {:?}",
        r.status()
    );
    PssProbe {
        n: sess.prepared().num_unknowns,
        wall_s,
        shooting_iterations: r.shooting_iterations,
        gmres_iterations: r.gmres_iterations,
        newton_iterations: r.newton_iterations,
        residual: r.residual,
    }
}

fn main() {
    let generator = standard_generator();
    let model = generator.generate(&"N1.2-12D".parse().expect("valid shape"));

    // Pre-flight verification overhead first, on a quiet heap: the
    // static lint pass runs inside every `compile`, so its budget is
    // measured on the deck a designer actually iterates on — the
    // image-rejection tuner front end — as raw compile time and as
    // compile-to-first-analysis (OP + AC sweep) turnaround, lint on
    // (default Deny policy) versus off.
    let lint = lint_preflight_probe(15, 50);
    println!(
        "pre-flight lint overhead (image-rejection tuner, n = {n}, best of 15): \
         compile {cd:.1}us deny vs {co:.1}us off; \
         first analysis {ad:.1}us deny vs {ao:.1}us off; \
         lint cost / turnaround = {pct:+.2}%\n",
        n = lint.n_unknowns,
        cd = lint.compile_deny_us,
        co = lint.compile_off_us,
        ad = lint.first_analysis_deny_us,
        ao = lint.first_analysis_off_us,
        pct = lint.overhead_pct,
    );

    let mut json_sizes = String::new();
    println!("# Solver smoke: dense vs sparse on the amplifier-chain netlist family");
    println!(
        "{:<8} {:>6} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "stages", "n", "dense op", "dense tran", "sparse tran", "sparse ac", "speedup"
    );

    let tran_params = TranParams::new(1.0e-9, 10e-12);
    let mut largest: Option<Prepared> = None;
    for (i, &stages) in [4usize, 12, 36].iter().enumerate() {
        let prep = amplifier_chain(stages, &model);
        let n = prep.num_unknowns;

        let dense = run_suite(&prep, SolverChoice::Dense, &tran_params);
        let sparse = run_suite(&prep, SolverChoice::Sparse, &tran_params);
        let speedup = dense.total() / sparse.total();

        println!(
            "{:<8} {:>6} {:>10.1}ms {:>10.1}ms {:>10.1}ms {:>10.1}ms {:>8.2}x",
            stages, n, dense.op_ms, dense.tran_ms, sparse.tran_ms, sparse.ac_ms, speedup
        );

        if i > 0 {
            json_sizes.push_str(",\n");
        }
        write!(
            json_sizes,
            concat!(
                "    {{\"stages\": {}, \"n\": {},\n",
                "     \"dense\":  {{\"op_ms\": {:.3}, \"tran_ms\": {:.3}, \"ac_ms\": {:.3}, ",
                "\"newton\": {:.0}, \"factorizations\": {:.0}}},\n",
                "     \"sparse\": {{\"op_ms\": {:.3}, \"tran_ms\": {:.3}, \"ac_ms\": {:.3}, ",
                "\"newton\": {:.0}, \"factorizations\": {:.0}}},\n",
                "     \"speedup\": {:.3}}}"
            ),
            stages,
            n,
            dense.op_ms,
            dense.tran_ms,
            dense.ac_ms,
            dense.newton_iterations,
            dense.factorizations,
            sparse.op_ms,
            sparse.tran_ms,
            sparse.ac_ms,
            sparse.newton_iterations,
            sparse.factorizations,
            speedup
        )
        .expect("write to string");
        largest = Some(prep);
    }

    // Trace overhead at the largest size: Null sink (every record built
    // and discarded) versus a disabled handle (one branch per primitive).
    let prep = largest.expect("at least one size ran");
    let off = Options::new().solver(SolverChoice::Sparse);
    let nulled = Options::new()
        .solver(SolverChoice::Sparse)
        .trace(&Arc::new(NullSink));
    let reps = 15;
    let (base_s, null_s) = min_paired_suite_seconds(&prep, &off, &nulled, &tran_params, reps);
    let overhead_pct = (null_s / base_s - 1.0) * 100.0;
    println!(
        "\nnull-sink trace overhead (36 stages, sparse, best of {reps} interleaved): \
         {base_ms:.1}ms off vs {null_ms:.1}ms null ({overhead_pct:+.2}%)",
        base_ms = base_s * 1e3,
        null_ms = null_s * 1e3,
    );

    // Linear-stamp replay: the full suite must not regress with replay
    // on, and the Newton-heavy Monte-Carlo load (repeated cold operating
    // points) is where replaying the cached linear baseline pays off.
    let replay_on = Options::new().solver(SolverChoice::Sparse);
    let replay_off = Options::new()
        .solver(SolverChoice::Sparse)
        .linear_replay(false);
    let (suite_on_s, suite_off_s) =
        min_paired_suite_seconds(&prep, &replay_on, &replay_off, &tran_params, reps);
    let mut prep = prep;
    let mc_trials = 20;
    let (mc_on_s, mc_off_s) =
        min_paired_mc_seconds(&mut prep, &replay_on, &replay_off, mc_trials, 7);
    println!(
        "linear replay (36 stages, sparse): suite {on_ms:.1}ms on vs {off_ms:.1}ms off \
         ({suite_speedup:.2}x); {mc_trials}-trial MC op {mc_on_ms:.1}ms on vs \
         {mc_off_ms:.1}ms off ({mc_speedup:.2}x)",
        on_ms = suite_on_s * 1e3,
        off_ms = suite_off_s * 1e3,
        suite_speedup = suite_off_s / suite_on_s,
        mc_on_ms = mc_on_s * 1e3,
        mc_off_ms = mc_off_s * 1e3,
        mc_speedup = mc_off_s / mc_on_s,
    );

    // Batched variant engine: Monte-Carlo yield throughput with the
    // sequential per-sample path versus the SoA-lane batched engine,
    // at a small and a large study size. The batched side must never
    // be slower — CI runs this binary, so the assert below is the
    // regression gate.
    let batched_runs = [
        batched_yield_probe(1_000, 5),
        batched_yield_probe(10_000, 3),
    ];
    println!(
        "\n# Batched variant engine (yield_mc, simd = {:?})",
        ahfic_num::simd::simd_level()
    );
    println!(
        "{:<9} {:>12} {:>12} {:>14} {:>14} {:>9}",
        "samples", "seq", "batched", "seq sps", "batched sps", "speedup"
    );
    let mut json_batched = String::new();
    for (i, b) in batched_runs.iter().enumerate() {
        println!(
            "{:<9} {:>10.1}ms {:>10.1}ms {:>14.0} {:>14.0} {:>8.2}x",
            b.samples,
            b.seq_s * 1e3,
            b.bat_s * 1e3,
            b.seq_sps(),
            b.bat_sps(),
            b.speedup(),
        );
        if i > 0 {
            json_batched.push_str(",\n");
        }
        write!(
            json_batched,
            concat!(
                "    {{\"samples\": {}, \"seq_ms\": {:.3}, \"batched_ms\": {:.3}, ",
                "\"seq_sps\": {:.0}, \"batched_sps\": {:.0}, \"speedup\": {:.3}}}"
            ),
            b.samples,
            b.seq_s * 1e3,
            b.bat_s * 1e3,
            b.seq_sps(),
            b.bat_sps(),
            b.speedup(),
        )
        .expect("write to string");
    }
    assert!(
        batched_runs[1].speedup() >= 1.0,
        "batched yield path regressed below the sequential path: {:.2}x at {} samples",
        batched_runs[1].speedup(),
        batched_runs[1].samples,
    );

    // Convergence ladder on the hard-start corpus: circuits the
    // gmin/source-only ladder cannot solve under a tight Newton budget,
    // with the winning rung identified by its step counters — plus the
    // evidence that an easy circuit pays nothing for the extra rungs.
    let ladder_budget = 25;
    let probes = [
        ladder_probe(
            "avalanche_current_drive",
            &avalanche_current_drive(),
            ladder_budget,
        ),
        ladder_probe(
            "zener_stack_current_drive",
            &zener_stack_current_drive(),
            ladder_budget,
        ),
    ];
    println!("\n# Convergence ladder (hard starts, max_newton = {ladder_budget})");
    println!(
        "{:<26} {:>7} {:>7} {:>6} {:>7} {:>7} {:>7} {:>7}",
        "circuit", "legacy", "full", "rungs", "damped", "gmin", "source", "ptran"
    );
    let mut json_ladder = String::new();
    for (i, p) in probes.iter().enumerate() {
        println!(
            "{:<26} {:>7} {:>7} {:>6.0} {:>7.0} {:>7.0} {:>7.0} {:>7.0}",
            p.name,
            if p.legacy_converged { "ok" } else { "FAIL" },
            if p.full_converged {
                format!("{} it", p.full_iterations)
            } else {
                "FAIL".into()
            },
            p.rungs_attempted,
            p.damped_iterations,
            p.gmin_stages,
            p.source_steps,
            p.ptran_steps,
        );
        if i > 0 {
            json_ladder.push_str(",\n");
        }
        write!(
            json_ladder,
            concat!(
                "    {{\"name\": \"{}\", \"legacy_converged\": {}, \"legacy_iterations\": {}, ",
                "\"full_converged\": {}, \"full_iterations\": {},\n",
                "     \"rungs_attempted\": {:.0}, \"damped_iterations\": {:.0}, ",
                "\"gmin_stages\": {:.0}, \"source_steps\": {:.0}, \"ptran_steps\": {:.0}}}"
            ),
            p.name,
            p.legacy_converged,
            p.legacy_iterations,
            p.full_converged,
            p.full_iterations,
            p.rungs_attempted,
            p.damped_iterations,
            p.gmin_stages,
            p.source_steps,
            p.ptran_steps,
        )
        .expect("write to string");
    }

    // Easy-circuit overhead: repeated cold operating points on the
    // 4-stage chain, legacy ladder vs full ladder, best-of interleaved.
    let easy = amplifier_chain(4, &model);
    let legacy_opts = Options::new()
        .solver(SolverChoice::Sparse)
        .ladder(LadderConfig::legacy());
    let full_opts = Options::new().solver(SolverChoice::Sparse);
    let easy_trials = 200;
    let time_ops = |opts: &Options| {
        let sess = Session::new(easy.clone()).with_options(opts.clone());
        let t0 = Instant::now();
        for _ in 0..easy_trials {
            sess.op().expect("easy operating point");
        }
        t0.elapsed().as_secs_f64()
    };
    time_ops(&legacy_opts);
    time_ops(&full_opts);
    let (mut easy_legacy_s, mut easy_full_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..7 {
        easy_legacy_s = easy_legacy_s.min(time_ops(&legacy_opts));
        easy_full_s = easy_full_s.min(time_ops(&full_opts));
    }
    let easy_overhead_pct = (easy_full_s / easy_legacy_s - 1.0) * 100.0;
    println!(
        "easy-circuit ladder overhead ({easy_trials} cold ops, best of 7): \
         {legacy_ms:.1}ms legacy vs {full_ms:.1}ms full ({easy_overhead_pct:+.2}%)",
        legacy_ms = easy_legacy_s * 1e3,
        full_ms = easy_full_s * 1e3,
    );

    // Serving layer: compile amortization across a job queue hammering
    // one deck. The assert is the CI regression gate for the shared
    // cache + warm-start path.
    let serving = serving_probe(64, 7);
    println!(
        "\n# Serving layer (image-rejection tuner deck, {jobs} op jobs, 1 thread, best of 7)\n\
         per-job recompile {rec_ms:.2}ms vs shared cache {sh_ms:.2}ms \
         ({amort:.1}x amortization, {jps:.0} jobs/s, {hits} hits / {compiles} compile)",
        jobs = serving.jobs,
        rec_ms = serving.recompile_s * 1e3,
        sh_ms = serving.shared_s * 1e3,
        amort = serving.amortization(),
        jps = serving.jobs_per_sec(),
        hits = serving.hits,
        compiles = serving.compiles,
    );
    assert!(
        serving.amortization() >= 5.0,
        "shared-cache serving fell below the 5x amortization floor: {:.2}x",
        serving.amortization(),
    );

    // Fault-tolerant serving: the `catch_unwind` supervision wrapper
    // must be free at queue scale. The assert is the CI regression gate
    // for the supervised worker path.
    let robustness = serving_robustness_probe(64, 15);
    println!(
        "supervision overhead ({jobs} op jobs, 1 thread, best of 15): \
         supervised {sup_ms:.2}ms vs unsupervised {unsup_ms:.2}ms ({pct:+.2}%)",
        jobs = robustness.jobs,
        sup_ms = robustness.supervised_s * 1e3,
        unsup_ms = robustness.unsupervised_s * 1e3,
        pct = robustness.overhead_pct(),
    );
    assert!(
        robustness.overhead_pct() <= 2.0,
        "worker supervision exceeded the 2% overhead budget: {:+.2}%",
        robustness.overhead_pct(),
    );

    // Iterative tier: GMRES+ILU(0) vs sparse LU on the mid-size chain.
    // The asserts are the CI regression gate — the Krylov path must
    // actually run (nonzero iteration counters) and must agree with the
    // direct factorization at the operating point.
    let mid = amplifier_chain(12, &model);
    let g = gmres_probe(&mid, &tran_params, 7);
    println!(
        "\n# Iterative tier (12 stages, n = {n}, op + tran, best of 7)\n\
         gmres+ilu0 {gms:.1}ms vs sparse lu {sms:.1}ms; \
         {it:.0} krylov iters, {rs:.0} restarts, {pf:.0} precond refactors; \
         max |dV| vs sparse op = {dv:.2e}",
        n = g.n,
        gms = g.gmres_s * 1e3,
        sms = g.sparse_s * 1e3,
        it = g.iters,
        rs = g.restarts,
        pf = g.precond_refactors,
        dv = g.max_dv,
    );
    assert!(
        g.iters > 0.0,
        "GMRES suite recorded no Krylov iterations — the iterative tier did not run"
    );
    assert!(
        g.max_dv < 1e-6,
        "GMRES operating point diverged from sparse LU by {:.2e} V",
        g.max_dv,
    );

    // Periodic steady state: the shooting-Newton rectifier bench. A
    // non-converged orbit fails the binary and therefore CI.
    let p = pss_probe(7);
    println!(
        "# Shooting PSS (diode rectifier, n = {n}, best of 7)\n\
         orbit in {ms:.1}ms: {sh} shooting iters, {gm} krylov matvecs, \
         {nw} newton iters, weighted residual {res:.3e}",
        n = p.n,
        ms = p.wall_s * 1e3,
        sh = p.shooting_iterations,
        gm = p.gmres_iterations,
        nw = p.newton_iterations,
        res = p.residual,
    );

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"solver_smoke\",\n  \"unit\": \"ms\",\n  \"sizes\": [\n",
            "{sizes}\n  ],\n",
            "  \"trace_overhead\": {{\"baseline_ms\": {base:.3}, \"null_sink_ms\": {null:.3}, ",
            "\"overhead_pct\": {pct:.3}}},\n",
            "  \"stamp_replay\": {{\"suite_on_ms\": {son:.3}, \"suite_off_ms\": {soff:.3}, ",
            "\"suite_speedup\": {sx:.3},\n",
            "                   \"mc_trials\": {mct}, \"mc_on_ms\": {mon:.3}, ",
            "\"mc_off_ms\": {moff:.3}, \"mc_speedup\": {mx:.3}}},\n",
            "  \"batched\": {{\"simd\": \"{simd:?}\", \"auto_lanes\": {lanes}, \"runs\": [\n",
            "{batched}\n  ]}},\n",
            "  \"convergence_ladder\": {{\"max_newton\": {lbud}, \"hard_starts\": [\n{ladder}\n  ],\n",
            "    \"easy_overhead\": {{\"trials\": {etr}, \"legacy_ms\": {eleg:.3}, ",
            "\"full_ms\": {efull:.3}, \"overhead_pct\": {eo:.3}}}}},\n",
            "  \"lint_preflight\": {{\"deck\": \"image_rejection_frontend\", ",
            "\"n_unknowns\": {ln},\n",
            "    \"compile_deny_us\": {lcd:.3}, \"compile_off_us\": {lco:.3},\n",
            "    \"first_analysis_deny_us\": {lad:.3}, \"first_analysis_off_us\": {lao:.3}, ",
            "\"overhead_pct\": {lpct:.3}}},\n",
            "  \"serving\": {{\"deck\": \"image_rejection_frontend\", \"jobs\": {sj}, ",
            "\"threads\": 1,\n",
            "    \"recompile_ms\": {srec:.3}, \"shared_ms\": {ssh:.3}, ",
            "\"amortization\": {samort:.3}, \"jobs_per_sec\": {sjps:.0},\n",
            "    \"cache_hits\": {shits}, \"cache_compiles\": {scomp}}},\n",
            "  \"serving_robustness\": {{\"deck\": \"image_rejection_frontend\", ",
            "\"jobs\": {rj}, \"threads\": 1,\n",
            "    \"supervised_ms\": {rsup:.3}, \"unsupervised_ms\": {runsup:.3}, ",
            "\"supervision_overhead_pct\": {rpct:.3}}},\n",
            "  \"gmres\": {{\"deck\": \"amplifier_chain_12\", \"n\": {gn},\n",
            "    \"sparse_ms\": {gsms:.3}, \"gmres_ms\": {ggms:.3}, \"iters\": {git:.0}, ",
            "\"restarts\": {grs:.0}, \"precond_refactors\": {gpf:.0}, \"max_dv\": {gdv:.3e}}},\n",
            "  \"pss\": {{\"deck\": \"diode_rectifier\", \"n\": {pn}, \"wall_ms\": {pms:.3},\n",
            "    \"shooting_iterations\": {psh}, \"gmres_iterations\": {pgm}, ",
            "\"newton_iterations\": {pnw}, \"residual\": {pres:.3e}}}\n}}\n"
        ),
        sizes = json_sizes,
        base = base_s * 1e3,
        null = null_s * 1e3,
        pct = overhead_pct,
        son = suite_on_s * 1e3,
        soff = suite_off_s * 1e3,
        sx = suite_off_s / suite_on_s,
        mct = mc_trials,
        mon = mc_on_s * 1e3,
        moff = mc_off_s * 1e3,
        mx = mc_off_s / mc_on_s,
        simd = ahfic_num::simd::simd_level(),
        lanes = ahfic_spice::analysis::BatchMode::Auto
            .lanes()
            .unwrap_or(1),
        batched = json_batched,
        lbud = ladder_budget,
        ladder = json_ladder,
        etr = easy_trials,
        eleg = easy_legacy_s * 1e3,
        efull = easy_full_s * 1e3,
        eo = easy_overhead_pct,
        ln = lint.n_unknowns,
        lcd = lint.compile_deny_us,
        lco = lint.compile_off_us,
        lad = lint.first_analysis_deny_us,
        lao = lint.first_analysis_off_us,
        lpct = lint.overhead_pct,
        sj = serving.jobs,
        srec = serving.recompile_s * 1e3,
        ssh = serving.shared_s * 1e3,
        samort = serving.amortization(),
        sjps = serving.jobs_per_sec(),
        shits = serving.hits,
        scomp = serving.compiles,
        rj = robustness.jobs,
        rsup = robustness.supervised_s * 1e3,
        runsup = robustness.unsupervised_s * 1e3,
        rpct = robustness.overhead_pct(),
        gn = g.n,
        gsms = g.sparse_s * 1e3,
        ggms = g.gmres_s * 1e3,
        git = g.iters,
        grs = g.restarts,
        gpf = g.precond_refactors,
        gdv = g.max_dv,
        pn = p.n,
        pms = p.wall_s * 1e3,
        psh = p.shooting_iterations,
        pgm = p.gmres_iterations,
        pnw = p.newton_iterations,
        pres = p.residual,
    );
    std::fs::write("BENCH_solver.json", &json).expect("write BENCH_solver.json");
    println!("\nwrote BENCH_solver.json");
}
