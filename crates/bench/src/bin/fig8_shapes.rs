//! Regenerates the paper's Fig. 8: the transistor shape catalogue with
//! the layout geometry and generated model parameters of each shape.

use ahfic_bench::standard_generator;
use ahfic_geom::layout::DeviceGeometry;
use ahfic_geom::rules::MaskRules;
use ahfic_geom::shape::TransistorShape;

fn main() {
    let generator = standard_generator();
    let rules = MaskRules::default();

    println!("# Fig. 8: transistor shapes and their geometry-aware model cards");
    println!(
        "{:<11} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "shape",
        "Ae[um2]",
        "Pe[um]",
        "Ab[um2]",
        "RB[ohm]",
        "RE[ohm]",
        "RC[ohm]",
        "CJE[fF]",
        "CJC[fF]"
    );
    for (tag, shape) in ["(a)", "(b)", "(c)", "(d)", "(e)", "(f)"]
        .iter()
        .zip(TransistorShape::fig8_catalogue())
    {
        let g = DeviceGeometry::derive(&shape, &rules);
        let m = generator.generate(&shape);
        println!(
            "{tag} {:<7} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.2} {:>9.1} {:>9.1} {:>9.1}",
            shape.to_string(),
            g.emitter_area,
            g.emitter_perimeter,
            g.base_area,
            m.rb,
            m.re,
            m.rc,
            m.cje * 1e15,
            m.cjc * 1e15
        );
    }
    println!();
    println!("# Full model card for the reference family member:");
    println!(
        "{}",
        generator
            .generate(&"N1.2-12D".parse().expect("valid"))
            .to_card()
    );
}
