//! Regenerates the paper's Fig. 3: the frequency spectrum of the
//! double-super tuner, showing the wanted channel and the image folding
//! onto the same second IF.

use ahfic_bench::fmt_freq;
use ahfic_rf::plan::FrequencyPlan;
use ahfic_rf::spectrum_scan::scan_conventional_tuner;
use ahfic_rf::tuner::TunerConfig;

fn main() {
    let plan = FrequencyPlan::catv(500e6);
    let cfg = TunerConfig::for_plan(&plan);

    println!("# Fig. 3: frequency spectrum of the double-super tuner");
    println!(
        "# plan: RF1 = {} (wanted), RF2 = {} (image), Fup = {}, Fdown = {}",
        fmt_freq(plan.rf_wanted),
        fmt_freq(plan.rf_image()),
        fmt_freq(plan.f_up()),
        fmt_freq(plan.f_down())
    );
    println!(
        "# 1st IF = {}, image at 1st IF = {}, 2nd IF = {}",
        fmt_freq(plan.f1_if),
        fmt_freq(plan.if1_image()),
        fmt_freq(plan.f2_if)
    );
    println!();

    let scan = scan_conventional_tuner(&plan, &cfg, 0.5).expect("spectrum scan");
    for node in &scan.nodes {
        println!("node {}:", node.node);
        for &(f, a) in &node.peaks {
            println!("    {:>14}   amplitude {a:.4}", fmt_freq(f));
        }
    }
    println!();
    println!("# Note: at the 2nd IF both channels appear at 45 MHz — the image");
    println!("# cannot be removed by filtering (rf2 - Fdown = Fdown - rf1),");
    println!("# motivating the image rejection mixer of Fig. 4.");
}
