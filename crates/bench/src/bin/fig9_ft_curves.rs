//! Regenerates the paper's Fig. 9: transition frequency vs collector
//! current for the N1.2-6D / 12D / 24D / 48D emitter-length family.

use ahfic_bench::standard_generator;
use ahfic_geom::shape::TransistorShape;
use ahfic_num::interp::logspace;
use ahfic_spice::analysis::Options;
use ahfic_spice::measure::{ft_sweep, peak_ft};

fn main() {
    let generator = standard_generator();
    let opts = Options::default();
    let shapes = TransistorShape::fig9_series();
    let currents = logspace(0.05e-3, 30e-3, 19);

    println!("# Fig. 9: transition frequency vs collector current (VCE = 3 V)");
    print!("{:>10}", "Ic [mA]");
    for s in &shapes {
        print!("{:>12}", s.to_string());
    }
    println!();

    let columns: Vec<_> = shapes
        .iter()
        .map(|s| ft_sweep(&generator.generate(s), 3.0, &currents, &opts))
        .collect();
    for (k, &ic) in currents.iter().enumerate() {
        print!("{:>10.3}", ic * 1e3);
        for col in &columns {
            match col.get(k).filter(|p| (p.ic - ic).abs() < 1e-12) {
                Some(p) => print!("{:>9.2} GHz", p.ft / 1e9),
                None => print!("{:>12}", "-"),
            }
        }
        println!();
    }

    println!();
    println!("# Peak fT per shape (the paper's point: peak current scales with area):");
    for (s, col) in shapes.iter().zip(&columns) {
        if let Ok((ic_pk, ft_pk)) = peak_ft(col) {
            println!(
                "#   {:<9} Ae {:>5.1} um^2 -> {:.2} GHz at {:.2} mA",
                s.to_string(),
                s.emitter_area_um2(),
                ft_pk / 1e9,
                ic_pk * 1e3
            );
        }
    }
}
