//! Benchmark harness for the AHFIC workspace.
//!
//! Two kinds of targets live here:
//!
//! - **Regeneration binaries** (`src/bin/*.rs`) — one per table/figure of
//!   the paper; each prints the same rows/series the paper reports:
//!   `fig3_spectrum`, `fig5_image_rejection`, `fig8_shapes`,
//!   `fig9_ft_curves`, `table1_ring_oscillator`, `ablation_area_factor`,
//!   `celldb_catalog`.
//! - **Criterion benches** (`benches/*.rs`) — performance of the
//!   underlying engines (solver scaling, AHDL throughput, experiment
//!   kernels).
//!
//! This library hosts shared helpers for both.

use ahfic_geom::prelude::*;

/// The generator configuration every experiment uses (nominal process,
/// default rules) so numbers are comparable across binaries.
pub fn standard_generator() -> ModelGenerator {
    ModelGenerator::new(ProcessData::default(), MaskRules::default())
}

/// Formats a frequency in engineering units for table output.
pub fn fmt_freq(hz: f64) -> String {
    if hz >= 1e9 {
        format!("{:.3} GHz", hz / 1e9)
    } else if hz >= 1e6 {
        format!("{:.2} MHz", hz / 1e6)
    } else if hz >= 1e3 {
        format!("{:.2} kHz", hz / 1e3)
    } else {
        format!("{hz:.2} Hz")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freq_formatting() {
        assert_eq!(fmt_freq(1.234e9), "1.234 GHz");
        assert_eq!(fmt_freq(45e6), "45.00 MHz");
        assert_eq!(fmt_freq(1.5e3), "1.50 kHz");
        assert_eq!(fmt_freq(10.0), "10.00 Hz");
    }

    #[test]
    fn generator_builds() {
        let g = standard_generator();
        let m = g.generate(&"N1.2-6D".parse().unwrap());
        assert!(m.is_ > 0.0);
    }
}
