//! Methodology benches: spec budgeting and the mixed-level
//! characterization kernel (the full six-stage flow is exercised by
//! `examples/top_down_flow.rs`).

use ahfic::budget::derive_balance_budget;
use ahfic::mixed::characterize_rc_cr;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_flow(c: &mut Criterion) {
    c.bench_function("budget_inversion", |b| {
        let gains = [0.005, 0.01, 0.02, 0.03, 0.05, 0.07, 0.09];
        b.iter(|| black_box(derive_balance_budget(black_box(30.0), &gains).len()))
    });

    c.bench_function("rc_cr_characterization", |b| {
        b.iter(|| {
            let bal = characterize_rc_cr(45e6, 1e-12, black_box(0.05)).unwrap();
            black_box(bal.phase_err_deg)
        })
    });
}

criterion_group!(benches, bench_flow);
criterion_main!(benches);
