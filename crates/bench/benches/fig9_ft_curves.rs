//! Criterion bench for the Fig. 9 kernel: model generation + one
//! fT extraction (bias search + AC probing).

use ahfic_geom::prelude::*;
use ahfic_spice::analysis::Options;
use ahfic_spice::measure::ft_at_bias;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_ft(c: &mut Criterion) {
    let generator = ModelGenerator::new(ProcessData::default(), MaskRules::default());
    let shape: TransistorShape = "N1.2-12D".parse().unwrap();
    let model = generator.generate(&shape);
    let opts = Options::default();

    let mut group = c.benchmark_group("fig9");
    group.bench_function("model_generation", |b| {
        b.iter(|| black_box(generator.generate(black_box(&shape))))
    });
    group.sample_size(20);
    group.bench_function("ft_extraction_1mA", |b| {
        b.iter(|| {
            let p = ft_at_bias(black_box(&model), 3.0, 1e-3, &opts).unwrap();
            black_box(p.ft)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ft);
criterion_main!(benches);
