//! Criterion bench for the Table 1 kernel: a short 3-stage ring
//! oscillator transient (the full 5-stage / 30 ns experiment lives in the
//! regeneration binary).

use ahfic_geom::prelude::*;
use ahfic_rf::ringosc::{measure_ring_frequency, RingOscParams};
use ahfic_spice::analysis::Options;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_ring(c: &mut Criterion) {
    let generator = ModelGenerator::new(ProcessData::default(), MaskRules::default());
    let pair = generator.generate(&"N1.2-12D".parse().unwrap());
    let params = RingOscParams {
        stages: 3,
        t_stop: 5e-9,
        dt_max: 5e-12,
        ..RingOscParams::default()
    };
    let opts = Options::default();

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("ring3_5ns_transient", |b| {
        b.iter(|| {
            let m = measure_ring_frequency(black_box(&params), &pair, &pair, &opts).unwrap();
            black_box(m.frequency)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ring);
criterion_main!(benches);
