//! Engine benches: MNA solve scaling with circuit size, LU kernel, and
//! the Gummel–Poon evaluation hot path.

use ahfic_num::{lu::LuFactors, Matrix};
use ahfic_spice::analysis::{Options, Session};
use ahfic_spice::circuit::{Circuit, Prepared};
use ahfic_spice::devices::bjt::eval_bjt;
use ahfic_spice::model::BjtModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Resistor-ladder circuit with `n` sections (n+1 nodes).
fn ladder(n: usize) -> Prepared {
    let mut c = Circuit::new();
    let mut prev = c.node("in");
    c.vsource("V1", prev, Circuit::gnd(), 1.0);
    for k in 0..n {
        let next = c.node(&format!("n{k}"));
        c.resistor(&format!("Rs{k}"), prev, next, 100.0);
        c.resistor(&format!("Rp{k}"), next, Circuit::gnd(), 1e3);
        prev = next;
    }
    Prepared::compile(&c).unwrap()
}

fn bench_solver(c: &mut Criterion) {
    let opts = Options::default();
    let mut group = c.benchmark_group("mna-op");
    for &n in &[10usize, 40, 160] {
        let sess = Session::new(ladder(n)).with_options(opts.clone());
        group.bench_with_input(BenchmarkId::new("ladder", n), &sess, |b, sess| {
            b.iter(|| black_box(sess.op().unwrap().x()[0]))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("lu");
    for &n in &[16usize, 64, 128] {
        // Diagonally dominant dense system.
        let mut m = Matrix::<f64>::zeros(n, n);
        for r in 0..n {
            for cc in 0..n {
                m[(r, cc)] = if r == cc {
                    n as f64 + 1.0
                } else {
                    ((r * 31 + cc * 17) % 13) as f64 / 13.0
                };
            }
        }
        let rhs = vec![1.0; n];
        group.bench_with_input(BenchmarkId::new("factor+solve", n), &m, |b, m| {
            b.iter(|| {
                let f = LuFactors::factor(m.clone()).unwrap();
                black_box(f.solve(&rhs))
            })
        });
    }
    group.finish();

    let model = BjtModel {
        ikf: 5e-3,
        ise: 1e-18,
        vaf: 50.0,
        cje: 80e-15,
        cjc: 45e-15,
        tf: 15e-12,
        xtf: 4.0,
        vtf: 3.0,
        itf: 10e-3,
        ..BjtModel::default()
    };
    c.bench_function("gummel_poon_eval", |b| {
        b.iter(|| {
            black_box(eval_bjt(
                black_box(&model),
                0.75,
                -2.0,
                -3.0,
                0.025852,
                1e-12,
            ))
        })
    });
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
