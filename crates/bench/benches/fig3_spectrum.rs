//! Criterion bench for the Fig. 3 kernel: tuner transient + windowed
//! spectra at three nodes.

use ahfic_rf::plan::FrequencyPlan;
use ahfic_rf::spectrum_scan::scan_conventional_tuner;
use ahfic_rf::tuner::TunerConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_scan(c: &mut Criterion) {
    let plan = FrequencyPlan::catv(500e6);
    let cfg = TunerConfig::for_plan(&plan);
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("tuner_spectrum_scan", |b| {
        b.iter(|| {
            let scan = scan_conventional_tuner(black_box(&plan), &cfg, 0.5).unwrap();
            black_box(scan.nodes.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scan);
criterion_main!(benches);
