//! AHDL engine benches: compilation and behavioral tick throughput.

use ahfic_ahdl::block::Block;
use ahfic_ahdl::blocks::arith::{Constant, Gain, Mixer};
use ahfic_ahdl::blocks::osc::SineSource;
use ahfic_ahdl::eval::CompiledModule;
use ahfic_ahdl::system::System;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const MIXER_SRC: &str = "module mixer(rf, lo, if_out) {
    input rf, lo; output if_out;
    parameter real k = 0.5;
    analog {
        real prod = k * V(rf) * V(lo);
        V(if_out) <- prod + 0.001 * prod * prod * prod;
    }
}";

fn bench_ahdl(c: &mut Criterion) {
    c.bench_function("ahdl_compile_mixer", |b| {
        b.iter(|| black_box(CompiledModule::compile(black_box(MIXER_SRC)).unwrap()))
    });

    let module = CompiledModule::compile(MIXER_SRC).unwrap();
    let mut inst = module.instantiate(&[]).unwrap();
    c.bench_function("ahdl_tick_mixer", |b| {
        let mut out = [0.0];
        let mut t = 0.0;
        b.iter(|| {
            inst.tick(t, 1e-10, black_box(&[0.4, 0.9]), &mut out);
            t += 1e-10;
            black_box(out[0])
        })
    });

    c.bench_function("system_10k_ticks_5_blocks", |b| {
        b.iter(|| {
            let mut sys = System::new();
            let a = sys.net("a");
            let lo = sys.net("lo");
            let m = sys.net("m");
            let g = sys.net("g");
            let k = sys.net("k");
            sys.add("src", SineSource::new(1e6, 1.0), &[], &[a])
                .unwrap();
            sys.add("lo", SineSource::new(0.9e6, 1.0), &[], &[lo])
                .unwrap();
            sys.add("mix", Mixer::new(1.0), &[a, lo], &[m]).unwrap();
            sys.add("gain", Gain::new(2.0), &[m], &[g]).unwrap();
            sys.add("ofs", Constant::new(0.1), &[], &[k]).unwrap();
            let trace = sys.run_probed(100e6, 100e-6, &[g]).unwrap();
            black_box(trace.len())
        })
    });
}

criterion_group!(benches, bench_ahdl);
criterion_main!(benches);
