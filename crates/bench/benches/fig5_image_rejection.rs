//! Criterion bench for the Fig. 5 kernel: one behavioral IRR measurement
//! (two full tuner transient runs + tone extraction).

use ahfic_rf::image_rejection::measure_irr_db;
use ahfic_rf::plan::FrequencyPlan;
use ahfic_rf::tuner::{ImageRejectionErrors, TunerConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_irr(c: &mut Criterion) {
    let plan = FrequencyPlan::catv(500e6);
    let cfg = TunerConfig::for_plan(&plan);
    let errors = ImageRejectionErrors {
        lo_phase_err_deg: 3.0,
        gain_err: 0.03,
        shifter_phase_err_deg: 0.0,
    };
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("irr_measurement_0p5us", |b| {
        b.iter(|| {
            let irr = measure_irr_db(&plan, &cfg, black_box(&errors), Some(0.5e-6)).unwrap();
            black_box(irr)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_irr);
criterion_main!(benches);
