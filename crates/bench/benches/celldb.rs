//! Cell database benches: registration (with view validation), search,
//! and persistence.

use ahfic_celldb::search::{search, SearchQuery};
use ahfic_celldb::seed::seed_library;
use ahfic_celldb::CellDb;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_celldb(c: &mut Criterion) {
    c.bench_function("seed_library_register_validate", |b| {
        b.iter(|| black_box(seed_library().unwrap().len()))
    });

    let db = seed_library().unwrap();
    c.bench_function("search_keyword", |b| {
        b.iter(|| {
            let hits = search(
                &db,
                &SearchQuery::keywords(black_box("image rejection mixer")),
            );
            black_box(hits.len())
        })
    });

    let json = db.to_json().unwrap();
    c.bench_function("load_from_json", |b| {
        b.iter(|| black_box(CellDb::from_json(black_box(&json)).unwrap().len()))
    });
}

criterion_group!(benches, bench_celldb);
criterion_main!(benches);
