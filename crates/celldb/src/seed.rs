//! A seeded example library mirroring the paper's Figs. 6–7: TV and
//! tuner cells with documents, symbols, behavioral AHDL, transistor-level
//! schematics and stored simulation data.

use crate::cell::{CategoryPath, Cell};
use crate::db::{CellDb, Result};
use crate::views::{CellViews, PortDirection, SimulationData, SymbolPort, SymbolView};

fn sym(label: &str, inputs: &[&str], outputs: &[&str]) -> SymbolView {
    let mut ports = Vec::new();
    for i in inputs {
        ports.push(SymbolPort {
            name: (*i).to_string(),
            direction: PortDirection::Input,
        });
    }
    for o in outputs {
        ports.push(SymbolPort {
            name: (*o).to_string(),
            direction: PortDirection::Output,
        });
    }
    SymbolView {
        ports,
        label: label.to_string(),
    }
}

/// Builds the demonstration library (11 cells across the TV, TVR and
/// Tuner application fields).
///
/// # Errors
///
/// Never fails in practice; propagates registration errors if the seed
/// data is edited inconsistently.
pub fn seed_library() -> Result<CellDb> {
    let mut db = CellDb::new();

    // ---- TV / Chroma ----
    db.register(
        Cell::new(
            "ACC1",
            CategoryPath::new("TV", "Chroma", "ACC"),
            CellViews {
                document: Some(
                    "Automatic color control. Keeps the chroma burst amplitude constant \
                     over a 20 dB input range by controlling the first chroma amplifier. \
                     DC voltage is 5 to 8 V."
                        .into(),
                ),
                behavioral: Some(
                    "module acc(in, out) {
                        input in; output out;
                        parameter real target = 0.5;
                        analog {
                            // Running-RMS automatic gain control.
                            real msum = idt(V(in) * V(in), 1e-9);
                            real rms = sqrt(msum / max($time, 1e-7));
                            real gain = target / max(rms, 0.05);
                            V(out) <- min(gain, 10.0) * V(in);
                        }
                    }"
                    .into(),
                ),
                symbol: Some(sym("ACC", &["in"], &["out"])),
                simulation_data: vec![SimulationData {
                    name: "gain_vs_input".into(),
                    axis: "input level [V]".into(),
                    value: "gain [dB]".into(),
                    points: vec![
                        (0.05, 20.0),
                        (0.1, 14.0),
                        (0.3, 4.6),
                        (0.5, 0.0),
                        (1.0, -6.0),
                    ],
                }],
                ..Default::default()
            },
        )
        .with_provenance("miyahara", "TA8867"),
    )?;

    db.register(
        Cell::new(
            "ACC2",
            CategoryPath::new("TV", "Chroma", "ACC"),
            CellViews {
                document: Some(
                    "Second-generation ACC with faster attack. Re-used from the TA8880 \
                     chroma processor; above 70% of this family is carried between ICs."
                        .into(),
                ),
                symbol: Some(sym("ACC2", &["in"], &["out"])),
                ..Default::default()
            },
        )
        .with_provenance("oumi", "TA8880"),
    )?;

    db.register(
        Cell::new(
            "CLIM1",
            CategoryPath::new("TV", "Chroma", "Color limiter"),
            CellViews {
                document: Some("Color limiter clamping chroma excursions to +/-1 V.".into()),
                behavioral: Some(
                    "module clim(in, out) {
                        input in; output out;
                        parameter real limit = 1.0;
                        analog {
                            real v = V(in);
                            if (v > limit) { V(out) <- limit; }
                            else { V(out) <- v < -limit ? -limit : v; }
                        }
                    }"
                    .into(),
                ),
                symbol: Some(sym("CLIM", &["in"], &["out"])),
                ..Default::default()
            },
        )
        .with_provenance("miyahara", "TA8867"),
    )?;

    // ---- TV / Video ----
    db.register(
        Cell::new(
            "GCA1",
            CategoryPath::new("TV", "Video", "Gain control"),
            CellViews {
                document: Some(
                    "This circuit is used for TV Video. Input signal is IN1 and IN2. \
                     DC voltage is 5 to 8 V. Output impedance is very low and input \
                     impedance is 50 ohm. This circuit operates like a gain controlled amp."
                        .into(),
                ),
                behavioral: Some(
                    "module gca(in1, in2, out) {
                        input in1, in2; output out;
                        parameter real gmax = 4.0;
                        analog {
                            real ctrl = min(max(V(in2), 0.0), 1.0);
                            V(out) <- gmax * ctrl * V(in1);
                        }
                    }"
                    .into(),
                ),
                schematic: Some(
                    "* GCA1 core: differential pair with controlled tail\n\
                     .model gca_npn NPN (IS=2e-16 BF=110 RB=120 RE=3 RC=40 CJE=60f CJC=40f TF=16p)\n\
                     VCC vcc 0 8\n\
                     Q1 o1 in1 tail gca_npn\n\
                     Q2 o2 ref tail gca_npn\n\
                     R1 vcc o1 2k\n\
                     R2 vcc o2 2k\n\
                     IT tail 0 1m\n\
                     VREF ref 0 2.5\n"
                        .into(),
                ),
                symbol: Some(sym("GCA", &["in1", "in2"], &["out"])),
                simulation_data: vec![SimulationData {
                    name: "gain_vs_ctrl".into(),
                    axis: "control [V]".into(),
                    value: "gain [V/V]".into(),
                    points: vec![(0.0, 0.0), (0.25, 1.0), (0.5, 2.0), (1.0, 4.0)],
                }],
            },
        )
        .with_provenance("moriyama", "TA8885"),
    )?;

    // ---- TVR / Deflection ----
    db.register(
        Cell::new(
            "HDRV1",
            CategoryPath::new("TVR", "Deflection", "Horizontal drive"),
            CellViews {
                document: Some("Horizontal deflection pre-driver with 32 kHz ramp.".into()),
                symbol: Some(sym("HDRV", &["sync"], &["drive"])),
                ..Default::default()
            },
        )
        .with_provenance("oumi", "TA8859"),
    )?;

    // ---- Tuner / Mixer ----
    db.register(
        Cell::new(
            "IRMIX1",
            CategoryPath::new("Tuner", "Mixer", "Image rejection"),
            CellViews {
                document: Some(
                    "Image rejection mixer for the double-super tuner (Fig. 4 of DAC'96 \
                     paper). The image rejection ratio is set by the phase balance and \
                     gain balance of the 90 degree phase shifters; see fig5 data."
                        .into(),
                ),
                behavioral: Some(
                    "module irmix(if1, lo_i, lo_q, out_i, out_q) {
                        input if1, lo_i, lo_q;
                        output out_i, out_q;
                        parameter real k = 1.0;
                        analog {
                            V(out_i) <- k * V(if1) * V(lo_i);
                            V(out_q) <- k * V(if1) * V(lo_q);
                        }
                    }"
                    .into(),
                ),
                symbol: Some(sym("IRMIX", &["if1", "lo_i", "lo_q"], &["out_i", "out_q"])),
                simulation_data: vec![SimulationData {
                    name: "irr_vs_phase_error".into(),
                    axis: "phase error [deg]".into(),
                    value: "IRR [dB]".into(),
                    points: vec![
                        (0.5, 43.6),
                        (1.0, 40.0),
                        (2.0, 34.8),
                        (5.0, 27.1),
                        (10.0, 21.1),
                    ],
                }],
                ..Default::default()
            },
        )
        .with_provenance("miyahara", "2nd Converter IC for BS/CS Tuner"),
    )?;

    db.register(
        Cell::new(
            "DBLMIX1",
            CategoryPath::new("Tuner", "Mixer", "Down converter"),
            CellViews {
                document: Some(
                    "Double-balanced (Gilbert) down-conversion mixer, 1.3 GHz first IF \
                     to 45 MHz second IF. Transistor shapes chosen by the model \
                     parameter generation flow."
                        .into(),
                ),
                schematic: Some(
                    "* Gilbert cell core\n\
                     .model N1.2-6D NPN (IS=2e-16 BF=120 RB=150 RE=6 RC=35 CJE=70f CJC=55f TF=15p)\n\
                     VCC vcc 0 5\n\
                     RL1 vcc op 300\n\
                     RL2 vcc on 300\n\
                     Q1 op lop e1 N1.2-6D\n\
                     Q2 on lon e1 N1.2-6D\n\
                     Q3 op lon e2 N1.2-6D\n\
                     Q4 on lop e2 N1.2-6D\n\
                     Q5 e1 rfp tail N1.2-6D\n\
                     Q6 e2 rfn tail N1.2-6D\n\
                     IT tail 0 2m\n"
                        .into(),
                ),
                symbol: Some(sym("MIX", &["rfp", "rfn", "lop", "lon"], &["op", "on"])),
                ..Default::default()
            },
        )
        .with_provenance("miyahara", "Single-chip down converter IC for UHF/VHF TV tuner"),
    )?;

    // ---- Tuner / Oscillator ----
    db.register(
        Cell::new(
            "QVCO1",
            CategoryPath::new("Tuner", "Oscillator", "Quadrature VCO"),
            CellViews {
                document: Some(
                    "Second local oscillator with two outputs whose phases differ by 90 \
                     degrees, for the image rejection mixer. Typical phase balance 1-3 \
                     degrees over process."
                        .into(),
                ),
                behavioral: Some(
                    "module qvco(out_i, out_q) {
                        output out_i, out_q;
                        parameter real f0 = 1.345e9;
                        parameter real ampl = 1.0;
                        parameter real phase_err = 0.0;
                        parameter real gain_err = 0.0;
                        analog {
                            V(out_i) <- ampl * cos(2 * PI * f0 * $time);
                            V(out_q) <- ampl * (1 + gain_err)
                                        * sin(2 * PI * f0 * $time + phase_err * PI / 180);
                        }
                    }"
                    .into(),
                ),
                symbol: Some(sym("QVCO", &[], &["out_i", "out_q"])),
                ..Default::default()
            },
        )
        .with_provenance("oumi", "2nd Converter IC for BS/CS Tuner"),
    )?;

    // ---- Tuner / Phase shifter ----
    db.register(
        Cell::new(
            "PS90A",
            CategoryPath::new("Tuner", "Phase shifter", "IF 90 degree"),
            CellViews {
                document: Some(
                    "45 MHz 90 degree phase shifter (first-order all-pass) used in the \
                     second IF path of the image rejection system."
                        .into(),
                ),
                schematic: Some(
                    "* RC-CR allpass realization\n\
                     VIN in 0 AC 1\n\
                     R1 in a 3.54k\n\
                     C1 a 0 1p\n\
                     C2 in b 1p\n\
                     R2 b 0 3.54k\n"
                        .into(),
                ),
                symbol: Some(sym("PS90", &["in"], &["out"])),
                ..Default::default()
            },
        )
        .with_provenance("miyahara", "2nd Converter IC for BS/CS Tuner"),
    )?;

    // ---- Tuner / Buffer ----
    db.register(
        Cell::new(
            "ECLBUF1",
            CategoryPath::new("Tuner", "Buffer", "ECL"),
            CellViews {
                document: Some(
                    "Emitter-follower buffered ECL stage, the building block of the \
                     five-stage ring oscillator used to benchmark transistor shapes \
                     (Table 1)."
                        .into(),
                ),
                schematic: Some(
                    "* one ring-oscillator stage\n\
                     .model N1.2-12D NPN (IS=4e-16 BF=120 RB=90 RE=3 RC=25 CJE=130f CJC=100f TF=15p)\n\
                     VCC vcc 0 5\n\
                     RLP vcc cp 130\n\
                     RLN vcc cn 130\n\
                     Q1 cp inp tail N1.2-12D\n\
                     Q2 cn inn tail N1.2-12D\n\
                     IT tail 0 3m\n\
                     QF1 vcc cp outp N1.2-12D\n\
                     QF2 vcc cn outn N1.2-12D\n\
                     RF1 outp 0 1.2k\n\
                     RF2 outn 0 1.2k\n"
                        .into(),
                ),
                symbol: Some(sym("ECL", &["inp", "inn"], &["outp", "outn"])),
                ..Default::default()
            },
        )
        .with_provenance("moriyama", "ring oscillator test chip"),
    )?;

    // ---- TV / Video filter ----
    db.register(
        Cell::new(
            "TRAP45",
            CategoryPath::new("TV", "Video", "Trap"),
            CellViews {
                document: Some("4.5 MHz sound trap for the video path.".into()),
                behavioral: Some(
                    // Comb notch: y = (x + x(t - T))/2 has its first zero
                    // at 1/(2T) = 4.5 MHz.
                    "module trap(in, out) {
                        input in; output out;
                        analog {
                            V(out) <- 0.5 * (V(in) + delay(V(in), 1.1111e-7));
                        }
                    }"
                    .into(),
                ),
                symbol: Some(sym("TRAP", &["in"], &["out"])),
                ..Default::default()
            },
        )
        .with_provenance("oumi", "TA8867"),
    )?;

    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{search, SearchQuery};

    #[test]
    fn seed_builds_and_validates() {
        let db = seed_library().unwrap();
        assert!(db.len() >= 10, "only {} cells", db.len());
        // Fig. 6 structure present.
        let tax = db.taxonomy();
        assert!(tax.iter().any(|(l, c, _)| l == "TV" && c == "Chroma"));
        assert!(tax.iter().any(|(l, _, _)| l == "Tuner"));
    }

    #[test]
    fn behavioral_views_in_seed_compile() {
        let db = seed_library().unwrap();
        let with_beh = db.iter().filter(|c| c.views.behavioral.is_some()).count();
        assert!(with_beh >= 5, "only {with_beh} behavioral views");
        // Registration already validated them; double-check one compiles
        // and instantiates.
        let qvco = db.get("QVCO1").unwrap();
        let m = ahfic_ahdl::eval::CompiledModule::compile(qvco.views.behavioral.as_ref().unwrap())
            .unwrap();
        assert!(m.instantiate(&[("phase_err", 3.0)]).is_ok());
    }

    #[test]
    fn schematic_views_in_seed_simulate() {
        let db = seed_library().unwrap();
        let gca = db.get("GCA1").unwrap();
        let ckt = ahfic_spice::parse::parse_netlist(gca.views.schematic.as_ref().unwrap()).unwrap();
        let sess = ahfic_spice::analysis::Session::compile(&ckt).unwrap();
        let op = sess.op();
        assert!(op.is_ok(), "{op:?}");
    }

    #[test]
    fn paper_workflow_search_then_copy() {
        let db = seed_library().unwrap();
        let hits = search(&db, &SearchQuery::keywords("image rejection"));
        assert_eq!(hits[0].cell.name, "IRMIX1");
        let mine = db.copy_out("IRMIX1", "IRMIX_BS2").unwrap();
        assert_eq!(mine.revision, 1);
        assert!(mine.views.behavioral.is_some());
    }

    #[test]
    fn reuse_ratio_exceeds_paper_claim() {
        // The paper reports >70 % of circuits can be re-used; in the seed
        // library every cell carries at least a document plus one
        // implementation view, i.e. is re-usable as-is.
        let db = seed_library().unwrap();
        let reusable = db
            .iter()
            .filter(|c| c.views.schematic.is_some() || c.views.behavioral.is_some())
            .count();
        assert!(reusable as f64 / db.len() as f64 > 0.7);
    }
}
