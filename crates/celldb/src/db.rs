//! The Analog Cell-based Design Supporting System: registration (with
//! view validation) and retrieval.

use crate::cell::{CategoryPath, Cell};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Error raised by database operations.
#[derive(Clone, Debug, PartialEq)]
pub enum CellDbError {
    /// A cell with the same name already exists (and `overwrite` was not
    /// requested).
    Duplicate(String),
    /// The requested cell does not exist.
    NotFound(String),
    /// A view failed validation at registration time.
    InvalidView {
        /// Cell being registered.
        cell: String,
        /// Which view failed.
        view: &'static str,
        /// Underlying message.
        message: String,
    },
    /// Persistence failure.
    Store(String),
}

impl fmt::Display for CellDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellDbError::Duplicate(n) => write!(f, "cell {n} already registered"),
            CellDbError::NotFound(n) => write!(f, "no cell named {n}"),
            CellDbError::InvalidView {
                cell,
                view,
                message,
            } => write!(f, "cell {cell}: invalid {view} view: {message}"),
            CellDbError::Store(m) => write!(f, "store error: {m}"),
        }
    }
}

impl std::error::Error for CellDbError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, CellDbError>;

/// The cell database. Cells are keyed by name; taxonomy queries walk the
/// `CategoryPath` fields.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CellDb {
    cells: BTreeMap<String, Cell>,
}

impl CellDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        CellDb::default()
    }

    /// Number of registered cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cells are registered.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Registers a cell after validating its views:
    /// the behavioral view must compile as AHDL, and the schematic view
    /// must parse as a SPICE netlist. Re-registering an existing name
    /// fails; use [`Self::update`] to bump a revision.
    ///
    /// # Errors
    ///
    /// [`CellDbError::Duplicate`] or [`CellDbError::InvalidView`].
    pub fn register(&mut self, cell: Cell) -> Result<()> {
        if self.cells.contains_key(&cell.name) {
            return Err(CellDbError::Duplicate(cell.name));
        }
        validate_views(&cell)?;
        self.cells.insert(cell.name.clone(), cell);
        Ok(())
    }

    /// Replaces an existing cell, bumping its revision.
    ///
    /// # Errors
    ///
    /// [`CellDbError::NotFound`] or [`CellDbError::InvalidView`].
    pub fn update(&mut self, mut cell: Cell) -> Result<u32> {
        let old = self
            .cells
            .get(&cell.name)
            .ok_or_else(|| CellDbError::NotFound(cell.name.clone()))?;
        validate_views(&cell)?;
        cell.revision = old.revision + 1;
        let rev = cell.revision;
        self.cells.insert(cell.name.clone(), cell);
        Ok(rev)
    }

    /// Fetches a cell by name.
    ///
    /// # Errors
    ///
    /// [`CellDbError::NotFound`].
    pub fn get(&self, name: &str) -> Result<&Cell> {
        self.cells
            .get(name)
            .ok_or_else(|| CellDbError::NotFound(name.to_string()))
    }

    /// Copies a registered cell out of the database under a new name —
    /// the re-use operation. The copy is *not* registered.
    ///
    /// # Errors
    ///
    /// [`CellDbError::NotFound`].
    pub fn copy_out(&self, name: &str, new_name: &str) -> Result<Cell> {
        Ok(self.get(name)?.copy_as(new_name))
    }

    /// All cells, in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Cell> {
        self.cells.values()
    }

    /// Cells under a library (e.g. `TV`).
    pub fn in_library<'a>(&'a self, library: &'a str) -> impl Iterator<Item = &'a Cell> + 'a {
        self.cells
            .values()
            .filter(move |c| c.path.library == library)
    }

    /// Cells under a full category path.
    pub fn in_category<'a>(
        &'a self,
        path: &'a CategoryPath,
    ) -> impl Iterator<Item = &'a Cell> + 'a {
        self.cells.values().filter(move |c| c.path == *path)
    }

    /// Distinct libraries, categories and subcategories (the Fig. 6
    /// tree), as `(library, category, subcategory)` rows in order.
    pub fn taxonomy(&self) -> Vec<(String, String, String)> {
        let mut rows: Vec<_> = self
            .cells
            .values()
            .map(|c| {
                (
                    c.path.library.clone(),
                    c.path.category.clone(),
                    c.path.subcategory.clone(),
                )
            })
            .collect();
        rows.sort();
        rows.dedup();
        rows
    }
}

fn validate_views(cell: &Cell) -> Result<()> {
    if let Some(src) = &cell.views.behavioral {
        ahfic_ahdl::eval::CompiledModule::compile(src).map_err(|e| CellDbError::InvalidView {
            cell: cell.name.clone(),
            view: "behavioral",
            message: e.to_string(),
        })?;
    }
    if let Some(deck) = &cell.views.schematic {
        ahfic_spice::parse::parse_netlist(deck).map_err(|e| CellDbError::InvalidView {
            cell: cell.name.clone(),
            view: "schematic",
            message: e.to_string(),
        })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::views::CellViews;

    fn amp_cell(name: &str) -> Cell {
        Cell::new(
            name,
            CategoryPath::new("TV", "Video", "GCA"),
            CellViews {
                behavioral: Some(
                    "module amp(in, out) { input in; output out;
                     parameter real gain = 2.0;
                     analog { V(out) <- gain * V(in); } }"
                        .into(),
                ),
                schematic: Some("R1 in out 1k\nR2 out 0 1k\n".into()),
                document: Some("A simple gain stage.".into()),
                ..Default::default()
            },
        )
    }

    #[test]
    fn register_get_copy() {
        let mut db = CellDb::new();
        db.register(amp_cell("GCA1")).unwrap();
        assert_eq!(db.len(), 1);
        let c = db.get("GCA1").unwrap();
        assert_eq!(c.revision, 1);
        let copy = db.copy_out("GCA1", "GCA1_MK2").unwrap();
        assert_eq!(copy.name, "GCA1_MK2");
        assert!(db.get("GCA1_MK2").is_err(), "copy not registered");
    }

    #[test]
    fn duplicate_rejected_update_bumps() {
        let mut db = CellDb::new();
        db.register(amp_cell("GCA1")).unwrap();
        assert!(matches!(
            db.register(amp_cell("GCA1")),
            Err(CellDbError::Duplicate(_))
        ));
        let rev = db.update(amp_cell("GCA1")).unwrap();
        assert_eq!(rev, 2);
        assert!(db.update(amp_cell("NOPE")).is_err());
    }

    #[test]
    fn invalid_behavioral_view_rejected() {
        let mut db = CellDb::new();
        let mut c = amp_cell("BAD");
        c.views.behavioral = Some("module broken(".into());
        match db.register(c) {
            Err(CellDbError::InvalidView { view, .. }) => assert_eq!(view, "behavioral"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn invalid_schematic_view_rejected() {
        let mut db = CellDb::new();
        let mut c = amp_cell("BAD");
        c.views.schematic = Some("R1 a 0 banana\n".into());
        match db.register(c) {
            Err(CellDbError::InvalidView { view, .. }) => assert_eq!(view, "schematic"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn taxonomy_and_category_queries() {
        let mut db = CellDb::new();
        db.register(amp_cell("GCA1")).unwrap();
        let mut c2 = amp_cell("ACC1");
        c2.path = CategoryPath::new("TV", "Chroma", "ACC");
        db.register(c2).unwrap();
        let mut c3 = amp_cell("MIX1");
        c3.path = CategoryPath::new("Tuner", "Mixer", "Image-rejection");
        db.register(c3).unwrap();

        assert_eq!(db.in_library("TV").count(), 2);
        assert_eq!(db.in_library("Tuner").count(), 1);
        let path = CategoryPath::new("TV", "Chroma", "ACC");
        assert_eq!(db.in_category(&path).count(), 1);
        let tax = db.taxonomy();
        assert_eq!(tax.len(), 3);
        assert!(tax.contains(&("TV".into(), "Chroma".into(), "ACC".into())));
    }

    #[test]
    fn error_display() {
        assert!(CellDbError::NotFound("X".into()).to_string().contains("X"));
    }
}
