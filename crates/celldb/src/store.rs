//! JSON persistence for the cell database.

use crate::db::{CellDb, CellDbError, Result};
use std::fs;
use std::path::Path;

impl CellDb {
    /// Serializes the database to pretty JSON.
    ///
    /// # Errors
    ///
    /// [`CellDbError::Store`] on serialization failure.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| CellDbError::Store(e.to_string()))
    }

    /// Deserializes a database from JSON.
    ///
    /// # Errors
    ///
    /// [`CellDbError::Store`] on malformed input.
    pub fn from_json(json: &str) -> Result<CellDb> {
        serde_json::from_str(json).map_err(|e| CellDbError::Store(e.to_string()))
    }

    /// Saves to a file.
    ///
    /// # Errors
    ///
    /// [`CellDbError::Store`] on I/O or serialization failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        fs::write(path, self.to_json()?).map_err(|e| CellDbError::Store(e.to_string()))
    }

    /// Loads from a file.
    ///
    /// # Errors
    ///
    /// [`CellDbError::Store`] on I/O or parse failure.
    pub fn load(path: impl AsRef<Path>) -> Result<CellDb> {
        let text = fs::read_to_string(path).map_err(|e| CellDbError::Store(e.to_string()))?;
        CellDb::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CategoryPath, Cell};
    use crate::views::{CellViews, SimulationData};

    fn sample_db() -> CellDb {
        let mut db = CellDb::new();
        db.register(Cell::new(
            "ACC1",
            CategoryPath::new("TV", "Chroma", "ACC"),
            CellViews {
                document: Some("doc".into()),
                simulation_data: vec![SimulationData {
                    name: "gain".into(),
                    axis: "f [Hz]".into(),
                    value: "dB".into(),
                    points: vec![(1e6, 20.0), (1e9, 3.0)],
                }],
                ..Default::default()
            },
        ))
        .unwrap();
        db
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let db = sample_db();
        let json = db.to_json().unwrap();
        let back = CellDb::from_json(&json).unwrap();
        assert_eq!(back.len(), 1);
        let c = back.get("ACC1").unwrap();
        assert_eq!(c.views.simulation_data[0].points.len(), 2);
        assert_eq!(*c, *db.get("ACC1").unwrap());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("ahfic-celldb-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        let db = sample_db();
        db.save(&path).unwrap();
        let back = CellDb::load(&path).unwrap();
        assert_eq!(back.len(), db.len());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_store_error() {
        assert!(matches!(
            CellDb::from_json("{nope"),
            Err(CellDbError::Store(_))
        ));
        assert!(CellDb::load("/nonexistent/path/db.json").is_err());
    }
}
