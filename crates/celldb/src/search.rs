//! Keyword search over the cell database — the "other part … for those
//! who search registered circuits" of the paper's §3.

use crate::cell::Cell;
use crate::db::CellDb;

/// A scored search hit.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchHit<'a> {
    /// The matching cell.
    pub cell: &'a Cell,
    /// Relevance score (higher is better).
    pub score: f64,
}

/// Search options.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SearchQuery {
    /// Free-text keywords (matched against name, document, taxonomy).
    pub keywords: String,
    /// Restrict to a library, if set.
    pub library: Option<String>,
    /// Require a behavioral view.
    pub needs_behavioral: bool,
    /// Require a schematic view.
    pub needs_schematic: bool,
}

impl SearchQuery {
    /// Plain keyword query.
    pub fn keywords(text: &str) -> Self {
        SearchQuery {
            keywords: text.to_string(),
            ..Default::default()
        }
    }

    /// Builder: restrict to a library.
    pub fn in_library(mut self, library: &str) -> Self {
        self.library = Some(library.to_string());
        self
    }
}

fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_ascii_lowercase())
        .collect()
}

fn score_cell(cell: &Cell, terms: &[String]) -> f64 {
    if terms.is_empty() {
        return 1.0;
    }
    let name_toks = tokenize(&cell.name);
    let doc_toks = tokenize(cell.views.document.as_deref().unwrap_or(""));
    let tax_toks = tokenize(&cell.path.to_string());
    let mut score = 0.0;
    for term in terms {
        // Name match is worth the most, then taxonomy, then document;
        // document matches accumulate with term frequency. Terms match
        // as prefixes ("amp" hits "amplifier").
        if name_toks.iter().any(|t| t == term || t.contains(term)) {
            score += 5.0;
        }
        if tax_toks.iter().any(|t| t.starts_with(term)) {
            score += 3.0;
        }
        score += doc_toks.iter().filter(|t| t.starts_with(term)).count() as f64;
    }
    score
}

/// Runs a search, returning hits sorted by descending score (ties by
/// name). Cells scoring zero are omitted.
pub fn search<'a>(db: &'a CellDb, query: &SearchQuery) -> Vec<SearchHit<'a>> {
    let terms = tokenize(&query.keywords);
    let mut hits: Vec<SearchHit<'a>> = db
        .iter()
        .filter(|c| {
            query
                .library
                .as_ref()
                .is_none_or(|lib| c.path.library == *lib)
        })
        .filter(|c| !query.needs_behavioral || c.views.behavioral.is_some())
        .filter(|c| !query.needs_schematic || c.views.schematic.is_some())
        .map(|cell| SearchHit {
            score: score_cell(cell, &terms),
            cell,
        })
        .filter(|h| h.score > 0.0)
        .collect();
    hits.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.cell.name.cmp(&b.cell.name))
    });
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CategoryPath;
    use crate::views::CellViews;

    fn db() -> CellDb {
        let mut db = CellDb::new();
        let mk = |name: &str, lib: &str, cat: &str, sub: &str, doc: &str, behavioral: bool| {
            let mut views = CellViews {
                document: Some(doc.to_string()),
                ..Default::default()
            };
            if behavioral {
                views.behavioral =
                    Some("module m(a, b) { input a; output b; analog { V(b) <- V(a); } }".into());
            }
            Cell::new(name, CategoryPath::new(lib, cat, sub), views)
        };
        db.register(mk(
            "ACC1",
            "TV",
            "Chroma",
            "ACC",
            "Automatic color control amplifier for TV chroma.",
            true,
        ))
        .unwrap();
        db.register(mk(
            "GCA1",
            "TV",
            "Video",
            "GCA",
            "This circuit operates like a gain controlled amp. Input impedance 50 ohm.",
            false,
        ))
        .unwrap();
        db.register(mk(
            "IRMIX1",
            "Tuner",
            "Mixer",
            "Image-rejection",
            "Image rejection mixer with quadrature LO for the double-super tuner.",
            true,
        ))
        .unwrap();
        db
    }

    #[test]
    fn keyword_finds_by_document() {
        let db = db();
        let hits = search(&db, &SearchQuery::keywords("gain controlled"));
        assert!(!hits.is_empty());
        assert_eq!(hits[0].cell.name, "GCA1");
    }

    #[test]
    fn name_match_outranks_document_match() {
        let db = db();
        let hits = search(&db, &SearchQuery::keywords("acc"));
        assert_eq!(hits[0].cell.name, "ACC1");
    }

    #[test]
    fn library_filter_applies() {
        let db = db();
        let hits = search(&db, &SearchQuery::keywords("mixer").in_library("TV"));
        assert!(hits.iter().all(|h| h.cell.path.library == "TV"));
        let hits = search(&db, &SearchQuery::keywords("mixer").in_library("Tuner"));
        assert_eq!(hits[0].cell.name, "IRMIX1");
    }

    #[test]
    fn view_requirements_filter() {
        let db = db();
        let q = SearchQuery {
            keywords: "amp".into(),
            needs_behavioral: true,
            ..Default::default()
        };
        let hits = search(&db, &q);
        assert!(hits.iter().all(|h| h.cell.views.behavioral.is_some()));
        assert!(hits.iter().any(|h| h.cell.name == "ACC1"));
        assert!(!hits.iter().any(|h| h.cell.name == "GCA1"));
    }

    #[test]
    fn empty_keywords_with_filter_lists_all_in_scope() {
        let db = db();
        let q = SearchQuery {
            keywords: String::new(),
            library: Some("TV".into()),
            ..Default::default()
        };
        assert_eq!(search(&db, &q).len(), 2);
    }

    #[test]
    fn no_hits_for_nonsense() {
        let db = db();
        assert!(search(&db, &SearchQuery::keywords("zyzzyva")).is_empty());
    }
}
