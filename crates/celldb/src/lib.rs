//! The Analog Cell-based Design Supporting System (paper §3).
//!
//! A database of previously designed, validated analog circuits:
//! each [`cell::Cell`] carries the views of the paper's Fig. 7 —
//! operation document, behavioral (AHDL) description, primitive-element
//! (SPICE) schematic, block symbol and stored simulation data — organized
//! in the Fig. 6 taxonomy (`library / category / subcategory`).
//!
//! - [`db::CellDb`] — registration (views are *validated*: AHDL must
//!   compile, schematics must parse), retrieval and copy-out for re-use;
//! - [`mod@search`] — the keyword/category search front-end;
//! - [`store`] — JSON persistence;
//! - [`catalog`] — static HTML/Markdown rendering, standing in for the
//!   paper's intranet WWW server;
//! - [`seed`] — a demonstration library mirroring the paper's examples.
//!
//! # Example
//!
//! ```
//! use ahfic_celldb::{search::{search, SearchQuery}, seed::seed_library};
//! let db = seed_library()?;
//! let hits = search(&db, &SearchQuery::keywords("image rejection"));
//! assert_eq!(hits[0].cell.name, "IRMIX1");
//! let reused = db.copy_out("IRMIX1", "IRMIX_MY_IC")?;
//! assert!(reused.views.behavioral.is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// A malformed input must surface as a typed error, never a panic:
// `unwrap`/`expect` in non-test code warns (CI promotes warnings to
// errors), with local `#[allow]`s where an invariant guarantees success.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod catalog;
pub mod cell;
pub mod db;
pub mod search;
pub mod seed;
pub mod store;
pub mod views;

pub use cell::{CategoryPath, Cell};
pub use db::{CellDb, CellDbError};
pub use search::{search, SearchQuery};
