//! Static catalog rendering — the stand-in for the paper's intranet WWW
//! server used "to make a quick inspection of circuit diagrams and
//! documents".

use crate::db::CellDb;
use std::fmt::Write as _;

/// Renders the whole database as a single HTML page: a Fig. 6-style
/// taxonomy index followed by one section per cell with its document,
/// symbol pins, schematic and behavioral source.
pub fn render_html(db: &CellDb) -> String {
    let mut out = String::new();
    out.push_str("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">");
    out.push_str("<title>Analog Cell Library</title></head><body>\n");
    out.push_str("<h1>Analog Cell Library</h1>\n");

    // Taxonomy index.
    out.push_str("<h2>Index</h2>\n<ul>\n");
    let mut last_lib = String::new();
    for (lib, cat, sub) in db.taxonomy() {
        if lib != last_lib {
            let _ = writeln!(out, "<li><b>{}</b></li>", escape(&lib));
            last_lib = lib.clone();
        }
        let _ = writeln!(
            out,
            "<li style=\"margin-left:2em\">{} / {}<ul>",
            escape(&cat),
            escape(&sub)
        );
        for cell in db.iter().filter(|c| {
            c.path.library == lib && c.path.category == cat && c.path.subcategory == sub
        }) {
            let _ = writeln!(out, "<li><a href=\"#{0}\">{0}</a></li>", escape(&cell.name));
        }
        out.push_str("</ul></li>\n");
    }
    out.push_str("</ul>\n");

    // Cell pages.
    for cell in db.iter() {
        let _ = writeln!(
            out,
            "<hr><h2 id=\"{0}\">{0}</h2>\n<p><i>{1}</i> — rev {2}</p>",
            escape(&cell.name),
            escape(&cell.path.to_string()),
            cell.revision
        );
        if !cell.author.is_empty() {
            let _ = writeln!(
                out,
                "<p>author: {} — proven in: {}</p>",
                escape(&cell.author),
                escape(&cell.proven_in)
            );
        }
        if let Some(doc) = &cell.views.document {
            let _ = writeln!(out, "<h3>Document</h3>\n<p>{}</p>", escape(doc));
        }
        if let Some(sym) = &cell.views.symbol {
            let _ = writeln!(out, "<h3>Symbol: {}</h3>\n<ul>", escape(&sym.label));
            for p in &sym.ports {
                let _ = writeln!(out, "<li>{} ({:?})</li>", escape(&p.name), p.direction);
            }
            out.push_str("</ul>\n");
        }
        if let Some(sch) = &cell.views.schematic {
            let _ = writeln!(
                out,
                "<h3>Schematic (SPICE)</h3>\n<pre>{}</pre>",
                escape(sch)
            );
        }
        if let Some(beh) = &cell.views.behavioral {
            let _ = writeln!(
                out,
                "<h3>Behavioral (AHDL)</h3>\n<pre>{}</pre>",
                escape(beh)
            );
        }
        for data in &cell.views.simulation_data {
            let _ = writeln!(
                out,
                "<h3>Simulation data: {}</h3>\n<p>{} vs {} ({} points)</p>",
                escape(&data.name),
                escape(&data.value),
                escape(&data.axis),
                data.points.len()
            );
        }
    }
    out.push_str("</body></html>\n");
    out
}

/// Renders a compact Markdown index (one line per cell).
pub fn render_markdown_index(db: &CellDb) -> String {
    let mut out = String::from("# Analog Cell Library\n\n");
    let _ = writeln!(out, "| Cell | Category | Views | Rev |");
    let _ = writeln!(out, "|---|---|---|---|");
    for cell in db.iter() {
        let mut views = Vec::new();
        if cell.views.schematic.is_some() {
            views.push("schematic");
        }
        if cell.views.behavioral.is_some() {
            views.push("behavioral");
        }
        if cell.views.symbol.is_some() {
            views.push("symbol");
        }
        if cell.views.document.is_some() {
            views.push("doc");
        }
        if !cell.views.simulation_data.is_empty() {
            views.push("simdata");
        }
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} |",
            cell.name,
            cell.path,
            views.join("+"),
            cell.revision
        );
    }
    out
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CategoryPath, Cell};
    use crate::views::{CellViews, PortDirection, SymbolPort, SymbolView};

    fn db() -> CellDb {
        let mut db = CellDb::new();
        db.register(
            Cell::new(
                "GCA1",
                CategoryPath::new("TV", "Video", "GCA"),
                CellViews {
                    document: Some("Gain controlled amp with <50 ohm> input.".into()),
                    schematic: Some("R1 in out 1k\n".into()),
                    symbol: Some(SymbolView {
                        ports: vec![SymbolPort {
                            name: "in1".into(),
                            direction: PortDirection::Input,
                        }],
                        label: "GCA".into(),
                    }),
                    ..Default::default()
                },
            )
            .with_provenance("oumi", "TA8885"),
        )
        .unwrap();
        db
    }

    #[test]
    fn html_contains_cell_and_escapes() {
        let html = render_html(&db());
        assert!(html.contains("<h2 id=\"GCA1\">GCA1</h2>"));
        assert!(html.contains("&lt;50 ohm&gt;"), "escaped");
        assert!(html.contains("TV/Video/GCA"));
        assert!(html.contains("proven in: TA8885"));
        assert!(html.contains("R1 in out 1k"));
    }

    #[test]
    fn markdown_index_lists_views() {
        let md = render_markdown_index(&db());
        assert!(md.contains("| GCA1 | TV/Video/GCA | schematic+symbol+doc | 1 |"));
    }
}
