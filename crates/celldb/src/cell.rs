//! A registered analog cell and its taxonomy position (paper Figs. 6–7).

use crate::views::CellViews;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Taxonomy position: `library / category / subcategory` (Fig. 6's
/// "Library → Category 1 → Category 2").
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CategoryPath {
    /// Application field (e.g. `TV`, `Tuner`).
    pub library: String,
    /// First-level category (e.g. `Chroma`).
    pub category: String,
    /// Second-level category (e.g. `ACC`).
    pub subcategory: String,
}

impl CategoryPath {
    /// Creates a path.
    pub fn new(library: &str, category: &str, subcategory: &str) -> Self {
        CategoryPath {
            library: library.to_string(),
            category: category.to_string(),
            subcategory: subcategory.to_string(),
        }
    }
}

impl fmt::Display for CategoryPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.library, self.category, self.subcategory)
    }
}

/// A reusable analog cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Unique cell name (`ACC1`, `GCA1`, …).
    pub name: String,
    /// Taxonomy position.
    pub path: CategoryPath,
    /// Contents.
    pub views: CellViews,
    /// Designer recorded at registration.
    pub author: String,
    /// Source IC / project the cell was proven in.
    pub proven_in: String,
    /// Revision counter, bumped on re-registration.
    pub revision: u32,
}

impl Cell {
    /// Creates a new cell at revision 1.
    pub fn new(name: &str, path: CategoryPath, views: CellViews) -> Self {
        Cell {
            name: name.to_string(),
            path,
            views,
            author: String::new(),
            proven_in: String::new(),
            revision: 1,
        }
    }

    /// Builder: sets provenance metadata.
    pub fn with_provenance(mut self, author: &str, proven_in: &str) -> Self {
        self.author = author.to_string();
        self.proven_in = proven_in.to_string();
        self
    }

    /// Clones this cell under a new name for modification in a new design
    /// — the "copy from the database for re-use" operation of the paper.
    pub fn copy_as(&self, new_name: &str) -> Cell {
        let mut c = self.clone();
        c.name = new_name.to_string();
        c.revision = 1;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_display() {
        let p = CategoryPath::new("TV", "Chroma", "ACC");
        assert_eq!(p.to_string(), "TV/Chroma/ACC");
    }

    #[test]
    fn copy_as_resets_revision() {
        let mut c = Cell::new(
            "ACC1",
            CategoryPath::new("TV", "Chroma", "ACC"),
            CellViews::default(),
        )
        .with_provenance("miyahara", "TA8880");
        c.revision = 5;
        let d = c.copy_as("ACC1_COPY");
        assert_eq!(d.name, "ACC1_COPY");
        assert_eq!(d.revision, 1);
        assert_eq!(d.author, "miyahara");
        assert_eq!(c.revision, 5, "original untouched");
    }

    #[test]
    fn serde_round_trip() {
        let c = Cell::new(
            "GCA1",
            CategoryPath::new("TV", "Video", "GCA"),
            CellViews::default(),
        );
        let json = serde_json::to_string(&c).unwrap();
        let back: Cell = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
