//! The multi-view contents of an analog cell (paper Fig. 7): schematic,
//! symbol, behavioral description, document and simulation data.

use serde::{Deserialize, Serialize};

/// Direction of a symbol port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortDirection {
    /// Signal input.
    Input,
    /// Signal output.
    Output,
    /// Supply/bias pin.
    Supply,
}

/// One pin of a cell symbol.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymbolPort {
    /// Pin name.
    pub name: String,
    /// Pin direction.
    pub direction: PortDirection,
}

/// Block symbol for top-down schematics.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SymbolView {
    /// Pins in display order.
    pub ports: Vec<SymbolPort>,
    /// Short label drawn in the symbol body.
    pub label: String,
}

/// Named waveform stored with the cell ("simulation data" in Fig. 7).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimulationData {
    /// Dataset name (e.g. `gain_vs_freq`).
    pub name: String,
    /// Axis label (e.g. `frequency [Hz]`).
    pub axis: String,
    /// Value label (e.g. `gain [dB]`).
    pub value: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

/// All views a registered cell may carry.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize, Default)]
pub struct CellViews {
    /// Primitive-element implementation: a SPICE netlist fragment.
    pub schematic: Option<String>,
    /// Behavioral implementation: AHDL source.
    pub behavioral: Option<String>,
    /// Block symbol.
    pub symbol: Option<SymbolView>,
    /// Free-text document describing circuit operation.
    pub document: Option<String>,
    /// Stored characterization data.
    pub simulation_data: Vec<SimulationData>,
}

impl CellViews {
    /// Number of populated views (simulation datasets count as one view).
    pub fn view_count(&self) -> usize {
        let mut n = 0;
        n += usize::from(self.schematic.is_some());
        n += usize::from(self.behavioral.is_some());
        n += usize::from(self.symbol.is_some());
        n += usize::from(self.document.is_some());
        n += usize::from(!self.simulation_data.is_empty());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_count_counts_populated() {
        let mut v = CellViews::default();
        assert_eq!(v.view_count(), 0);
        v.document = Some("a doc".into());
        v.behavioral = Some("module ...".into());
        assert_eq!(v.view_count(), 2);
        v.simulation_data.push(SimulationData {
            name: "gain".into(),
            axis: "f".into(),
            value: "dB".into(),
            points: vec![(1.0, 2.0)],
        });
        assert_eq!(v.view_count(), 3);
    }

    #[test]
    fn serde_round_trip() {
        let v = CellViews {
            schematic: Some("R1 a 0 1k".into()),
            symbol: Some(SymbolView {
                ports: vec![SymbolPort {
                    name: "in".into(),
                    direction: PortDirection::Input,
                }],
                label: "AMP".into(),
            }),
            ..Default::default()
        };
        let json = serde_json::to_string(&v).unwrap();
        let back: CellViews = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
    }
}
