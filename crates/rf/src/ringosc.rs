//! The paper's Fig. 11 five-stage ECL ring oscillator and the Table 1
//! shape-sweep experiment.
//!
//! Each stage is an emitter-coupled differential pair with resistive
//! collector loads and emitter-follower output buffers; stages are chained
//! differentially (each stage inverts, so an odd number of stages
//! free-runs). The diff-pair transistors `Q1, Q2, Q5, Q6, …` carry the
//! swept shape; followers use a fixed buffer device, as in the paper
//! where "only the shapes of the transistors at differential pairs were
//! optimized".

use ahfic_geom::generate::ModelGenerator;
use ahfic_geom::shape::TransistorShape;
use ahfic_spice::analysis::{Options, Session, TranParams};
use ahfic_spice::circuit::{Circuit, NodeId};
use ahfic_spice::error::Result;
use ahfic_spice::measure::{oscillation_frequency, OscMeasurement};
use ahfic_spice::model::BjtModel;
use ahfic_spice::wave::SourceWave;

/// Electrical parameters of the ring oscillator test bench.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RingOscParams {
    /// Number of stages (odd; the paper uses 5).
    pub stages: usize,
    /// Supply voltage (V).
    pub vcc: f64,
    /// Diff-pair tail current (A) — fixed by power budget per the paper.
    pub tail_current: f64,
    /// Collector load resistance (ohm).
    pub load_r: f64,
    /// Emitter-follower pull-down resistance (ohm).
    pub follower_r: f64,
    /// Simulated time (s).
    pub t_stop: f64,
    /// Maximum transient step (s).
    pub dt_max: f64,
}

impl Default for RingOscParams {
    /// The Table 1 bench: 5 stages, 5 V, 3 mA tail, ~400 mV swing.
    fn default() -> Self {
        RingOscParams {
            stages: 5,
            vcc: 5.0,
            tail_current: 3e-3,
            load_r: 130.0,
            follower_r: 1.2e3,
            t_stop: 30e-9,
            dt_max: 2.5e-12,
        }
    }
}

/// Builds the Fig. 11 netlist with the given diff-pair and follower model
/// cards. Returns the circuit and the differential probe node names of
/// the last stage's outputs.
pub fn build_ring_oscillator(
    params: &RingOscParams,
    pair_model: &BjtModel,
    follower_model: &BjtModel,
) -> (Circuit, String, String) {
    assert!(
        params.stages >= 3 && params.stages % 2 == 1,
        "need an odd stage count >= 3"
    );
    let mut ckt = Circuit::new();
    let vcc = ckt.node("vcc");
    ckt.vsource("VCC", vcc, Circuit::gnd(), params.vcc);
    let pair = ckt.add_bjt_model(pair_model.clone());
    let follower = ckt.add_bjt_model(follower_model.clone());

    let n = params.stages;
    // Stage input nodes (differential): inputs of stage k are the outputs
    // of stage k-1.
    let ins: Vec<(NodeId, NodeId)> = (0..n)
        .map(|k| (ckt.node(&format!("op{k}")), ckt.node(&format!("on{k}"))))
        .collect();

    for k in 0..n {
        let (inp, inn) = ins[(k + n - 1) % n];
        let (outp, outn) = ins[k];
        let cp = ckt.node(&format!("cp{k}"));
        let cn = ckt.node(&format!("cn{k}"));
        let tail = ckt.node(&format!("te{k}"));
        // Collector loads.
        ckt.resistor(&format!("RLp{k}"), vcc, cp, params.load_r);
        ckt.resistor(&format!("RLn{k}"), vcc, cn, params.load_r);
        // Differential pair: in+ drives the Q whose collector is cp...
        // in+ high steers current into Qa -> cp drops -> out+ (taken from
        // the *other* collector via follower) keeps the stage inverting
        // once per stage.
        ckt.bjt(&format!("Qa{k}"), cp, inp, tail, pair, 1.0);
        ckt.bjt(&format!("Qb{k}"), cn, inn, tail, pair, 1.0);
        ckt.isource(&format!("IT{k}"), tail, Circuit::gnd(), params.tail_current);
        // Emitter followers buffering the collectors to the outputs. The
        // inversion happens here: out+ follows cp (which is the inversion
        // of in+).
        ckt.bjt(&format!("Qfa{k}"), vcc, cp, outp, follower, 1.0);
        ckt.bjt(&format!("Qfb{k}"), vcc, cn, outn, follower, 1.0);
        ckt.resistor(&format!("RFp{k}"), outp, Circuit::gnd(), params.follower_r);
        ckt.resistor(&format!("RFn{k}"), outn, Circuit::gnd(), params.follower_r);
    }

    // Startup kick: a brief current pulse unbalances stage 0 so the
    // transient leaves the metastable symmetric operating point.
    let kick_node = ckt.node("cp0");
    ckt.isource_wave(
        "IKICK",
        kick_node,
        Circuit::gnd(),
        SourceWave::Pulse {
            v1: 0.0,
            v2: 0.5e-3,
            delay: 10e-12,
            rise: 10e-12,
            fall: 10e-12,
            width: 100e-12,
            period: 0.0,
        },
    );

    let probe_p = format!("v(op{})", n - 1);
    let probe_n = format!("v(on{})", n - 1);
    (ckt, probe_p, probe_n)
}

/// One Table 1 row: the shape and its measured free-running frequency.
#[derive(Clone, Debug, PartialEq)]
pub struct RingOscRow {
    /// Diff-pair transistor shape.
    pub shape: TransistorShape,
    /// Measured oscillation result.
    pub measurement: OscMeasurement,
}

/// Simulates the ring oscillator with the given diff-pair model and
/// measures the free-running frequency from the differential output.
///
/// # Errors
///
/// Propagates simulation errors; fails with a measure error when the ring
/// does not oscillate.
pub fn measure_ring_frequency(
    params: &RingOscParams,
    pair_model: &BjtModel,
    follower_model: &BjtModel,
    opts: &Options,
) -> Result<OscMeasurement> {
    let (mut ckt, probe_p, probe_n) = build_ring_oscillator(params, pair_model, follower_model);
    // Differential probe: v(diff) = v(out+) - v(out-), realized with a
    // VCVS into a dummy load so the waveform carries it directly.
    let diff = ckt.node("diff");
    // The probe names come from `build_ring_oscillator`, which interned
    // both nodes in the circuit it returned.
    #[allow(clippy::expect_used)]
    let pp = ckt
        .find_node(&probe_p[2..probe_p.len() - 1])
        .expect("probe node");
    #[allow(clippy::expect_used)]
    let pn = ckt
        .find_node(&probe_n[2..probe_n.len() - 1])
        .expect("probe node");
    ckt.vcvs("Ediff", diff, Circuit::gnd(), pp, pn, 1.0);
    ckt.resistor("Rdiff", diff, Circuit::gnd(), 1e6);
    let sess = Session::compile(&ckt)?.with_options(opts.clone());
    let wave = sess
        .tran(&TranParams::new(params.t_stop, params.dt_max))?
        .into_wave();
    oscillation_frequency(&wave, "v(diff)", 0.4)
}

/// Runs the full Table 1 experiment: for each shape, generate the
/// geometry-aware diff-pair model and measure the ring frequency. The
/// follower device is fixed to the generated `N1.2-12D` card.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn table1_experiment(
    params: &RingOscParams,
    generator: &ModelGenerator,
    shapes: &[TransistorShape],
    opts: &Options,
) -> Result<Vec<RingOscRow>> {
    // Literal shape code, validated by the parser at compile-test time.
    #[allow(clippy::expect_used)]
    let follower = generator.generate(&"N1.2-12D".parse().expect("valid shape"));
    let mut rows = Vec::new();
    for shape in shapes {
        let pair = generator.generate(shape);
        let measurement = measure_ring_frequency(params, &pair, &follower, opts)?;
        rows.push(RingOscRow {
            shape: *shape,
            measurement,
        });
    }
    Ok(rows)
}

/// Predicts the ring frequency from a single-stage step response — the
/// behavioral shortcut a designer uses before committing to a full ring
/// transient: `f = 1 / (2 * N * td)` with `td` the 50 %-crossing stage
/// delay.
///
/// The bench drives one stage (diff pair + followers, as in the ring)
/// with a differential step and measures the delay from the input edge
/// to the output crossing its settled midpoint.
///
/// # Errors
///
/// Propagates simulation errors; fails when the output never crosses.
pub fn predict_from_stage_delay(
    params: &RingOscParams,
    pair_model: &BjtModel,
    follower_model: &BjtModel,
    opts: &Options,
) -> Result<f64> {
    use ahfic_spice::error::SpiceError;
    let mut ckt = Circuit::new();
    let vcc = ckt.node("vcc");
    ckt.vsource("VCC", vcc, Circuit::gnd(), params.vcc);
    let pair = ckt.add_bjt_model(pair_model.clone());
    let follower = ckt.add_bjt_model(follower_model.clone());
    let (inp, inn) = (ckt.node("inp"), ckt.node("inn"));
    let (cp, cn) = (ckt.node("cp"), ckt.node("cn"));
    let (outp, outn) = (ckt.node("outp"), ckt.node("outn"));
    let tail = ckt.node("tail");
    // Input drive: bias levels matching the follower outputs of a
    // previous stage, with a differential swing comparable to the ring's.
    let vmid = params.vcc - 0.2 - 0.8;
    let swing = params.tail_current * params.load_r / 2.0;
    let t_edge = 2e-9;
    ckt.vsource_wave(
        "VINP",
        inp,
        Circuit::gnd(),
        ahfic_spice::wave::SourceWave::Pulse {
            v1: vmid - swing,
            v2: vmid + swing,
            delay: t_edge,
            rise: 20e-12,
            fall: 20e-12,
            width: 1.0,
            period: 0.0,
        },
    );
    ckt.vsource("VINN", inn, Circuit::gnd(), vmid);
    ckt.resistor("RLp", vcc, cp, params.load_r);
    ckt.resistor("RLn", vcc, cn, params.load_r);
    ckt.bjt("Qa", cp, inp, tail, pair, 1.0);
    ckt.bjt("Qb", cn, inn, tail, pair, 1.0);
    ckt.isource("IT", tail, Circuit::gnd(), params.tail_current);
    ckt.bjt("Qfa", vcc, cp, outp, follower, 1.0);
    ckt.bjt("Qfb", vcc, cn, outn, follower, 1.0);
    ckt.resistor("RFp", outp, Circuit::gnd(), params.follower_r);
    ckt.resistor("RFn", outn, Circuit::gnd(), params.follower_r);
    let sess = Session::compile(&ckt)?.with_options(opts.clone());
    let wave = sess
        .tran(&TranParams::new(8e-9, params.dt_max))?
        .into_wave();
    let t = wave.axis();
    let vp = wave.signal("v(outp)")?;
    let vn = wave.signal("v(outn)")?;
    let diff: Vec<f64> = vp.iter().zip(vn.iter()).map(|(a, b)| a - b).collect();
    // Midpoint between initial and final settled differential levels.
    let v0 = diff[t
        .iter()
        .position(|&tt| tt >= t_edge)
        .unwrap_or(0)
        .saturating_sub(1)];
    // A successful transient always produces at least one sample.
    #[allow(clippy::expect_used)]
    let v1 = *diff.last().expect("non-empty");
    let vmid_cross = (v0 + v1) / 2.0;
    for k in 1..diff.len() {
        if t[k] <= t_edge {
            continue;
        }
        let crossed =
            (diff[k - 1] - vmid_cross) * (diff[k] - vmid_cross) <= 0.0 && diff[k] != diff[k - 1];
        if crossed {
            let frac = (vmid_cross - diff[k - 1]) / (diff[k] - diff[k - 1]);
            let t_cross = t[k - 1] + frac * (t[k] - t[k - 1]);
            let td = t_cross - t_edge;
            if td <= 0.0 {
                continue;
            }
            return Ok(1.0 / (2.0 * params.stages as f64 * td));
        }
    }
    Err(SpiceError::Measure(
        "stage output never crossed its midpoint".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahfic_geom::process::ProcessData;
    use ahfic_geom::rules::MaskRules;

    fn quick_params() -> RingOscParams {
        // 3 stages and a short run keep the test fast (opt-level=2).
        RingOscParams {
            stages: 3,
            t_stop: 6e-9,
            dt_max: 4e-12,
            ..RingOscParams::default()
        }
    }

    fn generator() -> ModelGenerator {
        ModelGenerator::new(ProcessData::default(), MaskRules::default())
    }

    #[test]
    fn netlist_has_expected_element_count() {
        let g = generator();
        let m = g.generate(&"N1.2-12D".parse().unwrap());
        let (ckt, _, _) = build_ring_oscillator(&RingOscParams::default(), &m, &m);
        // Per stage: 2 loads + 2 pulldowns + 4 BJTs + 1 tail source = 9,
        // plus VCC and the kick source.
        assert_eq!(ckt.elements().len(), 5 * 9 + 2);
    }

    #[test]
    #[should_panic(expected = "odd stage count")]
    fn even_stage_count_rejected() {
        let g = generator();
        let m = g.generate(&"N1.2-12D".parse().unwrap());
        let p = RingOscParams {
            stages: 4,
            ..RingOscParams::default()
        };
        build_ring_oscillator(&p, &m, &m);
    }

    #[test]
    fn stage_delay_prediction_tracks_measured_ring() {
        let g = generator();
        let pair = g.generate(&"N1.2-12D".parse().unwrap());
        let params = quick_params();
        let opts = Options::default();
        let measured = measure_ring_frequency(&params, &pair, &pair, &opts)
            .unwrap()
            .frequency;
        let predicted = predict_from_stage_delay(&params, &pair, &pair, &opts).unwrap();
        // The first-order delay model is expected to land within ~2x of
        // the nonlinear large-signal ring — it is a pre-design estimate.
        let ratio = predicted / measured;
        assert!(
            (0.4..=2.5).contains(&ratio),
            "predicted {predicted:.3e} vs measured {measured:.3e}"
        );
    }

    #[test]
    fn three_stage_ring_oscillates_in_ghz_band() {
        let g = generator();
        let pair = g.generate(&"N1.2-12D".parse().unwrap());
        let m = measure_ring_frequency(&quick_params(), &pair, &pair, &Options::default())
            .expect("oscillation");
        assert!(
            m.frequency > 0.3e9 && m.frequency < 20e9,
            "f = {:.3e}",
            m.frequency
        );
        assert!(m.amplitude_pp > 0.1, "swing = {}", m.amplitude_pp);
        assert!(m.cycles >= 3);
    }
}
