//! Image-rejection ratio: closed form and behavioral measurement
//! (paper Fig. 5).

use crate::plan::FrequencyPlan;
use crate::tuner::{build_image_rejection_tuner, drive_rf, ImageRejectionErrors, TunerConfig};
use ahfic_ahdl::error::Result;
use ahfic_ahdl::spectrum::tone_power;
use ahfic_ahdl::system::System;
use ahfic_trace::TraceHandle;

/// Closed-form image-rejection ratio (dB) of a Hartley architecture with
/// total quadrature phase error `phase_err_deg` and fractional gain
/// imbalance `gain_err`:
///
/// `IRR = 10 log10( (1 + 2 a cos e + a^2) / (1 - 2 a cos e + a^2) )`,
/// `a = 1 + gain_err`.
///
/// This is the textbook result the AHDL simulation must reproduce.
pub fn irr_analytic_db(phase_err_deg: f64, gain_err: f64) -> f64 {
    let a = 1.0 + gain_err;
    let c = phase_err_deg.to_radians().cos();
    10.0 * ((1.0 + 2.0 * a * c + a * a) / (1.0 - 2.0 * a * c + a * a)).log10()
}

/// One measured point of the Fig. 5 surface.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IrrPoint {
    /// Quadrature phase error (degrees).
    pub phase_err_deg: f64,
    /// Fractional gain imbalance.
    pub gain_err: f64,
    /// Simulated image-rejection ratio (dB).
    pub simulated_db: f64,
    /// Closed-form prediction (dB).
    pub analytic_db: f64,
}

/// Measures the image-rejection ratio of the behavioral Fig. 4 tuner by
/// running it twice — wanted-channel-only, then image-channel-only — and
/// comparing the 45 MHz output tone powers.
///
/// `duration` defaults to 2 µs when `None` (≈ 90 second-IF cycles).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn measure_irr_db(
    plan: &FrequencyPlan,
    cfg: &TunerConfig,
    errors: &ImageRejectionErrors,
    duration: Option<f64>,
) -> Result<f64> {
    measure_irr_db_traced(plan, cfg, errors, duration, &TraceHandle::off())
}

/// [`measure_irr_db`] with telemetry: the behavioral runs (wanted, then
/// image channel) each emit an `ahdl.run` span into `trace`.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn measure_irr_db_traced(
    plan: &FrequencyPlan,
    cfg: &TunerConfig,
    errors: &ImageRejectionErrors,
    duration: Option<f64>,
    trace: &TraceHandle,
) -> Result<f64> {
    let duration = duration.unwrap_or(2e-6);
    let run = |freq: f64| -> Result<f64> {
        let mut sys = System::new();
        sys.set_trace(trace.clone());
        let nets = build_image_rejection_tuner(&mut sys, plan, cfg, errors)?;
        drive_rf(&mut sys, &nets, "RFSRC", freq, 1.0)?;
        // `build_image_rejection_tuner` always registers the if2 net.
        #[allow(clippy::expect_used)]
        let probe = sys.find_net("if2").expect("tuner exposes if2");
        let trace = sys.run_probed(cfg.fs, duration, &[probe])?;
        tone_power(&trace, "if2", plan.f2_if, 0.5)
    };
    let p_wanted = run(plan.rf_wanted)?;
    let p_image = run(plan.rf_image())?;
    Ok(10.0 * (p_wanted / p_image).log10())
}

/// Runs the full Fig. 5 sweep: IRR vs phase error, one series per gain
/// imbalance.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn fig5_sweep(
    plan: &FrequencyPlan,
    cfg: &TunerConfig,
    phase_errors_deg: &[f64],
    gain_errors: &[f64],
    duration: Option<f64>,
) -> Result<Vec<IrrPoint>> {
    let mut out = Vec::with_capacity(phase_errors_deg.len() * gain_errors.len());
    for &g in gain_errors {
        for &p in phase_errors_deg {
            let errors = ImageRejectionErrors {
                lo_phase_err_deg: p,
                gain_err: g,
                shifter_phase_err_deg: 0.0,
            };
            let simulated_db = measure_irr_db(plan, cfg, &errors, duration)?;
            out.push(IrrPoint {
                phase_err_deg: p,
                gain_err: g,
                simulated_db,
                analytic_db: irr_analytic_db(p, g),
            });
        }
    }
    Ok(out)
}

/// Inverts Fig. 5 the way a designer does (paper §2.2): given a required
/// IRR, returns the maximum tolerable phase error (degrees) for a given
/// gain imbalance, from the closed form. `None` when the gain imbalance
/// alone already violates the requirement.
pub fn max_phase_error_for_irr(required_irr_db: f64, gain_err: f64) -> Option<f64> {
    // Solve IRR(e) = required for cos(e).
    let a = 1.0 + gain_err;
    let r = 10f64.powf(required_irr_db / 10.0);
    // (1+a^2)(r-1)/(r+1) = 2 a cos e
    let c = (1.0 + a * a) * (r - 1.0) / ((r + 1.0) * 2.0 * a);
    if c >= 1.0 {
        return None; // even zero phase error cannot reach the IRR
    }
    Some(c.max(-1.0).acos().to_degrees())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_formula_limits() {
        // Perfect balance -> infinite rejection.
        assert!(irr_analytic_db(0.0, 0.0).is_infinite());
        // 1 deg / 0 %: classic ~41 dB.
        let v = irr_analytic_db(1.0, 0.0);
        assert!((v - 41.19).abs() < 0.1, "v = {v}");
        // 0 deg / 1 %: ~46 dB.
        let v = irr_analytic_db(0.0, 0.01);
        assert!((v - 46.0).abs() < 0.3, "v = {v}");
        // Monotonic degradation with phase error.
        assert!(irr_analytic_db(2.0, 0.01) < irr_analytic_db(0.5, 0.01));
    }

    #[test]
    fn inversion_round_trips() {
        for g in [0.01, 0.05, 0.09] {
            for req in [20.0, 25.0, 30.0] {
                if let Some(e) = max_phase_error_for_irr(req, g) {
                    let back = irr_analytic_db(e, g);
                    assert!((back - req).abs() < 1e-6, "g={g} req={req}: {back}");
                }
            }
        }
    }

    #[test]
    fn inversion_detects_infeasible_gain() {
        // 9 % imbalance caps IRR at ~27 dB; 35 dB is unreachable.
        assert!(max_phase_error_for_irr(35.0, 0.09).is_none());
        assert!(max_phase_error_for_irr(20.0, 0.09).is_some());
    }

    #[test]
    fn simulated_irr_matches_analytic_at_spot_points() {
        let plan = FrequencyPlan::catv(500e6);
        let cfg = TunerConfig::for_plan(&plan);
        for (p, g) in [(2.0, 0.01), (5.0, 0.05)] {
            let errors = ImageRejectionErrors {
                lo_phase_err_deg: p,
                gain_err: g,
                shifter_phase_err_deg: 0.0,
            };
            let sim = measure_irr_db(&plan, &cfg, &errors, Some(1.5e-6)).unwrap();
            let ana = irr_analytic_db(p, g);
            assert!(
                (sim - ana).abs() < 0.6,
                "phase {p} gain {g}: sim {sim:.2} vs analytic {ana:.2}"
            );
        }
    }
}
