//! Fig. 3 reproduction: the frequency spectrum at each node of the
//! double-super tuner with both the wanted channel and the image applied.

use crate::plan::FrequencyPlan;
use crate::tuner::{build_conventional_tuner, TunerConfig, TunerNets};
use ahfic_ahdl::blocks::arith::Adder;
use ahfic_ahdl::blocks::osc::SineSource;
use ahfic_ahdl::error::Result;
use ahfic_ahdl::probe::Trace;
use ahfic_ahdl::spectrum::{peaks, spectrum};
use ahfic_ahdl::system::System;
use ahfic_num::window::Window;

/// The spectral peaks observed at one tuner node.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeSpectrum {
    /// Node (net) name.
    pub node: String,
    /// `(frequency_hz, amplitude)` peaks, strongest first.
    pub peaks: Vec<(f64, f64)>,
}

/// Result of the Fig. 3 scan.
#[derive(Clone, Debug, PartialEq)]
pub struct SpectrumScan {
    /// The plan that was exercised.
    pub plan: FrequencyPlan,
    /// Spectra at `rf_in`, `if1` and `if2`.
    pub nodes: Vec<NodeSpectrum>,
}

/// Drives the conventional tuner with wanted + image tones and returns
/// the dominant peaks at every stage, demonstrating that both channels
/// fold onto the same 45 MHz second IF (the image problem).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn scan_conventional_tuner(
    plan: &FrequencyPlan,
    cfg: &TunerConfig,
    image_ampl: f64,
) -> Result<SpectrumScan> {
    let mut sys = System::new();
    // Build the tuner against a private summing node for the RF input.
    let nets = build_conventional_tuner(&mut sys, plan, cfg)?;
    inject_two_tone(&mut sys, &nets, plan, 1.0, image_ampl)?;
    let trace = sys.run(cfg.fs, 2e-6)?;
    let mut nodes = Vec::new();
    for node in ["rf_in", "if1", "if2"] {
        nodes.push(NodeSpectrum {
            node: node.to_string(),
            peaks: node_peaks(&trace, node)?,
        });
    }
    Ok(SpectrumScan { plan: *plan, nodes })
}

/// Sums a wanted tone and an image tone into the tuner's RF input.
///
/// # Errors
///
/// Propagates wiring errors.
pub fn inject_two_tone(
    sys: &mut System,
    nets: &TunerNets,
    plan: &FrequencyPlan,
    wanted_ampl: f64,
    image_ampl: f64,
) -> Result<()> {
    let w = sys.net("rf_wanted_tone");
    let i = sys.net("rf_image_tone");
    sys.add(
        "RF1",
        SineSource::new(plan.rf_wanted, wanted_ampl),
        &[],
        &[w],
    )?;
    sys.add(
        "RF2",
        SineSource::new(plan.rf_image(), image_ampl),
        &[],
        &[i],
    )?;
    sys.add("RFSUM", Adder::new(2), &[w, i], &[nets.rf_in])?;
    Ok(())
}

fn node_peaks(trace: &Trace, node: &str) -> Result<Vec<(f64, f64)>> {
    let (freqs, amps) = spectrum(trace, node, Window::Blackman)?;
    let max = amps.iter().cloned().fold(0.0f64, f64::max);
    let mut p = peaks(&freqs, &amps, max * 0.05);
    p.truncate(8);
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_shows_image_folding() {
        let plan = FrequencyPlan::catv(500e6);
        let cfg = TunerConfig::for_plan(&plan);
        // Unequal amplitudes: with equal tones the two folded 45 MHz
        // phasors arrive in antiphase (the BPF edge phases are
        // anti-symmetric) and can cancel, hiding the fold.
        let scan = scan_conventional_tuner(&plan, &cfg, 0.5).unwrap();
        assert_eq!(scan.nodes.len(), 3);

        // RF input: peaks at the wanted and image channels.
        let rf = &scan.nodes[0];
        let has = |peaks: &[(f64, f64)], f: f64, tol: f64| {
            peaks.iter().any(|&(pf, _)| (pf - f).abs() < tol)
        };
        assert!(has(&rf.peaks, plan.rf_wanted, 20e6), "{:?}", rf.peaks);
        assert!(has(&rf.peaks, plan.rf_image(), 20e6));

        // 1st IF: both up-converted tones 90 MHz apart.
        let if1 = &scan.nodes[1];
        assert!(has(&if1.peaks, plan.f1_if, 30e6), "{:?}", if1.peaks);
        assert!(has(&if1.peaks, plan.if1_image(), 30e6));

        // 2nd IF: a single 45 MHz peak where BOTH channels landed — the
        // image problem of Fig. 3.
        let if2 = &scan.nodes[2];
        assert!(has(&if2.peaks, plan.f2_if, 20e6), "{:?}", if2.peaks);
        // Its amplitude is roughly the sum of two equal conversions.
        let a45 = if2
            .peaks
            .iter()
            .find(|&&(pf, _)| (pf - plan.f2_if).abs() < 20e6)
            .unwrap()
            .1;
        // Worst case (destructive fold) still leaves ~0.1 of amplitude.
        assert!(a45 > 0.08, "folded amplitude {a45}");
    }
}
