//! Transistor-level image-rejection (Hartley) mixer — the Fig. 5
//! experiment repeated on the SPICE engine instead of the behavioral
//! AHDL blocks.
//!
//! The bench is the classic two-path architecture: one RF input couples
//! into two identical single-BJT mixers whose emitters are pumped by
//! quadrature LOs (the Q arm's LO leads by `90° + phase_error`). Each
//! collector drives a first-order IF network with its corner at the IF
//! — an RC lowpass (−45° at `f_IF`) on the I arm, a CR highpass (+45°)
//! on the Q arm — and the two arms sum resistively. For an input above
//! the LO the arm phases align and add; for the image below the LO they
//! end up 180° apart and cancel. Phase or gain imbalance leaves an
//! image residue, exactly the mechanism the behavioral model in
//! [`crate::image_rejection`] quantifies with
//! [`irr_analytic_db`](crate::image_rejection::irr_analytic_db).
//!
//! Conversion gain through the pumped BJTs is measured with the
//! periodic small-signal machinery
//! ([`Session::pac`](ahfic_spice::analysis::Session::pac)): a shooting
//! PSS solves the LO-only orbit, then a difference transient extracts
//! the output phasor at the IF for an input at the RF and at the image.
//! The image-rejection ratio is the magnitude ratio of those two
//! conversion gains.

use ahfic_spice::analysis::{Options, PacParams, PssParams, Session};
use ahfic_spice::circuit::Circuit;
use ahfic_spice::error::Result;
use ahfic_spice::model::BjtModel;
use ahfic_spice::wave::SourceWave;

/// Electrical parameters of the transistor-level Hartley mixer bench.
#[derive(Clone, Debug, PartialEq)]
pub struct HartleyMixerParams {
    /// LO frequency (Hz). The paper's Fig. 5 mixer downconverts with
    /// the second LO of the double-super plan; the default bench scales
    /// to 10 MHz so a PSS period holds a convenient step count.
    pub f_lo: f64,
    /// IF (Hz); the RF input sits at `f_lo + f_if`, the image at
    /// `f_lo − f_if`.
    pub f_if: f64,
    /// Deliberate LO quadrature error (degrees) added to the Q arm.
    pub phase_error_deg: f64,
    /// Deliberate relative gain error: the Q-arm collector load is
    /// scaled by `1 + gain_error`.
    pub gain_error: f64,
    /// Supply voltage (V).
    pub vcc: f64,
    /// LO drive amplitude (V) at the emitters.
    pub lo_ampl: f64,
    /// LO drive DC offset (V) at the emitters; together with the 1.5 V
    /// base bias this sets the peak forward V_BE.
    pub lo_offset: f64,
    /// Collector load resistance (ohm).
    pub load_r: f64,
    /// IF filter resistance (ohm); the filter capacitor is derived so
    /// the corner lands exactly on `f_if`.
    pub filter_r: f64,
    /// RF input tone amplitude (V) for the PAC measurement; keep it
    /// well below V_T so the conversion stays linear.
    pub rf_ampl: f64,
}

impl Default for HartleyMixerParams {
    fn default() -> Self {
        HartleyMixerParams {
            f_lo: 10e6,
            f_if: 1e6,
            phase_error_deg: 0.0,
            gain_error: 0.0,
            vcc: 5.0,
            lo_ampl: 0.15,
            lo_offset: 0.85,
            load_r: 1e3,
            filter_r: 1e3,
            rf_ampl: 1e-3,
        }
    }
}

impl HartleyMixerParams {
    /// Sets the deliberate LO quadrature error (chainable).
    pub fn phase_error_deg(mut self, deg: f64) -> Self {
        self.phase_error_deg = deg;
        self
    }

    /// Sets the deliberate arm gain error (chainable).
    pub fn gain_error(mut self, g: f64) -> Self {
        self.gain_error = g;
        self
    }
}

/// Builds the two-path mixer netlist. Returns the circuit, the RF
/// source name (`"VRF"`), and the summed IF output signal (`"v(ifout)"`).
///
/// Arm topology (identical by construction except the LO phase and the
/// optional gain-error scaling):
///
/// ```text
/// VRF ──10k──┬── base ──┤ BJT ├── collector ── IF filter ──100k──┐
///            bias 7k/3k   emitter = LO source            sum: 100k load
/// ```
///
/// The IF networks present the same impedance to their collectors at
/// every frequency (series `R + 1/jωC` in one order or the other), so
/// arm loading cannot masquerade as gain error.
pub fn build_hartley_mixer(params: &HartleyMixerParams) -> (Circuit, String, String) {
    let mut ckt = Circuit::new();
    let vcc = ckt.node("vcc");
    ckt.vsource("VCC", vcc, Circuit::gnd(), params.vcc);

    // RF input, zero until the PAC analysis drives it.
    let rf = ckt.node("rf");
    ckt.vsource_wave("VRF", rf, Circuit::gnd(), SourceWave::Dc(0.0));

    let model = ckt.add_bjt_model(BjtModel::default());
    let c_if = 1.0 / (2.0 * std::f64::consts::PI * params.f_if * params.filter_r);
    let out = ckt.node("ifout");

    for (arm, phase, load_scale) in [
        ("i", 0.0, 1.0),
        ("q", 90.0 + params.phase_error_deg, 1.0 + params.gain_error),
    ] {
        let base = ckt.node(&format!("b{arm}"));
        let emit = ckt.node(&format!("e{arm}"));
        let coll = ckt.node(&format!("c{arm}"));
        let filt = ckt.node(&format!("f{arm}"));
        // RF coupling and stiff base bias (~1.5 V).
        ckt.resistor(&format!("RC{arm}"), rf, base, 10e3);
        ckt.resistor(&format!("RB1{arm}"), vcc, base, 7e3);
        ckt.resistor(&format!("RB2{arm}"), base, Circuit::gnd(), 3e3);
        // LO pump straight into the emitter: the BJT conducts in pulses
        // around the LO troughs, and the exponential V_BE law does the
        // mixing.
        ckt.vsource_wave(
            &format!("VLO{arm}"),
            emit,
            Circuit::gnd(),
            SourceWave::Sin {
                offset: params.lo_offset,
                ampl: params.lo_ampl,
                freq: params.f_lo,
                delay: 0.0,
                damping: 0.0,
                phase_deg: phase,
            },
        );
        ckt.bjt(&format!("Q{arm}"), coll, base, emit, model, 1.0);
        ckt.resistor(&format!("RL{arm}"), vcc, coll, params.load_r * load_scale);
        // IF networks with the corner at f_IF: RC lowpass (−45°) on the
        // I arm, CR highpass (+45°) on the Q arm.
        if arm == "i" {
            ckt.resistor(&format!("RF{arm}"), coll, filt, params.filter_r);
            ckt.capacitor(&format!("CF{arm}"), filt, Circuit::gnd(), c_if);
        } else {
            ckt.capacitor(&format!("CF{arm}"), coll, filt, c_if);
            ckt.resistor(&format!("RF{arm}"), filt, Circuit::gnd(), params.filter_r);
        }
        ckt.resistor(&format!("RS{arm}"), filt, out, 100e3);
    }
    ckt.resistor("RLOAD", out, Circuit::gnd(), 100e3);

    (ckt, "VRF".to_string(), "v(ifout)".to_string())
}

/// Transistor-level image-rejection measurement.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub struct TransistorIrr {
    /// Image-rejection ratio (dB): wanted-sideband conversion gain over
    /// image conversion gain.
    pub irr_db: f64,
    /// Conversion gain (dB) from the RF input at `f_lo + f_if` to the
    /// IF output.
    pub gain_rf_db: f64,
    /// Conversion gain (dB) from the image input at `f_lo − f_if` to
    /// the IF output.
    pub gain_image_db: f64,
}

/// Measures the mixer's image-rejection ratio on the transistor-level
/// simulator: one LO-only shooting PSS per input frequency, then the
/// PAC difference transient extracts the IF phasor for an input at
/// `f_lo + f_if` (wanted) and `f_lo − f_if` (image).
///
/// The measurement window is chosen automatically as the smallest LO
/// period multiple in which the LO, IF, RF and image tones all complete
/// integer cycle counts, so the Fourier projections are leakage-free.
///
/// # Errors
///
/// Propagates PSS/PAC failures —
/// [`BadAnalysis`](ahfic_spice::error::SpiceError::BadAnalysis) for an
/// infeasible frequency plan, solver errors for a bench that does not
/// converge.
pub fn measure_irr_transistor_db(
    params: &HartleyMixerParams,
    opts: &Options,
) -> Result<TransistorIrr> {
    let (ckt, rf_source, output) = build_hartley_mixer(params);
    let mut sess = Session::compile(&ckt)?.with_options(opts.clone());

    let period = 1.0 / params.f_lo;
    let pss = PssParams::new(period, 200);
    let measure = commensurate_periods(params.f_lo, params.f_if);
    let pac_for = |freq_in: f64| {
        PacParams::new(&rf_source, &output, params.rf_ampl, freq_in, params.f_if)
            .measure_periods(measure)
            .settle_periods(20)
    };

    let wanted = sess.pac(&pss, &pac_for(params.f_lo + params.f_if))?;
    let image = sess.pac(&pss, &pac_for(params.f_lo - params.f_if))?;
    Ok(TransistorIrr {
        irr_db: wanted.gain_db() - image.gain_db(),
        gain_rf_db: wanted.gain_db(),
        gain_image_db: image.gain_db(),
    })
}

/// Smallest number of LO periods in which the IF (and therefore the RF
/// at `f_lo + f_if` and the image at `f_lo − f_if`) completes an
/// integer number of cycles, then doubled once for a longer averaging
/// window. Falls back to 20 periods when the ratio is irrational
/// within 1 ppm.
fn commensurate_periods(f_lo: f64, f_if: f64) -> usize {
    let ratio = f_if / f_lo;
    for k in 1..=1000usize {
        let cycles = ratio * k as f64;
        if (cycles - cycles.round()).abs() < 1e-6 * cycles.max(1.0) && cycles >= 0.5 {
            return 2 * k;
        }
    }
    20
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image_rejection::irr_analytic_db;

    #[test]
    fn window_selection_covers_integer_cycles() {
        // f_if/f_lo = 1/10 -> 10 periods minimum, doubled to 20.
        assert_eq!(commensurate_periods(10e6, 1e6), 20);
        // 1/4 -> 4, doubled to 8.
        assert_eq!(commensurate_periods(10e6, 2.5e6), 8);
    }

    #[test]
    fn ten_degree_error_matches_the_analytic_curve() {
        let params = HartleyMixerParams::default().phase_error_deg(10.0);
        let r = measure_irr_transistor_db(&params, &Options::new()).unwrap();
        let analytic = irr_analytic_db(10.0, 0.0);
        assert!(
            (r.irr_db - analytic).abs() < 3.0,
            "transistor {:.2} dB vs analytic {:.2} dB ({r:?})",
            r.irr_db,
            analytic
        );
        // A real mixer still has healthy wanted-sideband gain.
        assert!(r.gain_rf_db > r.gain_image_db);
    }
}
