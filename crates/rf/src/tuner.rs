//! Behavioral double-super tuner builders (paper Figs. 2 and 4).
//!
//! Both tuners are assembled from `ahfic-ahdl` blocks into a
//! [`System`]; the RF input is injected by the caller as a net driven by
//! sine sources, so wanted-only / image-only experiments just swap the
//! sources.

use crate::plan::FrequencyPlan;
use ahfic_ahdl::blocks::arith::{Adder, Mixer};
use ahfic_ahdl::blocks::filter::FilterChain;
use ahfic_ahdl::blocks::osc::{QuadratureLo, SineSource};
use ahfic_ahdl::blocks::phase::ImpairedShifter90;
use ahfic_ahdl::error::Result;
use ahfic_ahdl::system::{NetId, System};

/// Configuration of the behavioral tuner chain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TunerConfig {
    /// Sample rate of the behavioral simulation (Hz).
    pub fs: f64,
    /// First-IF band-pass: number of cascaded sections.
    pub bpf_sections: usize,
    /// First-IF band-pass bandwidth (Hz). Centered between the wanted and
    /// image first-IF tones so both experience equal gain.
    pub bpf_bandwidth: f64,
    /// LO amplitudes.
    pub lo_ampl: f64,
    /// Mixer conversion gain.
    pub mixer_gain: f64,
}

impl TunerConfig {
    /// Defaults sized for the CATV plan.
    pub fn for_plan(plan: &FrequencyPlan) -> Self {
        TunerConfig {
            fs: plan.recommended_fs(),
            bpf_sections: 2,
            bpf_bandwidth: 400e6,
            lo_ampl: 1.0,
            mixer_gain: 1.0,
        }
    }
}

/// Nets exposed by a built tuner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TunerNets {
    /// RF input (drive this with your sources).
    pub rf_in: NetId,
    /// First IF after the band-pass filter.
    pub if1: NetId,
    /// Second IF output.
    pub if2: NetId,
}

/// Builds the **conventional** double-super tuner of Fig. 2:
/// `rf_in -> mixer(Fup) -> BPF(1st IF) -> mixer(Fdown) -> if2`.
///
/// # Errors
///
/// Propagates wiring errors (only possible if net names collide with
/// caller-created blocks).
pub fn build_conventional_tuner(
    sys: &mut System,
    plan: &FrequencyPlan,
    cfg: &TunerConfig,
) -> Result<TunerNets> {
    let rf_in = sys.net("rf_in");
    let lo1 = sys.net("lo1");
    let if1_raw = sys.net("if1_raw");
    let if1 = sys.net("if1");
    let lo2 = sys.net("lo2");
    let if2 = sys.net("if2");

    sys.add(
        "LO1",
        SineSource::new(plan.f_up(), cfg.lo_ampl),
        &[],
        &[lo1],
    )?;
    sys.add(
        "MIX1",
        Mixer::new(cfg.mixer_gain),
        &[rf_in, lo1],
        &[if1_raw],
    )?;
    // Center between wanted (1.3 GHz) and image (1.39 GHz) first IFs so
    // the filter treats both identically.
    let center = (plan.f1_if + plan.if1_image()) / 2.0;
    sys.add(
        "BPF1",
        FilterChain::bandpass(center, cfg.bpf_bandwidth, cfg.bpf_sections, cfg.fs),
        &[if1_raw],
        &[if1],
    )?;
    sys.add(
        "LO2",
        SineSource::new(plan.f_down(), cfg.lo_ampl),
        &[],
        &[lo2],
    )?;
    sys.add("MIX2", Mixer::new(cfg.mixer_gain), &[if1, lo2], &[if2])?;
    Ok(TunerNets { rf_in, if1, if2 })
}

/// Impairments of the image-rejection path (the Fig. 5 sweep knobs).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ImageRejectionErrors {
    /// Quadrature phase error of the second LO (degrees).
    pub lo_phase_err_deg: f64,
    /// Fractional gain imbalance between the I and Q paths.
    pub gain_err: f64,
    /// Phase error of the second-IF 90° shifter (degrees).
    pub shifter_phase_err_deg: f64,
}

/// Builds the **image-rejection** double-super tuner of Fig. 4: the first
/// IF is split, down-converted by a quadrature LO, one arm is shifted a
/// further 90° at the second IF, and the arms are summed — image phasors
/// cancel, wanted phasors add.
///
/// # Errors
///
/// Propagates wiring errors.
pub fn build_image_rejection_tuner(
    sys: &mut System,
    plan: &FrequencyPlan,
    cfg: &TunerConfig,
    errors: &ImageRejectionErrors,
) -> Result<TunerNets> {
    let rf_in = sys.net("rf_in");
    let lo1 = sys.net("lo1");
    let if1_raw = sys.net("if1_raw");
    let if1 = sys.net("if1");
    let lo2_i = sys.net("lo2_i");
    let lo2_q = sys.net("lo2_q");
    let arm_i = sys.net("arm_i");
    let arm_q = sys.net("arm_q");
    let arm_i_shift = sys.net("arm_i_shift");
    let if2 = sys.net("if2");

    sys.add(
        "LO1",
        SineSource::new(plan.f_up(), cfg.lo_ampl),
        &[],
        &[lo1],
    )?;
    sys.add(
        "MIX1",
        Mixer::new(cfg.mixer_gain),
        &[rf_in, lo1],
        &[if1_raw],
    )?;
    let center = (plan.f1_if + plan.if1_image()) / 2.0;
    sys.add(
        "BPF1",
        FilterChain::bandpass(center, cfg.bpf_bandwidth, cfg.bpf_sections, cfg.fs),
        &[if1_raw],
        &[if1],
    )?;
    sys.add(
        "LO2",
        QuadratureLo::new(plan.f_down(), cfg.lo_ampl)
            .with_errors(errors.gain_err, errors.lo_phase_err_deg),
        &[],
        &[lo2_i, lo2_q],
    )?;
    sys.add("MIX2I", Mixer::new(cfg.mixer_gain), &[if1, lo2_i], &[arm_i])?;
    sys.add("MIX2Q", Mixer::new(cfg.mixer_gain), &[if1, lo2_q], &[arm_q])?;
    sys.add(
        "PS90",
        ImpairedShifter90::new(plan.f2_if, cfg.fs, errors.shifter_phase_err_deg, 0.0),
        &[arm_i],
        &[arm_i_shift],
    )?;
    sys.add("SUM", Adder::new(2), &[arm_i_shift, arm_q], &[if2])?;
    Ok(TunerNets { rf_in, if1, if2 })
}

/// Drives `rf_in` with a single tone source named `name`.
///
/// # Errors
///
/// Propagates wiring errors (duplicate source name).
pub fn drive_rf(
    sys: &mut System,
    nets: &TunerNets,
    name: &str,
    freq: f64,
    ampl: f64,
) -> Result<()> {
    // rf_in may already carry a source: sum through a private net.
    sys.add(name, SineSource::new(freq, ampl), &[], &[nets.rf_in])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahfic_ahdl::spectrum::tone_power;

    fn plan() -> FrequencyPlan {
        FrequencyPlan::catv(500e6)
    }

    #[test]
    fn conventional_tuner_converts_wanted_channel() {
        let plan = plan();
        let cfg = TunerConfig::for_plan(&plan);
        let mut sys = System::new();
        let nets = build_conventional_tuner(&mut sys, &plan, &cfg).unwrap();
        drive_rf(&mut sys, &nets, "RF1", plan.rf_wanted, 1.0).unwrap();
        let trace = sys.run(cfg.fs, 2e-6).unwrap();
        // Expected chain gain: mixer 1/2 (sum product) * ~1 (BPF) * 1/2.
        let p = tone_power(&trace, "if2", plan.f2_if, 0.5).unwrap();
        // Chain gain 1/2 * |BPF(1.3G)| * 1/2 with |BPF| ~ 0.93.
        let expect = (0.25f64).powi(2) / 2.0;
        assert!(
            (p / expect - 1.0).abs() < 0.25,
            "p = {p:.4e}, expect {expect:.4e}"
        );
    }

    #[test]
    fn conventional_tuner_cannot_reject_image() {
        let plan = plan();
        let cfg = TunerConfig::for_plan(&plan);
        let mut sys = System::new();
        let nets = build_conventional_tuner(&mut sys, &plan, &cfg).unwrap();
        drive_rf(&mut sys, &nets, "RF2", plan.rf_image(), 1.0).unwrap();
        let trace = sys.run(cfg.fs, 2e-6).unwrap();
        let p_img = tone_power(&trace, "if2", plan.f2_if, 0.5).unwrap();
        // The image converts with essentially full gain.
        let expect = (0.25f64).powi(2) / 2.0;
        assert!(p_img > 0.5 * expect, "image power {p_img:.3e}");
    }

    #[test]
    fn ideal_image_rejection_tuner_cancels_image() {
        let plan = plan();
        let cfg = TunerConfig::for_plan(&plan);
        // Wanted run.
        let mut sys = System::new();
        let nets =
            build_image_rejection_tuner(&mut sys, &plan, &cfg, &ImageRejectionErrors::default())
                .unwrap();
        drive_rf(&mut sys, &nets, "RF1", plan.rf_wanted, 1.0).unwrap();
        let p_wanted = tone_power(&sys.run(cfg.fs, 2e-6).unwrap(), "if2", plan.f2_if, 0.5).unwrap();
        // Image run.
        let mut sys = System::new();
        let nets =
            build_image_rejection_tuner(&mut sys, &plan, &cfg, &ImageRejectionErrors::default())
                .unwrap();
        drive_rf(&mut sys, &nets, "RF2", plan.rf_image(), 1.0).unwrap();
        let p_image = tone_power(&sys.run(cfg.fs, 2e-6).unwrap(), "if2", plan.f2_if, 0.5).unwrap();
        let irr_db = 10.0 * (p_wanted / p_image).log10();
        assert!(irr_db > 45.0, "ideal IRR only {irr_db:.1} dB");
    }
}
