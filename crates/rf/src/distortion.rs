//! Distortion measurements — the first of the paper's three CATV tuner
//! concerns ("distortion, noise and image signal", §2.2).
//!
//! Behavioral two-tone intermodulation testing: drive a nonlinear stage
//! with two closely spaced tones and measure the third-order products at
//! `2*f1 - f2` and `2*f2 - f1`, from which the input-referred intercept
//! (IIP3) follows.

use ahfic_ahdl::blocks::arith::Adder;
use ahfic_ahdl::blocks::nonlin::Polynomial;
use ahfic_ahdl::blocks::osc::SineSource;
use ahfic_ahdl::error::Result;
use ahfic_ahdl::spectrum::tone_power;
use ahfic_ahdl::system::System;

/// Result of a two-tone test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TwoToneResult {
    /// Per-tone input amplitude used.
    pub input_amplitude: f64,
    /// Fundamental output amplitude (at `f1`).
    pub fundamental: f64,
    /// Worst third-order product amplitude.
    pub im3: f64,
    /// Carrier-to-intermod ratio in dB.
    pub im3_dbc: f64,
    /// Input-referred third-order intercept amplitude extrapolated from
    /// this measurement (amplitude units, not dBm).
    pub iip3_amplitude: f64,
}

/// Runs a two-tone test on a cubic-polynomial stage.
///
/// `f1`/`f2` are the tone frequencies, `a_in` the per-tone amplitude.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn two_tone_test(
    stage: Polynomial,
    f1: f64,
    f2: f64,
    a_in: f64,
    fs: f64,
    duration: f64,
) -> Result<TwoToneResult> {
    let mut sys = System::new();
    let t1 = sys.net("t1");
    let t2 = sys.net("t2");
    let input = sys.net("in");
    let out = sys.net("out");
    sys.add("T1", SineSource::new(f1, a_in), &[], &[t1])?;
    sys.add("T2", SineSource::new(f2, a_in), &[], &[t2])?;
    sys.add("SUM", Adder::new(2), &[t1, t2], &[input])?;
    sys.add("DUT", stage, &[input], &[out])?;
    // Registered by the `sys.add("DUT", ...)` call just above.
    #[allow(clippy::expect_used)]
    let probe = sys.find_net("out").expect("net exists");
    let trace = sys.run_probed(fs, duration, &[probe])?;

    let fundamental = tone_power(&trace, "out", f1, 0.8)?.sqrt() * 2f64.sqrt();
    let im3_lo = tone_power(&trace, "out", 2.0 * f1 - f2, 0.8)?.sqrt() * 2f64.sqrt();
    let im3_hi = tone_power(&trace, "out", 2.0 * f2 - f1, 0.8)?.sqrt() * 2f64.sqrt();
    let im3 = im3_lo.max(im3_hi);
    let im3_dbc = 20.0 * (fundamental / im3.max(1e-300)).log10();
    // IM3 grows 3 dB per input dB faster than the fundamental: the
    // intercept sits half the dBc ratio above the drive level.
    let iip3_amplitude = a_in * 10f64.powf(im3_dbc / 40.0);
    Ok(TwoToneResult {
        input_amplitude: a_in,
        fundamental,
        im3,
        im3_dbc,
        iip3_amplitude,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage() -> Polynomial {
        // IIP3 amplitude = sqrt(4/3 * a1/|a3|) = sqrt(4/3 * 100) ~ 11.55
        Polynomial::new(1.0, 0.0, -0.01)
    }

    #[test]
    fn im3_products_appear_at_expected_level() {
        // Closed form: IM3 amplitude = (3/4)|a3| a^3 for per-tone drive a.
        let a = 0.5;
        let r = two_tone_test(stage(), 1.00e6, 1.10e6, a, 64e6, 400e-6).unwrap();
        let expect_im3 = 0.75 * 0.01 * a * a * a;
        assert!(
            (r.im3 - expect_im3).abs() / expect_im3 < 0.05,
            "im3 {:.4e} vs {:.4e}",
            r.im3,
            expect_im3
        );
        assert!(
            (r.fundamental - a).abs() / a < 0.02,
            "fund {}",
            r.fundamental
        );
    }

    #[test]
    fn extrapolated_iip3_matches_polynomial_formula() {
        let r = two_tone_test(stage(), 1.00e6, 1.10e6, 0.4, 64e6, 400e-6).unwrap();
        let analytic = stage().iip3_amplitude();
        assert!(
            (r.iip3_amplitude - analytic).abs() / analytic < 0.05,
            "iip3 {:.3} vs {:.3}",
            r.iip3_amplitude,
            analytic
        );
    }

    #[test]
    fn im3_grows_three_db_per_db() {
        let r1 = two_tone_test(stage(), 1.00e6, 1.10e6, 0.2, 64e6, 400e-6).unwrap();
        let r2 = two_tone_test(stage(), 1.00e6, 1.10e6, 0.4, 64e6, 400e-6).unwrap();
        let growth_db = 20.0 * (r2.im3 / r1.im3).log10();
        assert!(
            (growth_db - 18.06).abs() < 0.5,
            "IM3 grew {growth_db} dB for 6.02 dB of drive"
        );
    }

    #[test]
    fn linear_stage_has_vanishing_im3() {
        let r = two_tone_test(
            Polynomial::new(2.0, 0.0, 0.0),
            1.00e6,
            1.10e6,
            0.5,
            64e6,
            200e-6,
        )
        .unwrap();
        assert!(r.im3 < 1e-10, "im3 {}", r.im3);
        assert!(r.iip3_amplitude > 1e3);
    }
}
