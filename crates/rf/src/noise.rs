//! Noise measurements — the second of the paper's tuner concerns.
//!
//! Behavioral noise-figure testing: a tone plus calibrated white noise
//! drives a stage; SNR is measured at input and output (tone power vs
//! integrated noise density in a bandwidth), and the noise figure is the
//! SNR degradation.

use ahfic_ahdl::block::Block;
use ahfic_ahdl::blocks::arith::Adder;
use ahfic_ahdl::blocks::noise::GaussianNoise;
use ahfic_ahdl::blocks::osc::SineSource;
use ahfic_ahdl::error::Result;
use ahfic_ahdl::probe::Trace;
use ahfic_ahdl::spectrum::tone_power;
use ahfic_num::goertzel::tone_amplitude;

/// Signal-to-noise ratio of `net`: tone power at `f0` against the noise
/// power in `bandwidth` around it (tone bins excluded by measuring the
/// density away from the carrier).
///
/// # Errors
///
/// Propagates missing-signal errors.
pub fn snr_db(trace: &Trace, net: &str, f0: f64, bandwidth: f64) -> Result<f64> {
    let y = trace.tail(net, 0.8)?;
    let fs = trace.fs();
    let p_tone = tone_power(trace, net, f0, 0.8)?;
    // Noise estimate: reconstruct the carrier from its complex amplitude
    // and subtract it, so the full residual power is noise (leakage-free
    // even off the bin grid). Assume white noise and scale the total
    // residual power to the requested bandwidth.
    let a = tone_amplitude(y, fs, f0);
    let ampl = a.abs();
    let phase = a.arg() + std::f64::consts::FRAC_PI_2;
    let w = 2.0 * std::f64::consts::PI * f0 / fs;
    let mut p_resid = 0.0;
    for (k, &v) in y.iter().enumerate() {
        let tone = ampl * (w * k as f64 + phase).sin();
        let r = v - tone;
        p_resid += r * r;
    }
    p_resid /= y.len() as f64;
    let p_noise = p_resid * (bandwidth / (fs / 2.0)).min(1.0);
    Ok(10.0 * (p_tone / p_noise.max(1e-300)).log10())
}

/// Result of a noise-figure measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseFigureResult {
    /// SNR at the stage input (dB).
    pub snr_in_db: f64,
    /// SNR at the stage output (dB).
    pub snr_out_db: f64,
    /// Noise figure (dB): `SNR_in - SNR_out`.
    pub nf_db: f64,
}

/// Measures the noise figure of a behavioral stage: a tone plus source
/// noise drives it, and the stage may add its own noise internally
/// (model it as an input-referred noise generator summed by the caller).
///
/// `added_noise_rms` is the stage's input-referred noise contribution;
/// `0.0` gives a noiseless stage (NF ≈ 0 dB).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn measure_noise_figure(
    stage: impl Block + 'static,
    added_noise_rms: f64,
    f0: f64,
    source_noise_rms: f64,
    fs: f64,
    duration: f64,
) -> Result<NoiseFigureResult> {
    let mut sys = ahfic_ahdl::system::System::new();
    let tone = sys.net("tone");
    let src_noise = sys.net("src_noise");
    let input = sys.net("input");
    let stage_noise = sys.net("stage_noise");
    let stage_in = sys.net("stage_in");
    let out = sys.net("out");
    sys.add("TONE", SineSource::new(f0, 1.0), &[], &[tone])?;
    sys.add(
        "NSRC",
        GaussianNoise::new(source_noise_rms, 11),
        &[],
        &[src_noise],
    )?;
    sys.add("SUMIN", Adder::new(2), &[tone, src_noise], &[input])?;
    sys.add(
        "NSTAGE",
        GaussianNoise::new(added_noise_rms.max(1e-12), 23),
        &[],
        &[stage_noise],
    )?;
    sys.add("SUMST", Adder::new(2), &[input, stage_noise], &[stage_in])?;
    sys.add("DUT", stage, &[stage_in], &[out])?;
    // Both nets were registered by the `sys.add` calls just above.
    #[allow(clippy::expect_used)]
    let probes = [
        sys.find_net("input").expect("net"),
        sys.find_net("out").expect("net"),
    ];
    let trace = sys.run_probed(fs, duration, &probes)?;
    let bw = f0 / 10.0;
    let snr_in_db = snr_db(&trace, "input", f0, bw)?;
    let snr_out_db = snr_db(&trace, "out", f0, bw)?;
    Ok(NoiseFigureResult {
        snr_in_db,
        snr_out_db,
        nf_db: snr_in_db - snr_out_db,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahfic_ahdl::blocks::arith::Gain;

    #[test]
    fn noiseless_gain_stage_has_near_zero_nf() {
        let r = measure_noise_figure(Gain::new(4.0), 0.0, 1e6, 0.05, 64e6, 2e-3).unwrap();
        assert!(r.nf_db.abs() < 1.0, "NF {} dB", r.nf_db);
        // Gain does not change SNR.
        assert!(r.snr_in_db > 20.0, "sanity: {}", r.snr_in_db);
    }

    #[test]
    fn noisy_stage_shows_expected_nf() {
        // Equal added and source noise: F = 1 + Na/Ns = 2 -> 3.01 dB.
        let r = measure_noise_figure(Gain::new(4.0), 0.05, 1e6, 0.05, 64e6, 2e-3).unwrap();
        assert!((r.nf_db - 3.01).abs() < 1.0, "NF {} dB", r.nf_db);
    }

    #[test]
    fn more_added_noise_means_higher_nf() {
        let a = measure_noise_figure(Gain::new(2.0), 0.02, 1e6, 0.05, 64e6, 2e-3).unwrap();
        let b = measure_noise_figure(Gain::new(2.0), 0.15, 1e6, 0.05, 64e6, 2e-3).unwrap();
        assert!(b.nf_db > a.nf_db + 3.0, "{} vs {}", a.nf_db, b.nf_db);
    }

    #[test]
    fn snr_scales_with_noise_level() {
        let lo = measure_noise_figure(Gain::new(1.0), 0.0, 1e6, 0.02, 64e6, 2e-3).unwrap();
        let hi = measure_noise_figure(Gain::new(1.0), 0.0, 1e6, 0.2, 64e6, 2e-3).unwrap();
        // 10x the noise RMS -> 20 dB worse SNR.
        assert!(
            (lo.snr_in_db - hi.snr_in_db - 20.0).abs() < 2.0,
            "{} vs {}",
            lo.snr_in_db,
            hi.snr_in_db
        );
    }
}
