//! Frequency planning for the double-super CATV tuner (paper Figs. 2–3).

/// Frequency plan of a double-conversion tuner.
///
/// Up-conversion: `1st IF = RF + Fup` (sum mixing), so the wanted channel
/// lands on the fixed 1.3 GHz first IF. Down-conversion:
/// `2nd IF = Fdown - 1st IF` with high-side injection
/// (`Fdown = 1st IF + 2nd IF`). The image at the first IF sits at
/// `Fdown + 2nd IF`, i.e. `2*f2if` = 90 MHz above the wanted — far too
/// close for the 1st-IF band-pass filter, which is why the paper
/// introduces the image-rejection mixer (Fig. 4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrequencyPlan {
    /// Wanted RF channel frequency (Hz).
    pub rf_wanted: f64,
    /// First IF (Hz) — 1.3 GHz in the paper.
    pub f1_if: f64,
    /// Second IF (Hz) — 45 MHz in the paper.
    pub f2_if: f64,
}

impl FrequencyPlan {
    /// CATV plan from the paper: 1.3 GHz / 45 MHz IFs.
    ///
    /// # Panics
    ///
    /// Panics unless `rf_wanted` is within the paper's 90–770 MHz band.
    pub fn catv(rf_wanted: f64) -> Self {
        assert!(
            (90e6..=770e6).contains(&rf_wanted),
            "CATV RF must be within 90-770 MHz"
        );
        FrequencyPlan {
            rf_wanted,
            f1_if: 1.3e9,
            f2_if: 45e6,
        }
    }

    /// First local oscillator (up-converter) frequency `Fup`.
    pub fn f_up(&self) -> f64 {
        self.f1_if - self.rf_wanted
    }

    /// Second local oscillator frequency `Fdown` (high-side injection).
    pub fn f_down(&self) -> f64 {
        self.f1_if + self.f2_if
    }

    /// RF frequency of the image channel.
    pub fn rf_image(&self) -> f64 {
        self.rf_wanted + 2.0 * self.f2_if
    }

    /// First-IF frequency of the image (`Fdown + f2if`).
    pub fn if1_image(&self) -> f64 {
        self.f1_if + 2.0 * self.f2_if
    }

    /// Highest tone any node of the behavioral tuner carries: the sum
    /// products of the second mixer. Used to choose the sample rate.
    pub fn max_product(&self) -> f64 {
        self.if1_image() + self.f_down()
    }

    /// A sample rate comfortably above Nyquist for every product.
    pub fn recommended_fs(&self) -> f64 {
        3.0 * self.max_product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers() {
        let p = FrequencyPlan::catv(500e6);
        assert_eq!(p.f1_if, 1.3e9);
        assert_eq!(p.f2_if, 45e6);
        assert_eq!(p.f_up(), 0.8e9);
        assert_eq!(p.f_down(), 1.345e9);
        assert_eq!(p.rf_image(), 590e6);
        assert_eq!(p.if1_image(), 1.39e9);
    }

    #[test]
    fn image_relation_from_paper_holds() {
        // rf2 - Fdown == Fdown - rf1 == f2if
        let p = FrequencyPlan::catv(300e6);
        assert!((p.if1_image() - p.f_down() - p.f2_if).abs() < 1.0);
        assert!((p.f_down() - p.f1_if - p.f2_if).abs() < 1.0);
    }

    #[test]
    fn both_channels_convert_to_same_second_if() {
        let p = FrequencyPlan::catv(470e6);
        // wanted: RF + Fup = 1.3 GHz; |Fdown - 1.3G| = 45 MHz
        let if1_wanted = p.rf_wanted + p.f_up();
        assert!((p.f_down() - if1_wanted - p.f2_if).abs() < 1.0);
        // image: RF2 + Fup = 1.39 GHz; |1.39G - Fdown| = 45 MHz
        let if1_image = p.rf_image() + p.f_up();
        assert!((if1_image - p.f_down() - p.f2_if).abs() < 1.0);
    }

    #[test]
    fn sample_rate_covers_products() {
        let p = FrequencyPlan::catv(500e6);
        assert!(p.recommended_fs() > 2.0 * p.max_product());
    }

    #[test]
    #[should_panic(expected = "90-770")]
    fn out_of_band_rf_rejected() {
        let _ = FrequencyPlan::catv(2e9);
    }
}
