//! Behavioral phase-locked loop — the `PLL` box of the paper's Fig. 2
//! block diagram that synthesizes the tuner's first LO.
//!
//! Architecture: multiplying phase detector → first-order loop filter →
//! VCO, closed through the system simulator's feedback path (one-sample
//! delay). A first-order ("type I") loop: the lock range is
//! `K = Kpd * Kvco` around the VCO center frequency.

use ahfic_ahdl::blocks::arith::{Gain, Mixer};
use ahfic_ahdl::blocks::filter::FirstOrderLp;
use ahfic_ahdl::blocks::osc::{SineSource, Vco};
use ahfic_ahdl::error::Result;
use ahfic_ahdl::probe::Trace;
use ahfic_ahdl::system::{NetId, System};

/// PLL design parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PllConfig {
    /// Reference frequency (Hz).
    pub f_ref: f64,
    /// VCO center (free-running) frequency (Hz).
    pub f0_vco: f64,
    /// VCO tuning gain (Hz/V).
    pub kvco: f64,
    /// Loop-filter corner (Hz).
    pub loop_bw: f64,
    /// Amplitudes of reference and VCO (set the detector gain
    /// `Kpd = a_ref*a_vco/2`).
    pub ampl: f64,
    /// Extra DC loop gain after the filter.
    pub loop_gain: f64,
}

impl PllConfig {
    /// A 10 MHz reference loop with a deliberately offset VCO.
    pub fn demo() -> Self {
        PllConfig {
            f_ref: 10e6,
            f0_vco: 9.7e6,
            kvco: 2e6,
            loop_bw: 200e3,
            ampl: 1.0,
            loop_gain: 4.0,
        }
    }

    /// DC loop gain `K = Kpd * loop_gain * Kvco` (Hz) — the type-I hold
    /// range around the VCO center.
    pub fn hold_range(&self) -> f64 {
        (self.ampl * self.ampl / 2.0) * self.loop_gain * self.kvco
    }
}

/// Nets exposed by a built PLL.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PllNets {
    /// Reference oscillator output.
    pub reference: NetId,
    /// VCO output.
    pub vco: NetId,
    /// Loop-filter output (the VCO control voltage).
    pub control: NetId,
}

/// Builds the PLL into a system.
///
/// # Errors
///
/// Propagates wiring errors.
pub fn build_pll(sys: &mut System, cfg: &PllConfig) -> Result<PllNets> {
    let reference = sys.net("pll_ref");
    let vco = sys.net("pll_vco");
    let pd = sys.net("pll_pd");
    let filt = sys.net("pll_filt");
    let control = sys.net("pll_ctrl");

    sys.add(
        "PLLREF",
        SineSource::new(cfg.f_ref, cfg.ampl),
        &[],
        &[reference],
    )?;
    sys.add("PLLPD", Mixer::new(1.0), &[reference, vco], &[pd])?;
    sys.add(
        "PLLLF",
        FirstOrderLp::new(cfg.loop_bw, suggested_fs(cfg)),
        &[pd],
        &[filt],
    )?;
    sys.add("PLLGAIN", Gain::new(cfg.loop_gain), &[filt], &[control])?;
    sys.add(
        "PLLVCO",
        Vco::new(cfg.f0_vco, cfg.kvco, cfg.ampl),
        &[control],
        &[vco],
    )?;
    Ok(PllNets {
        reference,
        vco,
        control,
    })
}

/// Sample rate the loop filter in [`build_pll`] is designed against; run
/// the system at this rate.
pub fn suggested_fs(cfg: &PllConfig) -> f64 {
    100.0 * cfg.f_ref.max(cfg.f0_vco)
}

/// Measured lock state of a PLL run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LockMeasurement {
    /// Average VCO frequency over the analysis window (Hz).
    pub vco_frequency: f64,
    /// Final control voltage (V).
    pub control_voltage: f64,
    /// Whether the VCO frequency matched the reference within 0.5 %.
    pub locked: bool,
}

/// Measures lock from a recorded run (last 30 % of the trace).
///
/// # Errors
///
/// Propagates missing-signal errors.
pub fn measure_lock(trace: &Trace, cfg: &PllConfig) -> Result<LockMeasurement> {
    let vco = trace.tail("pll_vco", 0.3)?;
    let ctrl = trace.tail("pll_ctrl", 0.05)?;
    // Count rising zero crossings.
    let mut crossings = 0usize;
    for k in 1..vco.len() {
        if vco[k - 1] <= 0.0 && vco[k] > 0.0 {
            crossings += 1;
        }
    }
    let span = vco.len() as f64 / trace.fs();
    let vco_frequency = crossings as f64 / span;
    let control_voltage = ctrl.iter().sum::<f64>() / ctrl.len() as f64;
    Ok(LockMeasurement {
        vco_frequency,
        control_voltage,
        locked: (vco_frequency / cfg.f_ref - 1.0).abs() < 0.005,
    })
}

/// Builds, runs and measures a PLL in one call.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_pll(cfg: &PllConfig, duration: f64) -> Result<LockMeasurement> {
    let mut sys = System::new();
    let nets = build_pll(&mut sys, cfg)?;
    let trace = sys.run_probed(suggested_fs(cfg), duration, &[nets.vco, nets.control])?;
    measure_lock(&trace, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pll_locks_to_reference() {
        let cfg = PllConfig::demo();
        // Offset (300 kHz) is well inside the hold range.
        assert!(cfg.hold_range() > (cfg.f_ref - cfg.f0_vco).abs());
        let lock = run_pll(&cfg, 200e-6).unwrap();
        assert!(
            lock.locked,
            "vco at {:.4e}, expected {:.4e}",
            lock.vco_frequency, cfg.f_ref
        );
        // Type-I loop: control voltage carries the static offset
        // (f_ref - f0)/kvco (up to detector nonlinearity).
        let expect = (cfg.f_ref - cfg.f0_vco) / cfg.kvco;
        assert!(
            (lock.control_voltage - expect).abs() < 0.6 * expect.abs() + 0.02,
            "ctrl {} vs {expect}",
            lock.control_voltage
        );
    }

    #[test]
    fn pll_fails_outside_hold_range() {
        let mut cfg = PllConfig::demo();
        cfg.f0_vco = 4e6; // 6 MHz away with a ~4 MHz hold range
        cfg.loop_gain = 0.5; // shrink the hold range to ~0.5 MHz
        let lock = run_pll(&cfg, 150e-6).unwrap();
        assert!(
            !lock.locked,
            "locked across {:.1e} Hz?!",
            cfg.f_ref - cfg.f0_vco
        );
    }

    #[test]
    fn hold_range_formula() {
        let cfg = PllConfig::demo();
        assert!((cfg.hold_range() - 0.5 * 4.0 * 2e6).abs() < 1e-6);
    }
}
