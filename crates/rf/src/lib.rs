//! RF system models reproducing the paper's experiments.
//!
//! - [`plan`] — the CATV double-super frequency plan (Figs. 2–3);
//! - [`tuner`] — behavioral tuner builders: conventional (Fig. 2) and
//!   image-rejection (Fig. 4), assembled from `ahfic-ahdl` blocks;
//! - [`image_rejection`] — the Fig. 5 experiment: simulated
//!   image-rejection ratio vs phase/gain balance, the closed form, and
//!   the designer's inverse lookup (spec budgeting);
//! - [`spectrum_scan`] — the Fig. 3 node-by-node spectrum demonstration;
//! - [`ringosc`] — the Fig. 11 / Table 1 five-stage ECL ring oscillator
//!   on the transistor-level simulator.

// A malformed input must surface as a typed error, never a panic:
// `unwrap`/`expect` in non-test code warns (CI promotes warnings to
// errors), with local `#[allow]`s where an invariant guarantees success.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod distortion;
pub mod image_rejection;
pub mod mixer_tl;
pub mod noise;
pub mod plan;
pub mod pll;
pub mod ringosc;
pub mod spectrum_scan;
pub mod tuner;

pub use image_rejection::{fig5_sweep, irr_analytic_db, measure_irr_db};
pub use mixer_tl::{build_hartley_mixer, measure_irr_transistor_db, HartleyMixerParams};
pub use plan::FrequencyPlan;
pub use tuner::{build_conventional_tuner, build_image_rejection_tuner, TunerConfig};
