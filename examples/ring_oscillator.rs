//! Reproduces Fig. 11 + Table 1 of the paper: the free-running frequency
//! of a five-stage ECL ring oscillator as the diff-pair transistor shape
//! is swept over the Fig. 8 catalogue, using geometry-aware generated
//! models (the Fig. 10 flow end to end).
//!
//! Run with: `cargo run --release --example ring_oscillator`

use ahfic_geom::prelude::*;
use ahfic_rf::ringosc::{table1_experiment, RingOscParams};
use ahfic_spice::prelude::Options;

fn main() {
    let generator = ModelGenerator::new(ProcessData::default(), MaskRules::default());
    let params = RingOscParams::default();
    let opts = Options::default();
    let shapes = TransistorShape::fig8_catalogue();

    println!(
        "# Table 1 reproduction: 5-stage ring oscillator, tail = {:.1} mA",
        params.tail_current * 1e3
    );
    println!("# Diff-pair shapes swept; emitter followers fixed at N1.2-12D.");
    println!();
    println!(
        "{:<12} {:>12} {:>18} {:>12}",
        "Shape", "Ae [um^2]", "Frequency [GHz]", "Swing [V]"
    );
    println!("{}", "-".repeat(58));

    let rows =
        table1_experiment(&params, &generator, &shapes, &opts).expect("ring oscillator simulation");
    let mut best: Option<&ahfic_rf::ringosc::RingOscRow> = None;
    for row in &rows {
        println!(
            "{:<12} {:>12.1} {:>18.3} {:>12.3}",
            row.shape.to_string(),
            row.shape.emitter_area_um2(),
            row.measurement.frequency / 1e9,
            row.measurement.amplitude_pp
        );
        if best.is_none_or(|b| row.measurement.frequency > b.measurement.frequency) {
            best = Some(row);
        }
    }
    let best = best.expect("at least one row");
    println!();
    println!(
        "# Best shape: {} at {:.3} GHz (paper's conclusion: N1.2-12D)",
        best.shape,
        best.measurement.frequency / 1e9
    );
}
