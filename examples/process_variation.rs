//! Process variation study (paper §2.2: "taking IC process variations
//! into account"):
//!
//! 1. Monte-Carlo yield of the image-rejection spec vs component
//!    matching quality (SPICE-characterized RC-CR shifter per sample);
//! 2. fT spread of a generated transistor over process corners.
//!
//! Run with: `cargo run --release --example process_variation`

use ahfic::yield_mc::YieldStudy;
use ahfic_geom::prelude::*;
use ahfic_spice::analysis::Options;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("## Yield of the 30 dB image-rejection spec vs resistor matching\n");
    println!(
        "{:>12} {:>10} {:>12} {:>12}",
        "sigma [%]", "yield", "mean [dB]", "p5 [dB]"
    );
    for sigma in [0.005, 0.01, 0.02, 0.05, 0.10, 0.20] {
        let result = YieldStudy {
            samples: 150,
            ..YieldStudy::paper_example(sigma)
        }
        .run()?;
        println!(
            "{:>12.1} {:>9.1}% {:>12.1} {:>12.1}",
            sigma * 100.0,
            result.yield_frac * 100.0,
            result.mean_db,
            result.p5_db
        );
    }
    println!("\n(the budget from Fig. 5 tells the designer which matching spec to buy)");

    println!("\n## fT spread of N1.2-12D at 1.5 mA over 8% process corners\n");
    let shape: TransistorShape = "N1.2-12D".parse()?;
    let mut sampler = ProcessSampler::new(ProcessData::default(), MaskRules::default(), 0.08, 2026);
    let opts = Options::default();
    let mut fts = Vec::new();
    for k in 0..12 {
        let model = sampler.sample_model(&shape);
        let p = ahfic_spice::measure::ft_at_bias(&model, 3.0, 1.5e-3, &opts)?;
        println!("  corner {k:>2}: fT = {:.2} GHz", p.ft / 1e9);
        fts.push(p.ft);
    }
    let mean = fts.iter().sum::<f64>() / fts.len() as f64;
    let lo = fts.iter().cloned().fold(f64::MAX, f64::min);
    let hi = fts.iter().cloned().fold(f64::MIN, f64::max);
    println!(
        "\n  mean {:.2} GHz, range {:.2}..{:.2} GHz ({:+.1}% / {:+.1}%)",
        mean / 1e9,
        lo / 1e9,
        hi / 1e9,
        (lo / mean - 1.0) * 100.0,
        (hi / mean - 1.0) * 100.0
    );
    Ok(())
}
