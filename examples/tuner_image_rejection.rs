//! Reproduces Fig. 5 of the paper: image-rejection ratio of the Fig. 4
//! double-super tuner versus quadrature phase error, with the gain
//! balance as the curve parameter — the AHDL top-down experiment that
//! lets a designer turn "30 dB IRR" into block-level specs.
//!
//! Run with: `cargo run --release --example tuner_image_rejection`

use ahfic_rf::image_rejection::{fig5_sweep, max_phase_error_for_irr};
use ahfic_rf::plan::FrequencyPlan;
use ahfic_rf::tuner::TunerConfig;

fn main() {
    let plan = FrequencyPlan::catv(500e6);
    let cfg = TunerConfig::for_plan(&plan);
    let phase_errors = [0.25, 0.5, 1.0, 2.0, 3.0, 5.0, 7.0, 10.0];
    let gain_errors = [0.01, 0.03, 0.05, 0.07, 0.09];

    println!("# Fig. 5 reproduction: image rejection ratio [dB] vs phase error");
    println!("# behavioral AHDL simulation (sim) vs closed form (ana)");
    println!();
    print!("{:>10}", "phase[deg]");
    for g in gain_errors {
        print!(" | {:>5.0}% sim  ana", g * 100.0);
    }
    println!();
    println!("{}", "-".repeat(10 + gain_errors.len() * 18));

    let points =
        fig5_sweep(&plan, &cfg, &phase_errors, &gain_errors, Some(2e-6)).expect("fig5 sweep");
    for (pi, &p) in phase_errors.iter().enumerate() {
        print!("{p:>10.2}");
        for (gi, _) in gain_errors.iter().enumerate() {
            let pt = &points[gi * phase_errors.len() + pi];
            print!(" | {:>9.2} {:>5.2}", pt.simulated_db, pt.analytic_db);
        }
        println!();
    }

    println!();
    println!("# Designer's inverse lookup (paper 2.2): required IRR = 30 dB");
    for g in gain_errors {
        match max_phase_error_for_irr(30.0, g) {
            Some(e) => println!(
                "  gain balance {:>3.0}% -> max phase error {:.2} deg",
                g * 100.0,
                e
            ),
            None => println!(
                "  gain balance {:>3.0}% -> unreachable: gain imbalance alone exceeds 30 dB budget",
                g * 100.0
            ),
        }
    }
}
