//! The whole image-rejection receiver written as a *textual system
//! netlist* — the "block diagram" level of the paper's Fig. 1 — plus an
//! AHDL module in the same file, then simulated and measured.
//!
//! Run with: `cargo run --release --example system_netlist`

use ahfic_ahdl::netlist::load_system;
use ahfic_ahdl::spectrum::tone_power;

/// 1st IF in, quadrature downconversion, 90° recombination — the Fig. 4
/// core written as text. The `rfsum` module shows AHDL and built-ins
/// mixing freely.
const SRC: &str = "
    module rfsum(a, b, y) {
        input a, b; output y;
        analog { V(y) <- V(a) + V(b); }
    }

    system image_rejection_rx {
        // Both channels arrive at the first IF, 90 MHz apart.
        WANT : sine(freq=1.3e9, ampl=1.0) -> (if_want);
        IMG  : sine(freq=1.39e9, ampl=1.0) -> (if_img);
        SUM  : rfsum() (if_want, if_img) -> (if1);

        // Quadrature second LO with deliberate impairments.
        LO   : quadlo(freq=1.345e9, ampl=1.0, gain_err=0.03, phase_err_deg=2.0) -> (lo_i, lo_q);
        MI   : mixer(k=1.0) (if1, lo_i) -> (arm_i);
        MQ   : mixer(k=1.0) (if1, lo_q) -> (arm_q);

        // 90 degree shift on the I arm, then recombine.
        PS   : phase90(f0=45e6) (arm_i) -> (arm_i_s);
        OUT  : adder(n=2) (arm_i_s, arm_q) -> (if2);
    }";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fs = 8e9;
    println!("elaborating system netlist...");
    let mut sys = load_system(SRC, fs)?;
    println!("  {} blocks, nets: {:?}", sys.num_blocks(), sys.net_names());

    let trace = sys.run(fs, 2e-6)?;
    let p45 = tone_power(&trace, "if2", 45e6, 0.5)?;
    println!("\noutput tone at 45 MHz: {:.4e} V^2", p45);
    println!("(wanted minus leaked image; with both channels equal at the input,");
    println!(" the residual reflects the 3% / 2deg impairments — compare to the");
    println!(" ideal-case cancellation in `tuner_image_rejection`)");

    // For reference, re-run with the wanted channel only.
    let src_wanted_only = SRC.replace("ampl=1.0) -> (if_img)", "ampl=0.0) -> (if_img)");
    let mut sys_w = load_system(&src_wanted_only, fs)?;
    let tw = sys_w.run(fs, 2e-6)?;
    let pw = tone_power(&tw, "if2", 45e6, 0.5)?;
    let src_img_only = SRC.replace("ampl=1.0) -> (if_want)", "ampl=0.0) -> (if_want)");
    let mut sys_i = load_system(&src_img_only, fs)?;
    let ti = sys_i.run(fs, 2e-6)?;
    let pi = tone_power(&ti, "if2", 45e6, 0.5)?;
    println!(
        "\nwanted-only power {:.3e}, image-only power {:.3e}  ->  IRR = {:.1} dB",
        pw,
        pi,
        10.0 * (pw / pi).log10()
    );
    println!(
        "closed form for (2 deg, 3%): {:.1} dB",
        ahfic_rf::image_rejection::irr_analytic_db(2.0, 0.03)
    );
    Ok(())
}
