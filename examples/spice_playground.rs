//! The circuit simulator as a standalone tool: parse a textual SPICE
//! deck and run all four analyses on it through a single [`Session`],
//! with telemetry recorded and rendered at the end.
//!
//! Run with: `cargo run --release --example spice_playground`

use ahfic::report::render_trace_summary;
use ahfic_num::interp::{linspace, logspace};
use ahfic_spice::analysis::{Options, Session, TranParams};
use ahfic_spice::parse::parse_netlist;
use ahfic_spice::trace::InMemorySink;
use std::sync::Arc;

const DECK: &str = "* differential pair with emitter follower output
.model rf_npn NPN (IS=2e-16 BF=120 VAF=45 IKF=5m RB=90 RE=3 RC=25
+ CJE=80f VJE=0.9 MJE=0.35 CJC=45f VJC=0.65 MJC=0.4 TF=16p XTF=4 VTF=3 ITF=12m TR=0.6n CJS=90f)
VCC vcc 0 5
VINP inp 0 DC 2.5 AC 0.5 SIN(2.5 0.05 100meg)
VINN inn 0 DC 2.5 AC -0.5
RLP vcc cp 1k
RLN vcc cn 1k
Q1 cp inp tail rf_npn
Q2 cn inn tail rf_npn
IT tail 0 2m
QF vcc cp out rf_npn
RF out 0 2k
.end";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ckt = parse_netlist(DECK)?;
    let sink = Arc::new(InMemorySink::new());
    let mut sess = Session::compile(&ckt)?.with_options(Options::new().trace(&sink));

    // Operating point.
    let dc = sess.op()?;
    println!("## operating point");
    for name in ["v(cp)", "v(cn)", "v(tail)", "v(out)"] {
        let idx = sess
            .prepared()
            .unknown_names
            .iter()
            .position(|n| n == name)
            .expect("known node");
        println!("  {name} = {:.4} V", dc.x[idx]);
    }

    // DC transfer: sweep the positive input.
    let sweep = sess.dc("VINP", &linspace(2.2, 2.8, 13))?;
    println!("\n## DC transfer v(out) vs VINP");
    let vout = sweep.signal("v(out)")?;
    for (k, &vin) in sweep.axis().iter().enumerate() {
        println!("  {vin:.2} V -> {:.3} V", vout[k]);
    }

    // AC: differential gain and bandwidth.
    let acw = sess.ac(&dc.x, &logspace(1e6, 20e9, 41))?;
    let c = ahfic_spice::measure::characterize(&acw, "v(cp)", 1e6)?;
    println!(
        "\n## AC: gain {:.2} dB, f_3dB = {:.2} GHz",
        c.gain_db,
        c.bw_3db.unwrap_or(f64::NAN) / 1e9
    );

    // Transient: 100 MHz drive.
    let wave = sess.tran(&TranParams::new(50e-9, 25e-12))?.into_wave();
    let h = ahfic_spice::measure::harmonics(&wave, "v(cp)", 100e6, 5, 0.3)?;
    println!(
        "\n## transient: fundamental {:.1} mV at the collector, THD {:.1} dB",
        h.amplitudes[0] * 1e3,
        h.thd_db()
    );

    // Noise: output density at the collector with a per-device breakdown.
    let out_node = sess.prepared().circuit.find_node("cp").expect("node cp");
    let noise = sess.noise(&dc.x, out_node, &[100e6])?;
    let p = &noise[0];
    println!(
        "\n## noise at 100 MHz: {:.2} nV/rtHz at v(cp); top contributors:",
        p.output_rms_density() * 1e9
    );
    for c in p.contributions.iter().take(4) {
        println!(
            "    {:<8} {:<10} {:.2} nV/rtHz",
            c.element,
            c.generator,
            c.output_density.sqrt() * 1e9
        );
    }

    // What did all of that cost? The trace knows.
    println!("\n{}", render_trace_summary(&sink.records()));
    Ok(())
}
