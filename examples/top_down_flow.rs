//! The full top-down methodology end to end (paper §2 + §3 + §4 glue):
//! system spec → behavioral exploration → spec budgeting → cell re-use →
//! mixed-level reality check → final verification.
//!
//! Run with: `cargo run --release --example top_down_flow`

use ahfic::flow::TopDownFlow;
use ahfic::report::render_text;
use ahfic_celldb::seed::seed_library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = seed_library()?;

    println!("### Case A: the paper's example — 30 dB IRR, 2% component matching\n");
    let flow = TopDownFlow::paper_example();
    let report = flow.run(&db)?;
    println!("{}", render_text(&report));

    println!("### Case B: sloppier process — 12% component matching\n");
    let mut sloppy = TopDownFlow::paper_example();
    sloppy.shifter_mismatch = 0.12;
    let report_b = sloppy.run(&db)?;
    println!("{}", render_text(&report_b));

    println!("### Case C: tighter system spec — 38 dB IRR\n");
    let mut tight = TopDownFlow::paper_example();
    tight.required_irr_db = 38.0;
    tight.gain_candidates = vec![0.005, 0.01, 0.02];
    let report_c = tight.run(&db)?;
    println!("{}", render_text(&report_c));

    println!(
        "summary: A {}, B {}, C {}",
        verdict(report.final_pass),
        verdict(report_b.final_pass),
        verdict(report_c.final_pass)
    );
    Ok(())
}

fn verdict(pass: bool) -> &'static str {
    if pass {
        "PASS"
    } else {
        "FAIL"
    }
}
