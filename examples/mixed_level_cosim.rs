//! AHDL-in-SPICE co-simulation: the Table 1 ring oscillator with its
//! emitter followers replaced by *behavioral* (AHDL) level shifters,
//! while the differential pairs stay at transistor level.
//!
//! This is the paper's Fig. 1 workflow run inside the circuit simulator:
//! detail one block (the diff pair) at the primitive level and keep the
//! rest behavioral — then compare against the fully-detailed circuit to
//! see what the real followers cost.
//!
//! Run with: `cargo run --release --example mixed_level_cosim`

use ahfic::cosim::ahdl_behavioral_fn;
use ahfic_ahdl::eval::CompiledModule;
use ahfic_geom::prelude::*;
use ahfic_rf::ringosc::{measure_ring_frequency, RingOscParams};
use ahfic_spice::analysis::{Options, Session, TranParams};
use ahfic_spice::circuit::Circuit;
use ahfic_spice::measure::oscillation_frequency;
use ahfic_spice::wave::SourceWave;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generator = ModelGenerator::new(ProcessData::default(), MaskRules::default());
    let pair = generator.generate(&"N1.2-12D".parse()?);
    let params = RingOscParams::default();
    let opts = Options::default();

    // Reference: the fully transistor-level ring.
    let full = measure_ring_frequency(&params, &pair, &pair, &opts)?;
    println!(
        "full transistor-level ring:   {:.3} GHz (swing {:.2} V)",
        full.frequency / 1e9,
        full.amplitude_pp
    );

    // Mixed-level: behavioral emitter followers described in AHDL.
    let follower_ahdl = CompiledModule::compile(
        "module follower(in, out) {
            input in; output out;
            parameter real vbe = 0.82;
            analog { V(out) <- V(in) - vbe; }
        }",
    )?;

    let n = params.stages;
    let mut ckt = Circuit::new();
    let vcc = ckt.node("vcc");
    ckt.vsource("VCC", vcc, Circuit::gnd(), params.vcc);
    let mi = ckt.add_bjt_model(pair.clone());
    for k in 0..n {
        let (inp, inn) = (
            ckt.node(&format!("op{}", (k + n - 1) % n)),
            ckt.node(&format!("on{}", (k + n - 1) % n)),
        );
        let (outp, outn) = (ckt.node(&format!("op{k}")), ckt.node(&format!("on{k}")));
        let cp = ckt.node(&format!("cp{k}"));
        let cn = ckt.node(&format!("cn{k}"));
        let tail = ckt.node(&format!("te{k}"));
        ckt.resistor(&format!("RLp{k}"), vcc, cp, params.load_r);
        ckt.resistor(&format!("RLn{k}"), vcc, cn, params.load_r);
        ckt.bjt(&format!("Qa{k}"), cp, inp, tail, mi, 1.0);
        ckt.bjt(&format!("Qb{k}"), cn, inn, tail, mi, 1.0);
        ckt.isource(&format!("IT{k}"), tail, Circuit::gnd(), params.tail_current);
        // AHDL followers instead of transistors.
        ckt.behavioral_vsource(
            &format!("Bfa{k}"),
            outp,
            Circuit::gnd(),
            &[cp],
            ahdl_behavioral_fn(&follower_ahdl, &[])?,
        );
        ckt.behavioral_vsource(
            &format!("Bfb{k}"),
            outn,
            Circuit::gnd(),
            &[cn],
            ahdl_behavioral_fn(&follower_ahdl, &[])?,
        );
    }
    let kick = ckt.node("cp0");
    ckt.isource_wave(
        "IKICK",
        kick,
        Circuit::gnd(),
        SourceWave::Pulse {
            v1: 0.0,
            v2: 0.5e-3,
            delay: 10e-12,
            rise: 10e-12,
            fall: 10e-12,
            width: 100e-12,
            period: 0.0,
        },
    );
    let diff = ckt.node("diff");
    let (pp, pn) = (
        ckt.node(&format!("op{}", n - 1)),
        ckt.node(&format!("on{}", n - 1)),
    );
    ckt.vcvs("Ediff", diff, Circuit::gnd(), pp, pn, 1.0);
    ckt.resistor("Rdiff", diff, Circuit::gnd(), 1e6);

    let sess = Session::compile(&ckt)?.with_options(opts);
    let wave = sess
        .tran(&TranParams::new(params.t_stop, params.dt_max))?
        .into_wave();
    let mixed = oscillation_frequency(&wave, "v(diff)", 0.4)?;
    println!(
        "mixed-level ring (AHDL followers): {:.3} GHz (swing {:.2} V)",
        mixed.frequency / 1e9,
        mixed.amplitude_pp
    );
    println!(
        "\nfollower contribution to the stage delay: ideal followers speed the ring up {:.2}x —",
        mixed.frequency / full.frequency
    );
    println!("the real emitter followers' delay and loading are that big a share of Table 1.");
    Ok(())
}
