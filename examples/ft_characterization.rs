//! Reproduces Fig. 9 of the paper: transition frequency vs collector
//! current for npn transistors of different emitter geometries
//! (N1.2-6D, N1.2-12D, N1.2-24D, N1.2-48D).
//!
//! Run with: `cargo run --release --example ft_characterization`

use ahfic_geom::prelude::*;
use ahfic_num::interp::logspace;
use ahfic_spice::measure::{ft_sweep, peak_ft};
use ahfic_spice::prelude::Options;

fn main() {
    let generator = ModelGenerator::new(ProcessData::default(), MaskRules::default());
    let opts = Options::default();
    let currents = logspace(0.05e-3, 30e-3, 19);

    println!("# Fig. 9 reproduction: fT vs Ic (VCE = 3 V)");
    println!(
        "# process fT ceiling: {:.2} GHz",
        generator.process().ft_ceiling() / 1e9
    );
    println!();
    println!(
        "{:>10} | {:>12} {:>12} {:>12} {:>12}",
        "Ic [mA]", "N1.2-6D", "N1.2-12D", "N1.2-24D", "N1.2-48D"
    );
    println!("{}", "-".repeat(66));

    let shapes = TransistorShape::fig9_series();
    let mut columns = Vec::new();
    for shape in &shapes {
        let model = generator.generate(shape);
        columns.push(ft_sweep(&model, 3.0, &currents, &opts));
    }

    for (k, &ic) in currents.iter().enumerate() {
        print!("{:>10.3}", ic * 1e3);
        print!(" |");
        for col in &columns {
            match col.iter().find(|p| (p.ic - ic).abs() < 1e-12) {
                Some(p) => print!(" {:>9.2} GHz", p.ft / 1e9),
                None => print!(" {:>12}", "-"),
            }
        }
        println!();
        let _ = k;
    }

    println!();
    println!("# Peak fT (parabolic refinement on log Ic):");
    for (shape, col) in shapes.iter().zip(&columns) {
        if let Ok((ic_pk, ft_pk)) = peak_ft(col) {
            println!(
                "  {:<10}  Ae = {:>5.1} um^2   peak fT = {:.2} GHz at Ic = {:.2} mA",
                shape.to_string(),
                shape.emitter_area_um2(),
                ft_pk / 1e9,
                ic_pk * 1e3
            );
        }
    }
    println!();
    println!("# Expected shape (paper): peak-fT collector current grows with emitter area;");
    println!("# running a transistor away from its peak-fT current degrades the circuit.");
}
