//! Quickstart: one taste of each layer of the kit in ~60 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use ahfic_ahdl::prelude::*;
use ahfic_geom::prelude::*;
use ahfic_spice::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Transistor level: bias a generated device and read its fT.
    let generator = ModelGenerator::new(ProcessData::default(), MaskRules::default());
    let model = generator.generate(&"N1.2-12D".parse()?);
    println!("generated card: {}", model.to_card());
    let ft = ahfic_spice::measure::ft_at_bias(&model, 3.0, 1e-3, &Options::default())?;
    println!("fT at 1 mA / 3 V: {:.2} GHz\n", ft.ft / 1e9);

    // 2. Circuit level: a SPICE deck, straight from text.
    let ckt = ahfic_spice::parse::parse_netlist(
        "* common-emitter amplifier
         .model n NPN (IS=2e-16 BF=120 CJE=80f CJC=45f TF=16p RB=100)
         VCC vcc 0 5
         VIN b 0 0.78 AC 1
         RC vcc c 500
         Q1 c b 0 n",
    )?;
    let sess = Session::compile(&ckt)?;
    let op = sess.op()?;
    let prep = sess.prepared();
    let vout = prep.voltage(&op.x, prep.circuit.find_node("c").expect("node c"));
    println!("CE amplifier operating point: v(c) = {vout:.3} V");
    let acw = sess.ac(&op.x, &ahfic_num::interp::logspace(1e6, 10e9, 31))?;
    let gain = acw.magnitude("v(c)")?[0];
    println!("CE amplifier low-frequency gain: {gain:.1} V/V\n");

    // 3. Behavioral level: an AHDL module in a block-diagram system.
    let amp = CompiledModule::compile(
        "module amp(in, out) {
            input in; output out;
            parameter real gain = 1.0;
            analog { V(out) <- gain * tanh(V(in)); }
        }",
    )?;
    let mut sys = System::new();
    let src = sys.net("src");
    let out = sys.net("out");
    sys.add("tone", SineSource::new(1e6, 0.2), &[], &[src])?;
    sys.add("amp", amp.instantiate(&[("gain", 5.0)])?, &[src], &[out])?;
    let trace = sys.run(100e6, 20e-6)?;
    let p = ahfic_ahdl::spectrum::tone_power(&trace, "out", 1e6, 0.5)?;
    println!(
        "behavioral amp output tone power: {:.4} V^2 (~{:.3} V amplitude)",
        p,
        (2.0 * p).sqrt()
    );

    // 4. Re-use: find a proven cell in the library.
    let db = ahfic_celldb::seed::seed_library()?;
    let hits = ahfic_celldb::search(&db, &ahfic_celldb::SearchQuery::keywords("mixer"));
    println!(
        "\nlibrary offers {} mixer cells; best match: {}",
        hits.len(),
        hits[0].cell.name
    );
    Ok(())
}
