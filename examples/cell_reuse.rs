//! The §3 re-use workflow: register a new cell, search the library, copy
//! a proven circuit into a new design, and render the WWW catalog.
//!
//! Run with: `cargo run --release --example cell_reuse`

use ahfic_celldb::catalog::render_markdown_index;
use ahfic_celldb::cell::{CategoryPath, Cell};
use ahfic_celldb::search::{search, SearchQuery};
use ahfic_celldb::seed::seed_library;
use ahfic_celldb::views::CellViews;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = seed_library()?;
    println!(
        "seed library: {} cells\n{}",
        db.len(),
        render_markdown_index(&db)
    );

    // A designer registers today's block (views are validated!).
    let new_cell = Cell::new(
        "LNA900",
        CategoryPath::new("Tuner", "Amplifier", "LNA"),
        CellViews {
            document: Some(
                "900 MHz low-noise amplifier, 15 dB gain, emitter-degenerated \
                 cascode. Proven on the evaluation board."
                    .into(),
            ),
            behavioral: Some(
                "module lna(in, out) {
                    input in; output out;
                    parameter real gain = 5.6;
                    analog { V(out) <- gain * V(in); }
                }"
                .into(),
            ),
            schematic: Some(
                ".model lna_npn NPN (IS=2e-16 BF=120 TF=14p CJE=70f CJC=40f RB=80)\n\
                 VCC vcc 0 5\nVIN b 0 0.8\nRC vcc c 300\nLE e 0 1n\nQ1 c b e lna_npn\n"
                    .into(),
            ),
            ..Default::default()
        },
    )
    .with_provenance("you", "eval board v2");
    db.register(new_cell)?;
    println!("registered LNA900; library now {} cells", db.len());

    // A colleague searches for it next month…
    let hits = search(&db, &SearchQuery::keywords("low noise amplifier 900"));
    println!("\nsearch 'low noise amplifier 900':");
    for h in &hits {
        println!("  {} (score {:.0}) — {}", h.cell.name, h.score, h.cell.path);
    }

    // …and copies it into their design.
    let mine = db.copy_out("LNA900", "LNA900_BS")?;
    println!(
        "\ncopied LNA900 -> {} ({} views travel with it)",
        mine.name,
        mine.views.view_count()
    );

    // The behavioral view drops straight into a system simulation.
    let module =
        ahfic_ahdl::eval::CompiledModule::compile(mine.views.behavioral.as_ref().expect("view"))?;
    println!(
        "behavioral view compiles: module `{}`, params {:?}",
        module.name(),
        module.params()
    );
    Ok(())
}
