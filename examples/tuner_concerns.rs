//! "In such CATV tuner systems, distortion, noise and image signal are
//! main concerns in circuit design." (paper §2.2)
//!
//! This example measures all three concerns behaviorally:
//! 1. distortion — two-tone IM3 / IIP3 of a front-end with a cubic
//!    nonlinearity;
//! 2. noise — noise figure of the same front-end;
//! 3. image — rejection ratio of the Fig. 4 mixer with realistic
//!    balance errors.
//!
//! Run with: `cargo run --release --example tuner_concerns`

use ahfic_ahdl::blocks::arith::Gain;
use ahfic_ahdl::blocks::nonlin::Polynomial;
use ahfic_rf::distortion::two_tone_test;
use ahfic_rf::image_rejection::{irr_analytic_db, measure_irr_db};
use ahfic_rf::noise::measure_noise_figure;
use ahfic_rf::plan::FrequencyPlan;
use ahfic_rf::tuner::{ImageRejectionErrors, TunerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Distortion -------------------------------------------------
    println!("## 1. Distortion (two-tone test on the RF front-end)\n");
    let front_end = Polynomial::new(4.0, 0.0, -0.12); // gain 4, compressive
    println!(
        "{:>12} {:>14} {:>12} {:>12}",
        "drive [V]", "IM3 [dBc]", "IIP3 [V]", "analytic"
    );
    for a in [0.05, 0.1, 0.2, 0.4] {
        let r = two_tone_test(front_end, 1.00e6, 1.10e6, a, 64e6, 400e-6)?;
        println!(
            "{:>12.2} {:>14.1} {:>12.2} {:>12.2}",
            a,
            r.im3_dbc,
            r.iip3_amplitude,
            front_end.iip3_amplitude()
        );
    }

    // --- 2. Noise -------------------------------------------------------
    println!("\n## 2. Noise (noise figure of the front-end)\n");
    println!("{:>20} {:>10}", "added noise [Vrms]", "NF [dB]");
    for na in [0.0, 0.02, 0.05, 0.1] {
        let r = measure_noise_figure(Gain::new(4.0), na, 1e6, 0.05, 64e6, 2e-3)?;
        println!("{:>20.2} {:>10.2}", na, r.nf_db);
    }
    println!("(theory: NF = 10*log10(1 + (Na/Ns)^2) with Ns = 0.05 Vrms)");

    // --- 3. Image -------------------------------------------------------
    println!("\n## 3. Image (rejection of the Fig. 4 mixer)\n");
    let plan = FrequencyPlan::catv(500e6);
    let cfg = TunerConfig::for_plan(&plan);
    println!(
        "{:>12} {:>10} {:>12} {:>12}",
        "phase [deg]", "gain [%]", "IRR sim", "IRR analytic"
    );
    for (p, g) in [(1.0, 0.01), (3.0, 0.03), (5.0, 0.05)] {
        let errors = ImageRejectionErrors {
            lo_phase_err_deg: p,
            gain_err: g,
            shifter_phase_err_deg: 0.0,
        };
        let sim = measure_irr_db(&plan, &cfg, &errors, Some(2e-6))?;
        println!(
            "{:>12.1} {:>10.0} {:>12.2} {:>12.2}",
            p,
            g * 100.0,
            sim,
            irr_analytic_db(p, g)
        );
    }
    Ok(())
}
